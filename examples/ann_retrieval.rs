//! The ANN retrieval tier on a scaled incident corpus.
//!
//! Builds a ~20k-incident corpus with the paper's long-tail category and
//! burst-recurrence structure (`simcloud::scale`), indexes it with the
//! exact backend and the seeded-HNSW backend, and shows the trade the
//! ANN tier makes: near-exact answers on recurrence-style queries at a
//! fraction of the per-query latency — and *byte-identical* answers
//! when `ef_search` saturates.
//!
//! ```sh
//! cargo run --release --example ann_retrieval
//! ```

use rcacopilot::core::retrieval::{
    HistoricalEntry, HistoryView, OnlineHistoricalIndex, RetrievalBackend, RetrievalConfig,
};
use rcacopilot::simcloud::{corpus_stats, scaled_corpus, ScaleConfig};
use rcacopilot::telemetry::time::SimTime;
use std::time::Instant;

const K: usize = 5;
const ALPHA: f64 = 0.02;

fn main() {
    // --- 1. A scaled corpus: 20k incidents over two simulated years.
    let corpus = scaled_corpus(&ScaleConfig {
        seed: 42,
        years: 2,
        incidents: 20_000,
        dim: 16,
    });
    let stats = corpus_stats(&corpus);
    println!(
        "corpus: {} incidents, {} categories, head share {:.3}, recurrence within 20d {:.3}",
        stats.incidents, stats.categories, stats.head_share, stats.recurrence_within_20d
    );
    let entries: Vec<HistoricalEntry> = corpus
        .into_iter()
        .enumerate()
        .map(|(id, inc)| HistoricalEntry {
            id,
            category: inc.category,
            summary: String::new(),
            at: inc.at,
            embedding: inc.embedding,
        })
        .collect();

    // --- 2. Two indexes over the same history.
    let t0 = Instant::now();
    let exact = OnlineHistoricalIndex::warm(&entries, 256);
    println!("\nexact index built in {:.2}s", t0.elapsed().as_secs_f64());
    let backend = RetrievalBackend::Hnsw {
        m: 16,
        ef_construction: 64,
        ef_search: 64,
    };
    let t0 = Instant::now();
    let hnsw = OnlineHistoricalIndex::warm_with(&entries, 256, backend);
    let hs = hnsw.index_stats();
    println!(
        "hnsw index built in {:.2}s ({} graph layers, {} edges, {:.1} MiB total)",
        t0.elapsed().as_secs_f64(),
        hs.layers,
        hs.edges,
        hs.bytes as f64 / (1024.0 * 1024.0)
    );

    // --- 3. Recurrence-style queries: embeddings from the newest tail
    // of the history, like incoming incidents (Figure 2's regime).
    let queries: Vec<&HistoricalEntry> = entries.iter().rev().step_by(37).take(100).collect();
    let at = SimTime::from_days(2 * 364 + 1);
    let cfg_exact = RetrievalConfig {
        k: K,
        alpha: ALPHA,
        ..RetrievalConfig::default()
    };
    let cfg_hnsw = RetrievalConfig {
        k: K,
        alpha: ALPHA,
        backend,
    };
    let (se, sh) = (exact.snapshot(), hnsw.snapshot());
    let (mut t_exact, mut t_hnsw, mut top1_hits) = (0.0f64, 0.0f64, 0usize);
    for q in &queries {
        let t0 = Instant::now();
        let a = HistoryView::top_k_diverse(&se, &q.embedding, at, &cfg_exact);
        t_exact += t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let b = HistoryView::top_k_diverse(&sh, &q.embedding, at, &cfg_hnsw);
        t_hnsw += t0.elapsed().as_secs_f64();
        if a.first().map(|n| n.entry.id) == b.first().map(|n| n.entry.id) {
            top1_hits += 1;
        }
    }
    println!(
        "\n{} queries: exact {:.1}µs/query, hnsw(ef=64) {:.1}µs/query — {:.1}× faster",
        queries.len(),
        t_exact / queries.len() as f64 * 1e6,
        t_hnsw / queries.len() as f64 * 1e6,
        t_exact / t_hnsw
    );
    println!(
        "top-1 agreement with exact: {}/{}",
        top1_hits,
        queries.len()
    );

    // --- 4. Saturation: ef_search ≥ corpus size means 100% candidate
    // recall, and the exact re-rank then answers byte-identically.
    let cfg_sat = RetrievalConfig {
        k: K,
        alpha: ALPHA,
        backend: RetrievalBackend::Hnsw {
            m: 16,
            ef_construction: 64,
            ef_search: usize::MAX,
        },
    };
    for q in queries.iter().take(10) {
        assert_eq!(
            HistoryView::top_k_diverse(&se, &q.embedding, at, &cfg_exact),
            HistoryView::top_k_diverse(&sh, &q.embedding, at, &cfg_sat),
        );
    }
    println!("saturated ef_search: answers byte-identical to exact ✓");
}
