//! Quickstart: generate a simulated incident year, train RCACopilot, and
//! predict the root cause of a fresh incident.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rcacopilot::core::context::ContextSpec;
use rcacopilot::core::eval::PreparedDataset;
use rcacopilot::core::pipeline::{RcaCopilot, RcaCopilotConfig};
use rcacopilot::simcloud::noise::NoiseProfile;
use rcacopilot::simcloud::{generate_dataset, CampaignConfig, Topology};

fn main() {
    // 1. Simulate a year of incidents in a transport-like cloud service.
    //    (Smaller topology than the benchmarks so the example runs fast.)
    let dataset = generate_dataset(&CampaignConfig {
        seed: 42,
        topology: Topology::new(4, 10, 4, 4),
        noise: NoiseProfile::default(),
    });
    println!(
        "Simulated {} incidents across {} root-cause categories.",
        dataset.len(),
        dataset.stats().categories
    );

    // 2. Split 75/25 and run the collection stage (incident handlers) plus
    //    summarization over every incident.
    let split = dataset.split(7, 0.75);
    let prepared = PreparedDataset::prepare(&dataset, &split);
    println!(
        "Collection stage done: {} train / {} test incidents prepared.",
        prepared.train.len(),
        prepared.test.len()
    );

    // 3. Train the prediction stage: FastText embeddings over the raw
    //    diagnostics, historical index with temporal-decay retrieval.
    let spec = ContextSpec::default();
    let copilot = RcaCopilot::train(&prepared.train_examples(&spec), RcaCopilotConfig::default());
    println!(
        "Prediction stage trained on {} historical incidents.",
        copilot.history_len()
    );

    // 4. Predict the first few test incidents.
    let mut correct = 0;
    let shown = 5;
    for &i in prepared.test.iter().take(shown) {
        let incident = &prepared.incidents[i];
        let prediction = copilot.predict(
            &incident.raw_diag,
            &prepared.context_text(i, &spec),
            incident.at,
        );
        let mark = if prediction.label == incident.category {
            correct += 1;
            "OK "
        } else {
            "MISS"
        };
        println!(
            "\n[{mark}] ground truth: {:<32} predicted: {}{}",
            incident.category,
            prediction.label,
            if prediction.unseen {
                "  (unseen incident, new label)"
            } else {
                ""
            }
        );
        println!("      {}", prediction.explanation);
    }
    println!("\n{correct}/{shown} sample predictions correct.");
}
