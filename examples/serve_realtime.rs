//! Real-mode serving run: the same engine as `serve_stream`, but on the
//! wall clock — workers are real blocking threads, stage costs become
//! scaled sleeps, structured tracing goes to stderr, and a Prometheus /
//! JSON metrics endpoint serves the run's counters and histograms.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --features tracing --example serve_realtime
//! ```
//!
//! Pass `--hold-secs N` to keep the metrics endpoint up for `N` seconds
//! after the run (so CI — or you — can curl it):
//!
//! ```sh
//! cargo run --release --features tracing --example serve_realtime -- --hold-secs 5 &
//! curl -s http://127.0.0.1:9898/metrics
//! ```

use rcacopilot::core::eval::PreparedDataset;
use rcacopilot::core::pipeline::{RcaCopilot, RcaCopilotConfig};
use rcacopilot::core::ContextSpec;
use rcacopilot::serve::metrics::MetricsServer;
use rcacopilot::serve::{
    ArrivalModel, ClockConfig, EngineConfig, IndexMode, MetricsRegistry, RealClockConfig,
    ServeEngine, StreamConfig,
};
use rcacopilot::simcloud::noise::NoiseProfile;
use rcacopilot::simcloud::{generate_dataset, CampaignConfig, Incident, Topology};
use std::sync::Arc;

fn main() {
    // Structured tracing to stderr: spans per event/stage/tenant.
    tracing::init_stderr(tracing::Level::Info);

    let hold_secs: u64 = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--hold-secs")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    };

    // 1. Train on a small simulated campaign.
    let dataset = generate_dataset(&CampaignConfig {
        seed: 42,
        topology: Topology::new(2, 4, 2, 2),
        noise: NoiseProfile::default(),
    });
    let split = dataset.split(7, 0.6);
    let prepared = PreparedDataset::prepare(&dataset, &split);
    let spec = ContextSpec::default();
    let copilot = RcaCopilot::train(&prepared.train_examples(&spec), RcaCopilotConfig::default());
    let test: Vec<Incident> = split
        .test
        .iter()
        .map(|&i| dataset.incidents()[i].clone())
        .collect();
    println!(
        "Trained on {} incidents; serving {} on the wall clock.",
        copilot.history_len(),
        test.len()
    );

    // 2. Metrics registry + HTTP endpoint (fixed port for curl-ability).
    let registry = MetricsRegistry::shared();
    let server = MetricsServer::spawn(Arc::clone(&registry), "127.0.0.1:9898")
        .expect("bind metrics endpoint");
    println!(
        "Metrics endpoint: http://{}/metrics (and /metrics.json)",
        server.addr()
    );

    // 3. Real-mode engine: each virtual second of modeled stage cost
    //    becomes 0.1 ms of actual sleep, so the pool overlaps waits
    //    exactly like a fleet blocked on remote LLM calls.
    let stream = StreamConfig {
        seed: 17,
        arrivals: ArrivalModel::Bursty {
            mean_gap_secs: 60,
            burst_prob: 0.35,
            burst_len: 6,
            burst_gap_secs: 8,
        },
        reraise_prob: 0.1,
    };
    let engine = ServeEngine::new(
        copilot,
        EngineConfig {
            workers: 4,
            index_mode: IndexMode::Online,
            clock: ClockConfig::Real(RealClockConfig::default()),
            metrics: Some(Arc::clone(&registry)),
            ..EngineConfig::default()
        },
    );
    let outcome = engine.run(&test, &stream);

    // 4. Wall-clock numbers next to the virtual ones.
    let wall = outcome.wall.expect("real mode records wall stats");
    println!(
        "\n{} events: wall {:.1} ms, {:.1} events/s, p50 {:.2} ms, p99 {:.2} ms",
        outcome.records.len(),
        wall.wall_nanos as f64 / 1e6,
        wall.throughput_per_sec,
        wall.p50_ms,
        wall.p99_ms,
    );
    println!(
        "Virtual view of the same run: {:.1} incidents/hour, p50 {} s, p99 {} s",
        outcome.exec.throughput_per_hour(),
        outcome.exec.latencies.percentile(0.50),
        outcome.exec.latencies.percentile(0.99),
    );
    println!("\nPrometheus export (first lines):");
    for line in registry.render_prometheus().lines().take(8) {
        println!("  {line}");
    }

    if hold_secs > 0 {
        println!("\nHolding metrics endpoint for {hold_secs}s — curl it now.");
        std::thread::sleep(std::time::Duration::from_secs(hold_secs));
    }
    server.shutdown();
}
