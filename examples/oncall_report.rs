//! The on-call notification loop: prediction → report → OCE feedback
//! (paper §5.5), driven through the unified inference plan.
//!
//! ```sh
//! cargo run --release --example oncall_report
//! ```

use rcacopilot::core::collection::CollectionStage;
use rcacopilot::core::eval::PreparedDataset;
use rcacopilot::core::feedback::run_shift;
use rcacopilot::core::pipeline::{RcaCopilot, RcaCopilotConfig};
use rcacopilot::core::plan::{InferencePlan, PlanCaches, PlanExecutor};
use rcacopilot::simcloud::noise::NoiseProfile;
use rcacopilot::simcloud::{generate_dataset, CampaignConfig, Topology};

fn main() {
    let dataset = generate_dataset(&CampaignConfig {
        seed: 42,
        topology: Topology::new(3, 8, 4, 4),
        noise: NoiseProfile::default(),
    });
    let split = dataset.split(7, 0.75);
    let prepared = PreparedDataset::prepare(&dataset, &split);
    let plan = InferencePlan::default();
    let copilot = RcaCopilot::train(
        &prepared.train_examples(&plan.spec),
        RcaCopilotConfig::default(),
    );
    let stage = CollectionStage::standard();
    let caches = PlanCaches::new(1);
    let executor = PlanExecutor::new(&copilot, &stage, &plan, &caches);

    // Simulate an on-call shift: notify on 20 test incidents, collect
    // (oracle) OCE verdicts into the feedback store.
    let picks: Vec<usize> = prepared.test.iter().take(20).copied().collect();
    let shift = run_shift(&executor, dataset.incidents(), &picks, copilot.index());
    if let Some(first) = shift.reports.first() {
        println!("=== Example notification ===\n{first}");
    }

    println!(
        "=== Shift summary ===\nOCE satisfaction over {} notifications: {:.0}%",
        shift.reports.len(),
        shift.store.overall_satisfaction().unwrap_or(0.0) * 100.0
    );
    let review = shift.store.needs_review(0.6, 2);
    if review.is_empty() {
        println!("No categories flagged for handler review.");
    } else {
        println!(
            "Categories flagged for handler review: {}",
            review.join(", ")
        );
    }
}
