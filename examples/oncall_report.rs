//! The on-call notification loop: prediction → report → OCE feedback
//! (paper §5.5).
//!
//! ```sh
//! cargo run --release --example oncall_report
//! ```

use rcacopilot::core::collection::CollectionStage;
use rcacopilot::core::context::ContextSpec;
use rcacopilot::core::eval::PreparedDataset;
use rcacopilot::core::feedback::{FeedbackStore, Verdict};
use rcacopilot::core::pipeline::{RcaCopilot, RcaCopilotConfig};
use rcacopilot::core::report::OnCallReport;
use rcacopilot::simcloud::noise::NoiseProfile;
use rcacopilot::simcloud::{generate_dataset, CampaignConfig, Topology};

fn main() {
    let dataset = generate_dataset(&CampaignConfig {
        seed: 42,
        topology: Topology::new(3, 8, 4, 4),
        noise: NoiseProfile::default(),
    });
    let split = dataset.split(7, 0.75);
    let prepared = PreparedDataset::prepare(&dataset, &split);
    let spec = ContextSpec::default();
    let copilot = RcaCopilot::train(&prepared.train_examples(&spec), RcaCopilotConfig::default());
    let stage = CollectionStage::standard();
    let feedback = FeedbackStore::new();

    // Simulate an on-call shift: notify on 20 test incidents, collect
    // (oracle) OCE verdicts into the feedback store.
    let mut printed = false;
    for &i in prepared.test.iter().take(20) {
        let incident = &dataset.incidents()[i];
        let collected = stage.collect(incident).expect("handler registered");
        let prediction = copilot.predict(
            &prepared.incidents[i].raw_diag,
            &prepared.context_text(i, &spec),
            incident.occurred_at(),
        );
        let report = OnCallReport::assemble(
            incident,
            &collected,
            &prepared.incidents[i].summary,
            &prediction,
        );
        if !printed {
            println!("=== Example notification ===\n{}", report.render());
            printed = true;
        }
        let verdict = if prediction.label == incident.category {
            Verdict::Correct
        } else if prediction.unseen {
            Verdict::CloseEnough
        } else {
            Verdict::Incorrect
        };
        feedback.record(&prediction.label, verdict);
    }

    println!(
        "=== Shift summary ===\nOCE satisfaction over 20 notifications: {:.0}%",
        feedback.overall_satisfaction().unwrap_or(0.0) * 100.0
    );
    let review = feedback.needs_review(0.6, 2);
    if review.is_empty() {
        println!("No categories flagged for handler review.");
    } else {
        println!(
            "Categories flagged for handler review: {}",
            review.join(", ")
        );
    }
}
