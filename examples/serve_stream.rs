//! Serve a live alert stream: train the pipeline, then run the online
//! serving engine against a bursty, flapping alert stream with admission
//! control and an incrementally growing retrieval index.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example serve_stream
//! ```

use rcacopilot::core::eval::PreparedDataset;
use rcacopilot::core::pipeline::{RcaCopilot, RcaCopilotConfig};
use rcacopilot::core::ContextSpec;
use rcacopilot::serve::{
    AdmissionConfig, ArrivalModel, EngineConfig, EventOutcome, IndexMode, ServeEngine, StreamConfig,
};
use rcacopilot::simcloud::noise::NoiseProfile;
use rcacopilot::simcloud::{generate_dataset, CampaignConfig, Incident, Topology};

fn main() {
    // 1. Simulate a campaign and train the pipeline on the first 60%.
    let dataset = generate_dataset(&CampaignConfig {
        seed: 42,
        topology: Topology::new(2, 6, 3, 3),
        noise: NoiseProfile::default(),
    });
    let split = dataset.split(7, 0.6);
    let prepared = PreparedDataset::prepare(&dataset, &split);
    let spec = ContextSpec::default();
    let copilot = RcaCopilot::train(&prepared.train_examples(&spec), RcaCopilotConfig::default());
    println!(
        "Trained on {} incidents; streaming {} test incidents.",
        copilot.history_len(),
        split.test.len()
    );

    // 2. Stream the held-out incidents as a bursty alert feed: Poisson
    //    background traffic, alert storms, and flapping monitors that
    //    re-raise recent incidents.
    let test: Vec<Incident> = split
        .test
        .iter()
        .map(|&i| dataset.incidents()[i].clone())
        .collect();
    let stream = StreamConfig {
        seed: 17,
        arrivals: ArrivalModel::Bursty {
            mean_gap_secs: 300,
            burst_prob: 0.35,
            burst_len: 6,
            burst_gap_secs: 8,
        },
        reraise_prob: 0.2,
    };

    // 3. Serve with 4 workers, severity-aware admission control, and the
    //    online index: every resolved incident joins the retrieval
    //    history for the incidents that arrive after it resolves.
    let engine = ServeEngine::new(
        copilot,
        EngineConfig {
            workers: 4,
            index_mode: IndexMode::Online,
            admission: AdmissionConfig {
                capacity_secs: 3_600,
                ..AdmissionConfig::default()
            },
            ..EngineConfig::default()
        },
    );
    let outcome = engine.run(&test, &stream);

    // 4. Score the predictions and summarize the run.
    let mut correct = 0usize;
    let mut predicted = 0usize;
    let mut shed = 0usize;
    let mut degraded = 0usize;
    let mut failed = 0usize;
    for record in &outcome.records {
        match &record.outcome {
            EventOutcome::Shed { .. } => shed += 1,
            EventOutcome::Predicted {
                prediction,
                degraded: was_degraded,
            } => {
                predicted += 1;
                if *was_degraded {
                    degraded += 1;
                }
                if prediction.label == test[record.incident_idx].category {
                    correct += 1;
                }
            }
            EventOutcome::Failed { .. } => failed += 1,
        }
    }
    println!(
        "\n{} events streamed: {predicted} predicted ({degraded} degraded), {shed} shed, {failed} failed.",
        outcome.records.len()
    );
    println!(
        "Accuracy on served predictions: {correct}/{predicted} ({:.1}%).",
        100.0 * correct as f64 / predicted.max(1) as f64
    );
    println!(
        "Virtual throughput: {:.1} incidents/hour; latency p50 {} s, p99 {} s; \
         peak queue depth {}.",
        outcome.exec.throughput_per_hour(),
        outcome.exec.latencies.percentile(0.50),
        outcome.exec.latencies.percentile(0.99),
        outcome.exec.peak_queue_depth,
    );
    println!("\nFirst few log lines of the deterministic prediction log:");
    for line in outcome.log.lines().take(5) {
        println!("  {line}");
    }
}
