//! Unseen-incident handling — the paper's Figure 11 scenario.
//!
//! A FullDisk incident arrives while the historical index has *never*
//! seen that category (we train on history with all FullDisk incidents
//! removed). RCACopilot answers "Unseen incident", synthesizes a new
//! category keyword, and explains the reasoning — the paper's model
//! produced "I/O Bottleneck" for the same situation.
//!
//! ```sh
//! cargo run --release --example unseen_incident
//! ```

use rcacopilot::core::context::ContextSpec;
use rcacopilot::core::eval::PreparedDataset;
use rcacopilot::core::pipeline::{RcaCopilot, RcaCopilotConfig};
use rcacopilot::simcloud::noise::NoiseProfile;
use rcacopilot::simcloud::{generate_dataset, CampaignConfig, Topology};

fn main() {
    let dataset = generate_dataset(&CampaignConfig {
        seed: 42,
        topology: Topology::new(4, 10, 4, 4),
        noise: NoiseProfile::default(),
    });
    let split = dataset.split(7, 0.75);
    let prepared = PreparedDataset::prepare(&dataset, &split);
    let spec = ContextSpec::default();

    // Train WITHOUT any FullDisk history: it is a brand-new root cause
    // from the model's point of view.
    let examples: Vec<_> = prepared
        .train_examples(&spec)
        .into_iter()
        .filter(|e| e.category != "FullDisk")
        .collect();
    let copilot = RcaCopilot::train(&examples, RcaCopilotConfig::default());
    println!(
        "Trained on {} incidents; FullDisk history withheld.",
        copilot.history_len()
    );

    let (idx, incident) = prepared
        .incidents
        .iter()
        .enumerate()
        .find(|(_, i)| i.category == "FullDisk")
        .expect("FullDisk occurs in the year");

    println!("\n=== Incoming incident (ground truth: FullDisk) ===");
    println!("{}", incident.alert_info);
    println!("\nSummarized diagnostics:\n{}", incident.summary);

    let prediction = copilot.predict(
        &incident.raw_diag,
        &prepared.context_text(idx, &spec),
        incident.at,
    );
    println!("\n=== RCACopilot's answer ===");
    println!("unseen incident: {}", prediction.unseen);
    println!("synthesized category keyword: {:?}", prediction.label);
    println!(
        "\nExplanation (Figure 11 shape):\n{}",
        prediction.explanation
    );

    assert!(
        prediction.unseen,
        "an incident with no same-category history should be declared unseen"
    );
    assert!(
        prediction.label.contains("I/O") || prediction.label.contains("Bottleneck"),
        "disk-pressure evidence should drive the synthesized label, got {:?}",
        prediction.label
    );
    println!("\nOCEs would later relabel this \"FullDisk\" — the synthesized keyword captured the same failure mode.");
}
