//! Authoring a custom incident handler — what an OCE does in the paper's
//! web UI (§4.1.1, Figure 10), here through the library API.
//!
//! Builds a handler for poisoned-message alerts with scope switching,
//! branching on query results, and mitigation actions; registers two
//! versions in the registry; persists everything to JSON; and executes
//! the latest version against a simulated incident.
//!
//! ```sh
//! cargo run --release --example handler_authoring
//! ```

use rcacopilot::handlers::{
    Action, ActionNode, Condition, Handler, HandlerRegistry, ScopeDirection,
};
use rcacopilot::simcloud::noise::NoiseProfile;
use rcacopilot::simcloud::{generate_dataset, CampaignConfig, Topology};
use rcacopilot::telemetry::alert::AlertType;
use rcacopilot::telemetry::log::LogLevel;
use rcacopilot::telemetry::query::Query;

fn version_one() -> Handler {
    Handler::new(
        AlertType::PoisonedMessage,
        vec![
            ActionNode::new(
                0,
                "Check poison counter",
                Action::Query {
                    query: Query::MetricStats {
                        metric: "poison_message_count".into(),
                    },
                    lookback_secs: 3 * 3600,
                },
            )
            .edge(
                Condition::RowGt {
                    key: "Last".into(),
                    threshold: 10.0,
                },
                1,
            )
            .edge(Condition::Always, 3),
            ActionNode::new(
                1,
                "Collect poison detections",
                Action::Query {
                    query: Query::Logs {
                        level: LogLevel::Error,
                        contains: Some("Poison".into()),
                        limit: 10,
                    },
                    lookback_secs: 3 * 3600,
                },
            )
            .edge(
                Condition::TextContains {
                    needle: "ConfigService".into(),
                },
                2,
            )
            .edge(Condition::Always, 3),
            ActionNode::new(
                2,
                "Mitigate: engage config service team",
                Action::Mitigate {
                    suggestion:
                        "Engage the configuration service team; settings updates are failing."
                            .into(),
                },
            ),
            ActionNode::new(
                3,
                "Collect crash report",
                Action::Query {
                    query: Query::ProcessCrashes,
                    lookback_secs: 3 * 3600,
                },
            ),
        ],
    )
}

fn version_two() -> Handler {
    // The OCE learned that machine-level scope misses forest-wide poison
    // floods: version 2 widens the scope first (a scope-switching action).
    let mut handler = version_one();
    let mut nodes = vec![ActionNode::new(
        9,
        "Widen scope to forest",
        Action::ScopeSwitch(ScopeDirection::Widen),
    )
    .edge(Condition::Always, 0)];
    nodes.append(&mut handler.nodes);
    Handler {
        note: "v2: widen scope before querying".into(),
        nodes,
        ..handler
    }
}

fn main() {
    let registry = HandlerRegistry::new();
    let v0 = registry.register(version_one()).expect("valid handler");
    let v1 = registry.register(version_two()).expect("valid handler");
    println!("Registered handler versions {v0} and {v1} for PoisonedMessage alerts.");
    println!(
        "Registry keeps history: {} versions stored; latest note: {:?}",
        registry.version_count(AlertType::PoisonedMessage),
        registry.current(AlertType::PoisonedMessage).unwrap().note
    );

    // Persist and restore, as the paper's database-backed store does.
    let json = registry.to_json();
    println!("\nSerialized registry: {} bytes of JSON.", json.len());
    let restored = HandlerRegistry::from_json(&json).expect("round trips");
    let handler = restored
        .current(AlertType::PoisonedMessage)
        .expect("restored handler");

    // Execute against a real simulated poisoned-message incident.
    let dataset = generate_dataset(&CampaignConfig {
        seed: 11,
        topology: Topology::new(2, 6, 3, 3),
        noise: NoiseProfile::default(),
    });
    let incident = dataset
        .incidents()
        .iter()
        .find(|i| i.alert.alert_type == AlertType::PoisonedMessage)
        .expect("poisoned-message incidents exist");
    let run = handler
        .execute(&incident.snapshot, incident.alert.scope)
        .expect("executes");

    println!(
        "\nExecuted path on incident {} ({}):",
        incident.alert.incident, incident.category
    );
    for name in &run.path {
        println!("  -> {name}");
    }
    for m in &run.mitigations {
        println!("  suggested mitigation: {m}");
    }
    println!(
        "\nCollected {} diagnostic sections, {} chars of diagnostic text.",
        run.sections.len(),
        run.diagnostic_text().len()
    );
}
