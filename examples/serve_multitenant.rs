//! Serve several tenants over one shared plane: train the pipeline, give
//! each tenant its own alert stream and fair-share budget, then put one
//! tenant into a flapping storm with a ~30% worker-fault climate and show
//! the bulkheads containing it — the quiet tenants' prediction logs are
//! byte-identical to solo runs.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example serve_multitenant
//! ```

use rcacopilot::core::eval::PreparedDataset;
use rcacopilot::core::pipeline::{RcaCopilot, RcaCopilotConfig};
use rcacopilot::core::ContextSpec;
use rcacopilot::serve::{
    AdmissionConfig, BreakerConfig, EngineConfig, EventOutcome, IndexMode, MultiTenantConfig,
    MultiTenantEngine, ServeEngine,
};
use rcacopilot::simcloud::noise::NoiseProfile;
use rcacopilot::simcloud::{
    generate_dataset, partition_tenants, replicate_partition, zipf_fleet, zipf_volumes,
    CampaignConfig, Incident, TenantFleetConfig, TenantStormPlan, Topology,
};
use rcacopilot::telemetry::ids::TenantId;
use std::sync::Arc;

fn main() {
    // 1. Simulate a campaign and train the pipeline on the first 60%.
    let dataset = generate_dataset(&CampaignConfig {
        seed: 42,
        topology: Topology::new(2, 6, 3, 3),
        noise: NoiseProfile::default(),
    });
    let split = dataset.split(7, 0.6);
    let prepared = PreparedDataset::prepare(&dataset, &split);
    let spec = ContextSpec::default();
    let copilot = RcaCopilot::train(&prepared.train_examples(&spec), RcaCopilotConfig::default());
    let test: Vec<Incident> = split
        .test
        .iter()
        .map(|&i| dataset.incidents()[i].clone())
        .collect();

    // 2. Describe the tenants: three well-behaved teams and one noisy
    //    neighbor whose monitors flap and whose events poison workers.
    //    The storm plan carries a bulkhead cap (2 in-flight) and the same
    //    fair-share weight as everyone else.
    let plans = [
        TenantStormPlan::quiet(TenantId(1), 11),
        TenantStormPlan::quiet(TenantId(2), 12),
        TenantStormPlan::quiet(TenantId(3), 13),
        TenantStormPlan::flapping_storm(TenantId(99), 14),
    ];
    let parts = partition_tenants(&test, &plans);
    println!(
        "Trained on {} incidents; {} tenants share {} test incidents.",
        copilot.history_len(),
        plans.len(),
        test.len()
    );

    // 3. Run the shared plane: per-tenant fair-share admission, tenant-
    //    namespaced caches, per-tenant circuit breakers, and a DRR-
    //    scheduled worker pool with the storm bulkhead-capped.
    let config = MultiTenantConfig {
        base: EngineConfig {
            workers: 4,
            index_mode: IndexMode::Online,
            admission: AdmissionConfig {
                capacity_secs: 28_800,
                ..AdmissionConfig::default()
            },
            breaker: Some(BreakerConfig::default()),
            ..EngineConfig::default()
        },
        ..MultiTenantConfig::default()
    };
    let plane = MultiTenantEngine::from_plans(copilot.clone(), config.clone(), &plans)
        .expect("non-empty, distinct tenant plans");
    let out = plane.run(&parts).expect("one slice per tenant");

    // 4. Per-tenant summary, with the isolation check made explicit: each
    //    tenant's slice of the merged run equals a solo run of the same
    //    derived config, storm or no storm.
    println!(
        "\n{:>7} {:>6} {:>7} {:>5} {:>5} {:>5} {:>7} {:>9} {:>6}",
        "tenant", "role", "events", "pred", "degr", "shed", "failed", "accuracy", "solo?"
    );
    for (slot, run) in out.tenants.iter().enumerate() {
        let spec = &plane.specs()[slot];
        let solo_cfg =
            MultiTenantEngine::tenant_engine_config(&config.base, spec, plane.total_weight(), None);
        let solo = ServeEngine::new(copilot.clone(), solo_cfg).run(&parts[slot], &spec.stream);
        let mut pred = 0usize;
        let mut degraded = 0usize;
        let mut shed = 0usize;
        let mut failed = 0usize;
        let mut correct = 0usize;
        for r in &run.outcome.records {
            match &r.outcome {
                EventOutcome::Shed { .. } => shed += 1,
                EventOutcome::Predicted {
                    prediction,
                    degraded: was_degraded,
                } => {
                    pred += 1;
                    if *was_degraded {
                        degraded += 1;
                    }
                    if prediction.label == parts[slot][r.incident_idx].category {
                        correct += 1;
                    }
                }
                EventOutcome::Failed { .. } => failed += 1,
            }
        }
        println!(
            "{:>7} {:>6} {:>7} {:>5} {:>5} {:>5} {:>7} {:>8.1}% {:>6}",
            run.tenant.0,
            if plans[slot].total_fault_per_mille() > 0 {
                "storm"
            } else {
                "quiet"
            },
            run.outcome.records.len(),
            pred,
            degraded,
            shed,
            failed,
            100.0 * correct as f64 / pred.max(1) as f64,
            if run.outcome.log == solo.log {
                "yes"
            } else {
                "NO"
            },
        );
        assert_eq!(
            run.outcome.log, solo.log,
            "tenant {:?} diverged from its solo baseline",
            run.tenant
        );
    }

    println!(
        "\nShared pool (DRR, quantum {}s): {} jobs, makespan {}s, \
         latency p50 {}s p99 {}s, peak queue depth {}.",
        config.quantum_secs,
        out.drr.merged.completed,
        out.drr.merged.makespan_secs,
        out.drr.merged.latencies.percentile(0.50),
        out.drr.merged.latencies.percentile(0.99),
        out.drr.merged.peak_queue_depth,
    );
    println!("\nFirst few lines of the merged tenant-tagged prediction log:");
    for line in out.log.lines().take(5) {
        println!("  {line}");
    }

    // 5. Scale phase: a 256-tenant heavy-tailed (Zipf) fleet over the
    //    tenant-sharded runtime. Per-tenant setup is O(1) — the trained
    //    pipeline is shared by Arc, caches are namespaced, and the WAL
    //    stream is pre-split — so thousands of streams compose without
    //    cloning the model. The sharded schedule reproduces the
    //    sequential one byte for byte.
    let fleet_cfg = TenantFleetConfig {
        tenants: 256,
        total_events: 2_048,
        ..TenantFleetConfig::default()
    };
    let fleet = zipf_fleet(&fleet_cfg);
    let volumes = zipf_volumes(&fleet_cfg);
    let fleet_parts = replicate_partition(&test, &fleet, &volumes);
    let fleet_config = |shards: usize| MultiTenantConfig {
        base: EngineConfig {
            index_mode: IndexMode::Frozen,
            admission: AdmissionConfig::unbounded(),
            ..EngineConfig::default()
        },
        shards,
        tenant_workers: Some(1),
        ..MultiTenantConfig::default()
    };
    let copilot = Arc::new(copilot);
    let sequential =
        MultiTenantEngine::from_plans_shared(Arc::clone(&copilot), fleet_config(1), &fleet)
            .expect("generated fleet is well-formed")
            .run(&fleet_parts)
            .expect("one slice per tenant");
    let sharded =
        MultiTenantEngine::from_plans_shared(Arc::clone(&copilot), fleet_config(8), &fleet)
            .expect("generated fleet is well-formed")
            .run(&fleet_parts)
            .expect("one slice per tenant");
    assert_eq!(
        sharded.log, sequential.log,
        "sharded schedule must reproduce the sequential transcript"
    );
    println!(
        "\nZipf fleet: {} tenants, {} events, horizon {}s — 8-shard run \
         byte-identical to sequential ({} merged log lines).",
        fleet.len(),
        fleet_parts.iter().map(Vec::len).sum::<usize>(),
        sharded.horizon_secs,
        sharded.log.lines().count(),
    );
}
