//! End-to-end diagnosis of a hub-port-exhaustion incident — the paper's
//! running example (Figures 5, 6, and 8).
//!
//! Shows each pipeline stage's artifact: the alert, the handler's executed
//! path, the multi-source diagnostic information (Figure 6 shape), the
//! 120–140-word summary (Figure 8 shape), the retrieval demonstrations,
//! and the final prediction with its explanation.
//!
//! ```sh
//! cargo run --release --example diagnose_incident
//! ```

use rcacopilot::core::collection::CollectionStage;
use rcacopilot::core::context::ContextSpec;
use rcacopilot::core::eval::PreparedDataset;
use rcacopilot::core::pipeline::{RcaCopilot, RcaCopilotConfig};
use rcacopilot::simcloud::noise::NoiseProfile;
use rcacopilot::simcloud::{generate_dataset, CampaignConfig, Topology};

fn main() {
    let dataset = generate_dataset(&CampaignConfig {
        seed: 42,
        topology: Topology::new(4, 10, 4, 4),
        noise: NoiseProfile::default(),
    });

    // Pick a late hub-port-exhaustion incident so plenty of history exists.
    let (idx, incident) = dataset
        .incidents()
        .iter()
        .enumerate()
        .rfind(|(_, i)| i.category == "HubPortExhaustion")
        .expect("head category occurs");

    println!(
        "=== 1. The alert (what the monitor saw) ===\n{}\n",
        incident.alert.render()
    );

    // Collection stage: match the alert to its handler and execute it.
    let stage = CollectionStage::standard();
    let collected = stage.collect(incident).expect("handler registered");
    println!("=== 2. Handler execution path ===");
    for (step, name) in collected.run.path.iter().enumerate() {
        println!("  {step}. {name}");
    }
    if !collected.run.mitigations.is_empty() {
        println!("  suggested mitigations:");
        for m in &collected.run.mitigations {
            println!("    - {m}");
        }
    }

    let diag = collected.diagnostic_text();
    println!("\n=== 3. Multi-source diagnostic information (Figure 6 shape) ===");
    for line in diag.lines().take(28) {
        println!("  {line}");
    }
    println!("  ... ({} lines total)", diag.lines().count());

    // Prediction stage over the full history before this incident.
    let split = dataset.split(7, 0.75);
    let prepared = PreparedDataset::prepare(&dataset, &split);
    let spec = ContextSpec::default();
    println!(
        "\n=== 4. Summarized diagnostics ({} words, Figure 8 shape) ===\n{}",
        prepared.incidents[idx].summary.split_whitespace().count(),
        prepared.incidents[idx].summary
    );

    let copilot = RcaCopilot::train(&prepared.train_examples(&spec), RcaCopilotConfig::default());
    let prediction = copilot.predict(
        &prepared.incidents[idx].raw_diag,
        &prepared.context_text(idx, &spec),
        prepared.incidents[idx].at,
    );
    println!("\n=== 5. Retrieved demonstrations (distinct categories) ===");
    for (letter, cat) in (b'B'..).zip(&prediction.demo_categories) {
        println!("  {}: {cat}", letter as char);
    }
    println!(
        "\n=== 6. Prediction ===\nground truth: {}\npredicted:    {} (confidence {:.2})\n\n{}",
        incident.category, prediction.label, prediction.confidence, prediction.explanation
    );
}
