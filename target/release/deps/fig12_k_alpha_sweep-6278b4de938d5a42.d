/root/repo/target/release/deps/fig12_k_alpha_sweep-6278b4de938d5a42.d: crates/bench/benches/fig12_k_alpha_sweep.rs

/root/repo/target/release/deps/fig12_k_alpha_sweep-6278b4de938d5a42: crates/bench/benches/fig12_k_alpha_sweep.rs

crates/bench/benches/fig12_k_alpha_sweep.rs:
