/root/repo/target/release/deps/rcacopilot_textkit-bd42e2b9758e46ef.d: crates/textkit/src/lib.rs crates/textkit/src/bpe.rs crates/textkit/src/ngram.rs crates/textkit/src/normalize.rs crates/textkit/src/sparse.rs crates/textkit/src/tfidf.rs

/root/repo/target/release/deps/librcacopilot_textkit-bd42e2b9758e46ef.rlib: crates/textkit/src/lib.rs crates/textkit/src/bpe.rs crates/textkit/src/ngram.rs crates/textkit/src/normalize.rs crates/textkit/src/sparse.rs crates/textkit/src/tfidf.rs

/root/repo/target/release/deps/librcacopilot_textkit-bd42e2b9758e46ef.rmeta: crates/textkit/src/lib.rs crates/textkit/src/bpe.rs crates/textkit/src/ngram.rs crates/textkit/src/normalize.rs crates/textkit/src/sparse.rs crates/textkit/src/tfidf.rs

crates/textkit/src/lib.rs:
crates/textkit/src/bpe.rs:
crates/textkit/src/ngram.rs:
crates/textkit/src/normalize.rs:
crates/textkit/src/sparse.rs:
crates/textkit/src/tfidf.rs:
