/root/repo/target/release/deps/rcacopilot_core-3ad72cabd7199321.d: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/baselines.rs crates/core/src/collection.rs crates/core/src/context.rs crates/core/src/eval.rs crates/core/src/feedback.rs crates/core/src/metrics.rs crates/core/src/pipeline.rs crates/core/src/report.rs crates/core/src/retrieval.rs

/root/repo/target/release/deps/rcacopilot_core-3ad72cabd7199321: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/baselines.rs crates/core/src/collection.rs crates/core/src/context.rs crates/core/src/eval.rs crates/core/src/feedback.rs crates/core/src/metrics.rs crates/core/src/pipeline.rs crates/core/src/report.rs crates/core/src/retrieval.rs

crates/core/src/lib.rs:
crates/core/src/ablation.rs:
crates/core/src/baselines.rs:
crates/core/src/collection.rs:
crates/core/src/context.rs:
crates/core/src/eval.rs:
crates/core/src/feedback.rs:
crates/core/src/metrics.rs:
crates/core/src/pipeline.rs:
crates/core/src/report.rs:
crates/core/src/retrieval.rs:
