/root/repo/target/release/deps/table1_categories-896b6b7756b433d5.d: crates/bench/benches/table1_categories.rs

/root/repo/target/release/deps/table1_categories-896b6b7756b433d5: crates/bench/benches/table1_categories.rs

crates/bench/benches/table1_categories.rs:
