/root/repo/target/release/deps/fig2_recurrence-4a34dd9ae8a2b2ca.d: crates/bench/benches/fig2_recurrence.rs

/root/repo/target/release/deps/fig2_recurrence-4a34dd9ae8a2b2ca: crates/bench/benches/fig2_recurrence.rs

crates/bench/benches/fig2_recurrence.rs:
