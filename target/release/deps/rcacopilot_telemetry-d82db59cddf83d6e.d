/root/repo/target/release/deps/rcacopilot_telemetry-d82db59cddf83d6e.d: crates/telemetry/src/lib.rs crates/telemetry/src/alert.rs crates/telemetry/src/artifacts.rs crates/telemetry/src/fault.rs crates/telemetry/src/ids.rs crates/telemetry/src/log.rs crates/telemetry/src/metrics.rs crates/telemetry/src/query.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/time.rs crates/telemetry/src/trace.rs

/root/repo/target/release/deps/librcacopilot_telemetry-d82db59cddf83d6e.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/alert.rs crates/telemetry/src/artifacts.rs crates/telemetry/src/fault.rs crates/telemetry/src/ids.rs crates/telemetry/src/log.rs crates/telemetry/src/metrics.rs crates/telemetry/src/query.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/time.rs crates/telemetry/src/trace.rs

/root/repo/target/release/deps/librcacopilot_telemetry-d82db59cddf83d6e.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/alert.rs crates/telemetry/src/artifacts.rs crates/telemetry/src/fault.rs crates/telemetry/src/ids.rs crates/telemetry/src/log.rs crates/telemetry/src/metrics.rs crates/telemetry/src/query.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/time.rs crates/telemetry/src/trace.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/alert.rs:
crates/telemetry/src/artifacts.rs:
crates/telemetry/src/fault.rs:
crates/telemetry/src/ids.rs:
crates/telemetry/src/log.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/query.rs:
crates/telemetry/src/snapshot.rs:
crates/telemetry/src/time.rs:
crates/telemetry/src/trace.rs:
