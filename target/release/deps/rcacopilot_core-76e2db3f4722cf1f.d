/root/repo/target/release/deps/rcacopilot_core-76e2db3f4722cf1f.d: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/baselines.rs crates/core/src/collection.rs crates/core/src/context.rs crates/core/src/eval.rs crates/core/src/feedback.rs crates/core/src/metrics.rs crates/core/src/pipeline.rs crates/core/src/report.rs crates/core/src/retrieval.rs

/root/repo/target/release/deps/librcacopilot_core-76e2db3f4722cf1f.rlib: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/baselines.rs crates/core/src/collection.rs crates/core/src/context.rs crates/core/src/eval.rs crates/core/src/feedback.rs crates/core/src/metrics.rs crates/core/src/pipeline.rs crates/core/src/report.rs crates/core/src/retrieval.rs

/root/repo/target/release/deps/librcacopilot_core-76e2db3f4722cf1f.rmeta: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/baselines.rs crates/core/src/collection.rs crates/core/src/context.rs crates/core/src/eval.rs crates/core/src/feedback.rs crates/core/src/metrics.rs crates/core/src/pipeline.rs crates/core/src/report.rs crates/core/src/retrieval.rs

crates/core/src/lib.rs:
crates/core/src/ablation.rs:
crates/core/src/baselines.rs:
crates/core/src/collection.rs:
crates/core/src/context.rs:
crates/core/src/eval.rs:
crates/core/src/feedback.rs:
crates/core/src/metrics.rs:
crates/core/src/pipeline.rs:
crates/core/src/report.rs:
crates/core/src/retrieval.rs:
