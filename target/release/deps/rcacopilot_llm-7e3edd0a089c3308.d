/root/repo/target/release/deps/rcacopilot_llm-7e3edd0a089c3308.d: crates/llm/src/lib.rs crates/llm/src/cot.rs crates/llm/src/finetune.rs crates/llm/src/labelgen.rs crates/llm/src/profile.rs crates/llm/src/prompt.rs crates/llm/src/summarize.rs

/root/repo/target/release/deps/rcacopilot_llm-7e3edd0a089c3308: crates/llm/src/lib.rs crates/llm/src/cot.rs crates/llm/src/finetune.rs crates/llm/src/labelgen.rs crates/llm/src/profile.rs crates/llm/src/prompt.rs crates/llm/src/summarize.rs

crates/llm/src/lib.rs:
crates/llm/src/cot.rs:
crates/llm/src/finetune.rs:
crates/llm/src/labelgen.rs:
crates/llm/src/profile.rs:
crates/llm/src/prompt.rs:
crates/llm/src/summarize.rs:
