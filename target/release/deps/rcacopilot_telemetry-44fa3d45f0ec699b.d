/root/repo/target/release/deps/rcacopilot_telemetry-44fa3d45f0ec699b.d: crates/telemetry/src/lib.rs crates/telemetry/src/alert.rs crates/telemetry/src/artifacts.rs crates/telemetry/src/fault.rs crates/telemetry/src/ids.rs crates/telemetry/src/log.rs crates/telemetry/src/metrics.rs crates/telemetry/src/query.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/time.rs crates/telemetry/src/trace.rs

/root/repo/target/release/deps/rcacopilot_telemetry-44fa3d45f0ec699b: crates/telemetry/src/lib.rs crates/telemetry/src/alert.rs crates/telemetry/src/artifacts.rs crates/telemetry/src/fault.rs crates/telemetry/src/ids.rs crates/telemetry/src/log.rs crates/telemetry/src/metrics.rs crates/telemetry/src/query.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/time.rs crates/telemetry/src/trace.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/alert.rs:
crates/telemetry/src/artifacts.rs:
crates/telemetry/src/fault.rs:
crates/telemetry/src/ids.rs:
crates/telemetry/src/log.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/query.rs:
crates/telemetry/src/snapshot.rs:
crates/telemetry/src/time.rs:
crates/telemetry/src/trace.rs:
