/root/repo/target/release/deps/rcacopilot_handlers-fd5c7490b47ec1b7.d: crates/handlers/src/lib.rs crates/handlers/src/action.rs crates/handlers/src/executor.rs crates/handlers/src/handler.rs crates/handlers/src/library.rs crates/handlers/src/registry.rs

/root/repo/target/release/deps/rcacopilot_handlers-fd5c7490b47ec1b7: crates/handlers/src/lib.rs crates/handlers/src/action.rs crates/handlers/src/executor.rs crates/handlers/src/handler.rs crates/handlers/src/library.rs crates/handlers/src/registry.rs

crates/handlers/src/lib.rs:
crates/handlers/src/action.rs:
crates/handlers/src/executor.rs:
crates/handlers/src/handler.rs:
crates/handlers/src/library.rs:
crates/handlers/src/registry.rs:
