/root/repo/target/release/deps/robustness_faultrate-229914a9c584d000.d: crates/bench/benches/robustness_faultrate.rs

/root/repo/target/release/deps/robustness_faultrate-229914a9c584d000: crates/bench/benches/robustness_faultrate.rs

crates/bench/benches/robustness_faultrate.rs:
