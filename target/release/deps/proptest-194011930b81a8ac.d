/root/repo/target/release/deps/proptest-194011930b81a8ac.d: shims/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-194011930b81a8ac: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
