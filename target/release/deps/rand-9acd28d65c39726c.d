/root/repo/target/release/deps/rand-9acd28d65c39726c.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-9acd28d65c39726c.rlib: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-9acd28d65c39726c.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
