/root/repo/target/release/deps/rcacopilot_gbdt-1698704fb9bb6822.d: crates/gbdt/src/lib.rs crates/gbdt/src/booster.rs crates/gbdt/src/tree.rs

/root/repo/target/release/deps/librcacopilot_gbdt-1698704fb9bb6822.rlib: crates/gbdt/src/lib.rs crates/gbdt/src/booster.rs crates/gbdt/src/tree.rs

/root/repo/target/release/deps/librcacopilot_gbdt-1698704fb9bb6822.rmeta: crates/gbdt/src/lib.rs crates/gbdt/src/booster.rs crates/gbdt/src/tree.rs

crates/gbdt/src/lib.rs:
crates/gbdt/src/booster.rs:
crates/gbdt/src/tree.rs:
