/root/repo/target/release/deps/rcacopilot-baf12d88a8e93889.d: src/lib.rs

/root/repo/target/release/deps/librcacopilot-baf12d88a8e93889.rlib: src/lib.rs

/root/repo/target/release/deps/librcacopilot-baf12d88a8e93889.rmeta: src/lib.rs

src/lib.rs:
