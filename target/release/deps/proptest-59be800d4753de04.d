/root/repo/target/release/deps/proptest-59be800d4753de04.d: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-59be800d4753de04.rlib: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-59be800d4753de04.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
