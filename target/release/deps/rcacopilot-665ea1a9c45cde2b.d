/root/repo/target/release/deps/rcacopilot-665ea1a9c45cde2b.d: src/lib.rs

/root/repo/target/release/deps/rcacopilot-665ea1a9c45cde2b: src/lib.rs

src/lib.rs:
