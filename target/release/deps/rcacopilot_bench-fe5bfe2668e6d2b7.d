/root/repo/target/release/deps/rcacopilot_bench-fe5bfe2668e6d2b7.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/librcacopilot_bench-fe5bfe2668e6d2b7.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/librcacopilot_bench-fe5bfe2668e6d2b7.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
