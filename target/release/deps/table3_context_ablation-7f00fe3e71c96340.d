/root/repo/target/release/deps/table3_context_ablation-7f00fe3e71c96340.d: crates/bench/benches/table3_context_ablation.rs

/root/repo/target/release/deps/table3_context_ablation-7f00fe3e71c96340: crates/bench/benches/table3_context_ablation.rs

crates/bench/benches/table3_context_ablation.rs:
