/root/repo/target/release/deps/fig3_longtail-6c193f64b10bb12e.d: crates/bench/benches/fig3_longtail.rs

/root/repo/target/release/deps/fig3_longtail-6c193f64b10bb12e: crates/bench/benches/fig3_longtail.rs

crates/bench/benches/fig3_longtail.rs:
