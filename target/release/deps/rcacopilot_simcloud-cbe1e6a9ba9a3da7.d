/root/repo/target/release/deps/rcacopilot_simcloud-cbe1e6a9ba9a3da7.d: crates/simcloud/src/lib.rs crates/simcloud/src/catalog.rs crates/simcloud/src/dataset.rs crates/simcloud/src/faults.rs crates/simcloud/src/generator.rs crates/simcloud/src/incident.rs crates/simcloud/src/noise.rs crates/simcloud/src/signature.rs crates/simcloud/src/teams.rs crates/simcloud/src/topology.rs

/root/repo/target/release/deps/rcacopilot_simcloud-cbe1e6a9ba9a3da7: crates/simcloud/src/lib.rs crates/simcloud/src/catalog.rs crates/simcloud/src/dataset.rs crates/simcloud/src/faults.rs crates/simcloud/src/generator.rs crates/simcloud/src/incident.rs crates/simcloud/src/noise.rs crates/simcloud/src/signature.rs crates/simcloud/src/teams.rs crates/simcloud/src/topology.rs

crates/simcloud/src/lib.rs:
crates/simcloud/src/catalog.rs:
crates/simcloud/src/dataset.rs:
crates/simcloud/src/faults.rs:
crates/simcloud/src/generator.rs:
crates/simcloud/src/incident.rs:
crates/simcloud/src/noise.rs:
crates/simcloud/src/signature.rs:
crates/simcloud/src/teams.rs:
crates/simcloud/src/topology.rs:
