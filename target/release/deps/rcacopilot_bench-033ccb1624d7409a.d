/root/repo/target/release/deps/rcacopilot_bench-033ccb1624d7409a.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/rcacopilot_bench-033ccb1624d7409a: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
