/root/repo/target/release/deps/microbench-e847f6b2294ccb8a.d: crates/bench/benches/microbench.rs

/root/repo/target/release/deps/microbench-e847f6b2294ccb8a: crates/bench/benches/microbench.rs

crates/bench/benches/microbench.rs:
