/root/repo/target/release/deps/rcacopilot_embed-0c7b44701a91b464.d: crates/embed/src/lib.rs crates/embed/src/features.rs crates/embed/src/index.rs crates/embed/src/model.rs

/root/repo/target/release/deps/rcacopilot_embed-0c7b44701a91b464: crates/embed/src/lib.rs crates/embed/src/features.rs crates/embed/src/index.rs crates/embed/src/model.rs

crates/embed/src/lib.rs:
crates/embed/src/features.rs:
crates/embed/src/index.rs:
crates/embed/src/model.rs:
