/root/repo/target/release/deps/rcacopilot_handlers-554a5fc930712ef5.d: crates/handlers/src/lib.rs crates/handlers/src/action.rs crates/handlers/src/executor.rs crates/handlers/src/handler.rs crates/handlers/src/library.rs crates/handlers/src/registry.rs

/root/repo/target/release/deps/librcacopilot_handlers-554a5fc930712ef5.rlib: crates/handlers/src/lib.rs crates/handlers/src/action.rs crates/handlers/src/executor.rs crates/handlers/src/handler.rs crates/handlers/src/library.rs crates/handlers/src/registry.rs

/root/repo/target/release/deps/librcacopilot_handlers-554a5fc930712ef5.rmeta: crates/handlers/src/lib.rs crates/handlers/src/action.rs crates/handlers/src/executor.rs crates/handlers/src/handler.rs crates/handlers/src/library.rs crates/handlers/src/registry.rs

crates/handlers/src/lib.rs:
crates/handlers/src/action.rs:
crates/handlers/src/executor.rs:
crates/handlers/src/handler.rs:
crates/handlers/src/library.rs:
crates/handlers/src/registry.rs:
