/root/repo/target/release/deps/rcacopilot_textkit-c6c2a01298a51467.d: crates/textkit/src/lib.rs crates/textkit/src/bpe.rs crates/textkit/src/ngram.rs crates/textkit/src/normalize.rs crates/textkit/src/sparse.rs crates/textkit/src/tfidf.rs

/root/repo/target/release/deps/rcacopilot_textkit-c6c2a01298a51467: crates/textkit/src/lib.rs crates/textkit/src/bpe.rs crates/textkit/src/ngram.rs crates/textkit/src/normalize.rs crates/textkit/src/sparse.rs crates/textkit/src/tfidf.rs

crates/textkit/src/lib.rs:
crates/textkit/src/bpe.rs:
crates/textkit/src/ngram.rs:
crates/textkit/src/normalize.rs:
crates/textkit/src/sparse.rs:
crates/textkit/src/tfidf.rs:
