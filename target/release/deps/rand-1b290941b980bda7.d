/root/repo/target/release/deps/rand-1b290941b980bda7.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/rand-1b290941b980bda7: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
