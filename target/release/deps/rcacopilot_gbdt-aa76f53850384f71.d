/root/repo/target/release/deps/rcacopilot_gbdt-aa76f53850384f71.d: crates/gbdt/src/lib.rs crates/gbdt/src/booster.rs crates/gbdt/src/tree.rs

/root/repo/target/release/deps/rcacopilot_gbdt-aa76f53850384f71: crates/gbdt/src/lib.rs crates/gbdt/src/booster.rs crates/gbdt/src/tree.rs

crates/gbdt/src/lib.rs:
crates/gbdt/src/booster.rs:
crates/gbdt/src/tree.rs:
