/root/repo/target/release/deps/rcacopilot_embed-ee24c86cff2fd547.d: crates/embed/src/lib.rs crates/embed/src/features.rs crates/embed/src/index.rs crates/embed/src/model.rs

/root/repo/target/release/deps/librcacopilot_embed-ee24c86cff2fd547.rlib: crates/embed/src/lib.rs crates/embed/src/features.rs crates/embed/src/index.rs crates/embed/src/model.rs

/root/repo/target/release/deps/librcacopilot_embed-ee24c86cff2fd547.rmeta: crates/embed/src/lib.rs crates/embed/src/features.rs crates/embed/src/index.rs crates/embed/src/model.rs

crates/embed/src/lib.rs:
crates/embed/src/features.rs:
crates/embed/src/index.rs:
crates/embed/src/model.rs:
