/root/repo/target/release/deps/rcacopilot_llm-079d9cf496690b2c.d: crates/llm/src/lib.rs crates/llm/src/cot.rs crates/llm/src/finetune.rs crates/llm/src/labelgen.rs crates/llm/src/profile.rs crates/llm/src/prompt.rs crates/llm/src/summarize.rs

/root/repo/target/release/deps/librcacopilot_llm-079d9cf496690b2c.rlib: crates/llm/src/lib.rs crates/llm/src/cot.rs crates/llm/src/finetune.rs crates/llm/src/labelgen.rs crates/llm/src/profile.rs crates/llm/src/prompt.rs crates/llm/src/summarize.rs

/root/repo/target/release/deps/librcacopilot_llm-079d9cf496690b2c.rmeta: crates/llm/src/lib.rs crates/llm/src/cot.rs crates/llm/src/finetune.rs crates/llm/src/labelgen.rs crates/llm/src/profile.rs crates/llm/src/prompt.rs crates/llm/src/summarize.rs

crates/llm/src/lib.rs:
crates/llm/src/cot.rs:
crates/llm/src/finetune.rs:
crates/llm/src/labelgen.rs:
crates/llm/src/profile.rs:
crates/llm/src/prompt.rs:
crates/llm/src/summarize.rs:
