/root/repo/target/release/deps/table2_effectiveness-46dc63251a38dd0f.d: crates/bench/benches/table2_effectiveness.rs

/root/repo/target/release/deps/table2_effectiveness-46dc63251a38dd0f: crates/bench/benches/table2_effectiveness.rs

crates/bench/benches/table2_effectiveness.rs:
