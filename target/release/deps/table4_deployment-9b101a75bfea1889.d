/root/repo/target/release/deps/table4_deployment-9b101a75bfea1889.d: crates/bench/benches/table4_deployment.rs

/root/repo/target/release/deps/table4_deployment-9b101a75bfea1889: crates/bench/benches/table4_deployment.rs

crates/bench/benches/table4_deployment.rs:
