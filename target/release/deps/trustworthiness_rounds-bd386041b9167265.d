/root/repo/target/release/deps/trustworthiness_rounds-bd386041b9167265.d: crates/bench/benches/trustworthiness_rounds.rs

/root/repo/target/release/deps/trustworthiness_rounds-bd386041b9167265: crates/bench/benches/trustworthiness_rounds.rs

crates/bench/benches/trustworthiness_rounds.rs:
