/root/repo/target/release/deps/serde_json-470b0cfed8182217.d: shims/serde_json/src/lib.rs

/root/repo/target/release/deps/serde_json-470b0cfed8182217: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:
