/root/repo/target/release/deps/rcacopilot_simcloud-29f4d4bb23dba8ac.d: crates/simcloud/src/lib.rs crates/simcloud/src/catalog.rs crates/simcloud/src/dataset.rs crates/simcloud/src/faults.rs crates/simcloud/src/generator.rs crates/simcloud/src/incident.rs crates/simcloud/src/noise.rs crates/simcloud/src/signature.rs crates/simcloud/src/teams.rs crates/simcloud/src/topology.rs

/root/repo/target/release/deps/librcacopilot_simcloud-29f4d4bb23dba8ac.rlib: crates/simcloud/src/lib.rs crates/simcloud/src/catalog.rs crates/simcloud/src/dataset.rs crates/simcloud/src/faults.rs crates/simcloud/src/generator.rs crates/simcloud/src/incident.rs crates/simcloud/src/noise.rs crates/simcloud/src/signature.rs crates/simcloud/src/teams.rs crates/simcloud/src/topology.rs

/root/repo/target/release/deps/librcacopilot_simcloud-29f4d4bb23dba8ac.rmeta: crates/simcloud/src/lib.rs crates/simcloud/src/catalog.rs crates/simcloud/src/dataset.rs crates/simcloud/src/faults.rs crates/simcloud/src/generator.rs crates/simcloud/src/incident.rs crates/simcloud/src/noise.rs crates/simcloud/src/signature.rs crates/simcloud/src/teams.rs crates/simcloud/src/topology.rs

crates/simcloud/src/lib.rs:
crates/simcloud/src/catalog.rs:
crates/simcloud/src/dataset.rs:
crates/simcloud/src/faults.rs:
crates/simcloud/src/generator.rs:
crates/simcloud/src/incident.rs:
crates/simcloud/src/noise.rs:
crates/simcloud/src/signature.rs:
crates/simcloud/src/teams.rs:
crates/simcloud/src/topology.rs:
