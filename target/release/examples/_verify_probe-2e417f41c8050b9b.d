/root/repo/target/release/examples/_verify_probe-2e417f41c8050b9b.d: examples/_verify_probe.rs

/root/repo/target/release/examples/_verify_probe-2e417f41c8050b9b: examples/_verify_probe.rs

examples/_verify_probe.rs:
