/root/repo/target/release/examples/diagnose_incident-8b47b7d22db27729.d: examples/diagnose_incident.rs

/root/repo/target/release/examples/diagnose_incident-8b47b7d22db27729: examples/diagnose_incident.rs

examples/diagnose_incident.rs:
