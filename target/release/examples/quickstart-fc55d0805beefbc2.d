/root/repo/target/release/examples/quickstart-fc55d0805beefbc2.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-fc55d0805beefbc2: examples/quickstart.rs

examples/quickstart.rs:
