/root/repo/target/debug/examples/oncall_report-05da766d07388eb6.d: examples/oncall_report.rs

/root/repo/target/debug/examples/oncall_report-05da766d07388eb6: examples/oncall_report.rs

examples/oncall_report.rs:
