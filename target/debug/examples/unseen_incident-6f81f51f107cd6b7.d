/root/repo/target/debug/examples/unseen_incident-6f81f51f107cd6b7.d: examples/unseen_incident.rs

/root/repo/target/debug/examples/unseen_incident-6f81f51f107cd6b7: examples/unseen_incident.rs

examples/unseen_incident.rs:
