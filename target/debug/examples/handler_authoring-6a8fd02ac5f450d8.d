/root/repo/target/debug/examples/handler_authoring-6a8fd02ac5f450d8.d: examples/handler_authoring.rs Cargo.toml

/root/repo/target/debug/examples/libhandler_authoring-6a8fd02ac5f450d8.rmeta: examples/handler_authoring.rs Cargo.toml

examples/handler_authoring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
