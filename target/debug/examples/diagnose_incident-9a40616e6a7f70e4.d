/root/repo/target/debug/examples/diagnose_incident-9a40616e6a7f70e4.d: examples/diagnose_incident.rs

/root/repo/target/debug/examples/diagnose_incident-9a40616e6a7f70e4: examples/diagnose_incident.rs

examples/diagnose_incident.rs:
