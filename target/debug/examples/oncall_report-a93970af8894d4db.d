/root/repo/target/debug/examples/oncall_report-a93970af8894d4db.d: examples/oncall_report.rs Cargo.toml

/root/repo/target/debug/examples/liboncall_report-a93970af8894d4db.rmeta: examples/oncall_report.rs Cargo.toml

examples/oncall_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
