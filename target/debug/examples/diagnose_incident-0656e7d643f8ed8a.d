/root/repo/target/debug/examples/diagnose_incident-0656e7d643f8ed8a.d: examples/diagnose_incident.rs Cargo.toml

/root/repo/target/debug/examples/libdiagnose_incident-0656e7d643f8ed8a.rmeta: examples/diagnose_incident.rs Cargo.toml

examples/diagnose_incident.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
