/root/repo/target/debug/examples/quickstart-d0a223f2ab59c56a.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-d0a223f2ab59c56a: examples/quickstart.rs

examples/quickstart.rs:
