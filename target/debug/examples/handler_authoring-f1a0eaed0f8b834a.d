/root/repo/target/debug/examples/handler_authoring-f1a0eaed0f8b834a.d: examples/handler_authoring.rs

/root/repo/target/debug/examples/handler_authoring-f1a0eaed0f8b834a: examples/handler_authoring.rs

examples/handler_authoring.rs:
