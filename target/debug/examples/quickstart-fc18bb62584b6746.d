/root/repo/target/debug/examples/quickstart-fc18bb62584b6746.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-fc18bb62584b6746.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
