/root/repo/target/debug/examples/unseen_incident-1847a651f4437757.d: examples/unseen_incident.rs Cargo.toml

/root/repo/target/debug/examples/libunseen_incident-1847a651f4437757.rmeta: examples/unseen_incident.rs Cargo.toml

examples/unseen_incident.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
