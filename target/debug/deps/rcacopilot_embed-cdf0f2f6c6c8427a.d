/root/repo/target/debug/deps/rcacopilot_embed-cdf0f2f6c6c8427a.d: crates/embed/src/lib.rs crates/embed/src/features.rs crates/embed/src/index.rs crates/embed/src/model.rs Cargo.toml

/root/repo/target/debug/deps/librcacopilot_embed-cdf0f2f6c6c8427a.rmeta: crates/embed/src/lib.rs crates/embed/src/features.rs crates/embed/src/index.rs crates/embed/src/model.rs Cargo.toml

crates/embed/src/lib.rs:
crates/embed/src/features.rs:
crates/embed/src/index.rs:
crates/embed/src/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
