/root/repo/target/debug/deps/proptest-8c327e689334496b.d: shims/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-8c327e689334496b.rmeta: shims/proptest/src/lib.rs Cargo.toml

shims/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
