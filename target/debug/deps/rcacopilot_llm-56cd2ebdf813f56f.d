/root/repo/target/debug/deps/rcacopilot_llm-56cd2ebdf813f56f.d: crates/llm/src/lib.rs crates/llm/src/cot.rs crates/llm/src/finetune.rs crates/llm/src/labelgen.rs crates/llm/src/profile.rs crates/llm/src/prompt.rs crates/llm/src/summarize.rs

/root/repo/target/debug/deps/rcacopilot_llm-56cd2ebdf813f56f: crates/llm/src/lib.rs crates/llm/src/cot.rs crates/llm/src/finetune.rs crates/llm/src/labelgen.rs crates/llm/src/profile.rs crates/llm/src/prompt.rs crates/llm/src/summarize.rs

crates/llm/src/lib.rs:
crates/llm/src/cot.rs:
crates/llm/src/finetune.rs:
crates/llm/src/labelgen.rs:
crates/llm/src/profile.rs:
crates/llm/src/prompt.rs:
crates/llm/src/summarize.rs:
