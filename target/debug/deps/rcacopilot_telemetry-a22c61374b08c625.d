/root/repo/target/debug/deps/rcacopilot_telemetry-a22c61374b08c625.d: crates/telemetry/src/lib.rs crates/telemetry/src/alert.rs crates/telemetry/src/artifacts.rs crates/telemetry/src/fault.rs crates/telemetry/src/ids.rs crates/telemetry/src/log.rs crates/telemetry/src/metrics.rs crates/telemetry/src/query.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/time.rs crates/telemetry/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/librcacopilot_telemetry-a22c61374b08c625.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/alert.rs crates/telemetry/src/artifacts.rs crates/telemetry/src/fault.rs crates/telemetry/src/ids.rs crates/telemetry/src/log.rs crates/telemetry/src/metrics.rs crates/telemetry/src/query.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/time.rs crates/telemetry/src/trace.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/alert.rs:
crates/telemetry/src/artifacts.rs:
crates/telemetry/src/fault.rs:
crates/telemetry/src/ids.rs:
crates/telemetry/src/log.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/query.rs:
crates/telemetry/src/snapshot.rs:
crates/telemetry/src/time.rs:
crates/telemetry/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
