/root/repo/target/debug/deps/rcacopilot_textkit-cc5a79ff610fafb3.d: crates/textkit/src/lib.rs crates/textkit/src/bpe.rs crates/textkit/src/ngram.rs crates/textkit/src/normalize.rs crates/textkit/src/sparse.rs crates/textkit/src/tfidf.rs

/root/repo/target/debug/deps/librcacopilot_textkit-cc5a79ff610fafb3.rlib: crates/textkit/src/lib.rs crates/textkit/src/bpe.rs crates/textkit/src/ngram.rs crates/textkit/src/normalize.rs crates/textkit/src/sparse.rs crates/textkit/src/tfidf.rs

/root/repo/target/debug/deps/librcacopilot_textkit-cc5a79ff610fafb3.rmeta: crates/textkit/src/lib.rs crates/textkit/src/bpe.rs crates/textkit/src/ngram.rs crates/textkit/src/normalize.rs crates/textkit/src/sparse.rs crates/textkit/src/tfidf.rs

crates/textkit/src/lib.rs:
crates/textkit/src/bpe.rs:
crates/textkit/src/ngram.rs:
crates/textkit/src/normalize.rs:
crates/textkit/src/sparse.rs:
crates/textkit/src/tfidf.rs:
