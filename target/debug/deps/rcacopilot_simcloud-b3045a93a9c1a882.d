/root/repo/target/debug/deps/rcacopilot_simcloud-b3045a93a9c1a882.d: crates/simcloud/src/lib.rs crates/simcloud/src/catalog.rs crates/simcloud/src/dataset.rs crates/simcloud/src/faults.rs crates/simcloud/src/generator.rs crates/simcloud/src/incident.rs crates/simcloud/src/noise.rs crates/simcloud/src/signature.rs crates/simcloud/src/teams.rs crates/simcloud/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/librcacopilot_simcloud-b3045a93a9c1a882.rmeta: crates/simcloud/src/lib.rs crates/simcloud/src/catalog.rs crates/simcloud/src/dataset.rs crates/simcloud/src/faults.rs crates/simcloud/src/generator.rs crates/simcloud/src/incident.rs crates/simcloud/src/noise.rs crates/simcloud/src/signature.rs crates/simcloud/src/teams.rs crates/simcloud/src/topology.rs Cargo.toml

crates/simcloud/src/lib.rs:
crates/simcloud/src/catalog.rs:
crates/simcloud/src/dataset.rs:
crates/simcloud/src/faults.rs:
crates/simcloud/src/generator.rs:
crates/simcloud/src/incident.rs:
crates/simcloud/src/noise.rs:
crates/simcloud/src/signature.rs:
crates/simcloud/src/teams.rs:
crates/simcloud/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
