/root/repo/target/debug/deps/serde_json-b65b33d7379b5872.d: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-b65b33d7379b5872.rlib: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-b65b33d7379b5872.rmeta: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:
