/root/repo/target/debug/deps/rcacopilot_textkit-c23c50281358e92b.d: crates/textkit/src/lib.rs crates/textkit/src/bpe.rs crates/textkit/src/ngram.rs crates/textkit/src/normalize.rs crates/textkit/src/sparse.rs crates/textkit/src/tfidf.rs Cargo.toml

/root/repo/target/debug/deps/librcacopilot_textkit-c23c50281358e92b.rmeta: crates/textkit/src/lib.rs crates/textkit/src/bpe.rs crates/textkit/src/ngram.rs crates/textkit/src/normalize.rs crates/textkit/src/sparse.rs crates/textkit/src/tfidf.rs Cargo.toml

crates/textkit/src/lib.rs:
crates/textkit/src/bpe.rs:
crates/textkit/src/ngram.rs:
crates/textkit/src/normalize.rs:
crates/textkit/src/sparse.rs:
crates/textkit/src/tfidf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
