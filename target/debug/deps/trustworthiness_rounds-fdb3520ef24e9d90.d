/root/repo/target/debug/deps/trustworthiness_rounds-fdb3520ef24e9d90.d: crates/bench/benches/trustworthiness_rounds.rs Cargo.toml

/root/repo/target/debug/deps/libtrustworthiness_rounds-fdb3520ef24e9d90.rmeta: crates/bench/benches/trustworthiness_rounds.rs Cargo.toml

crates/bench/benches/trustworthiness_rounds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
