/root/repo/target/debug/deps/rand-64b891b7528acc84.d: shims/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-64b891b7528acc84.rmeta: shims/rand/src/lib.rs Cargo.toml

shims/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
