/root/repo/target/debug/deps/collection_stage-44dd3ae299037e6c.d: tests/collection_stage.rs Cargo.toml

/root/repo/target/debug/deps/libcollection_stage-44dd3ae299037e6c.rmeta: tests/collection_stage.rs Cargo.toml

tests/collection_stage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
