/root/repo/target/debug/deps/collection_stage-328d0863c46d5270.d: tests/collection_stage.rs

/root/repo/target/debug/deps/collection_stage-328d0863c46d5270: tests/collection_stage.rs

tests/collection_stage.rs:
