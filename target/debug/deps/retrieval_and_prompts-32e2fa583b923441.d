/root/repo/target/debug/deps/retrieval_and_prompts-32e2fa583b923441.d: tests/retrieval_and_prompts.rs

/root/repo/target/debug/deps/retrieval_and_prompts-32e2fa583b923441: tests/retrieval_and_prompts.rs

tests/retrieval_and_prompts.rs:
