/root/repo/target/debug/deps/rcacopilot_core-ff9dbb2887e17060.d: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/baselines.rs crates/core/src/collection.rs crates/core/src/context.rs crates/core/src/eval.rs crates/core/src/feedback.rs crates/core/src/metrics.rs crates/core/src/pipeline.rs crates/core/src/report.rs crates/core/src/retrieval.rs

/root/repo/target/debug/deps/rcacopilot_core-ff9dbb2887e17060: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/baselines.rs crates/core/src/collection.rs crates/core/src/context.rs crates/core/src/eval.rs crates/core/src/feedback.rs crates/core/src/metrics.rs crates/core/src/pipeline.rs crates/core/src/report.rs crates/core/src/retrieval.rs

crates/core/src/lib.rs:
crates/core/src/ablation.rs:
crates/core/src/baselines.rs:
crates/core/src/collection.rs:
crates/core/src/context.rs:
crates/core/src/eval.rs:
crates/core/src/feedback.rs:
crates/core/src/metrics.rs:
crates/core/src/pipeline.rs:
crates/core/src/report.rs:
crates/core/src/retrieval.rs:
