/root/repo/target/debug/deps/table3_context_ablation-2d34706bf1cf2586.d: crates/bench/benches/table3_context_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_context_ablation-2d34706bf1cf2586.rmeta: crates/bench/benches/table3_context_ablation.rs Cargo.toml

crates/bench/benches/table3_context_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
