/root/repo/target/debug/deps/rcacopilot_gbdt-f917c65d65265ad7.d: crates/gbdt/src/lib.rs crates/gbdt/src/booster.rs crates/gbdt/src/tree.rs Cargo.toml

/root/repo/target/debug/deps/librcacopilot_gbdt-f917c65d65265ad7.rmeta: crates/gbdt/src/lib.rs crates/gbdt/src/booster.rs crates/gbdt/src/tree.rs Cargo.toml

crates/gbdt/src/lib.rs:
crates/gbdt/src/booster.rs:
crates/gbdt/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
