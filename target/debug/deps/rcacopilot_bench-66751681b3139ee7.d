/root/repo/target/debug/deps/rcacopilot_bench-66751681b3139ee7.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/librcacopilot_bench-66751681b3139ee7.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/librcacopilot_bench-66751681b3139ee7.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
