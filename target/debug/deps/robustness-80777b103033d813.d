/root/repo/target/debug/deps/robustness-80777b103033d813.d: tests/robustness.rs Cargo.toml

/root/repo/target/debug/deps/librobustness-80777b103033d813.rmeta: tests/robustness.rs Cargo.toml

tests/robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
