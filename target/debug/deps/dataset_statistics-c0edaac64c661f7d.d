/root/repo/target/debug/deps/dataset_statistics-c0edaac64c661f7d.d: tests/dataset_statistics.rs

/root/repo/target/debug/deps/dataset_statistics-c0edaac64c661f7d: tests/dataset_statistics.rs

tests/dataset_statistics.rs:
