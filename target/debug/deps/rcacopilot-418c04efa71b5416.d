/root/repo/target/debug/deps/rcacopilot-418c04efa71b5416.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librcacopilot-418c04efa71b5416.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
