/root/repo/target/debug/deps/microbench-b779299f1f46a10f.d: crates/bench/benches/microbench.rs Cargo.toml

/root/repo/target/debug/deps/libmicrobench-b779299f1f46a10f.rmeta: crates/bench/benches/microbench.rs Cargo.toml

crates/bench/benches/microbench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
