/root/repo/target/debug/deps/rcacopilot-5b08c511f6bf2d42.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librcacopilot-5b08c511f6bf2d42.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
