/root/repo/target/debug/deps/rcacopilot_llm-46f3f695d22b4ab4.d: crates/llm/src/lib.rs crates/llm/src/cot.rs crates/llm/src/finetune.rs crates/llm/src/labelgen.rs crates/llm/src/profile.rs crates/llm/src/prompt.rs crates/llm/src/summarize.rs

/root/repo/target/debug/deps/librcacopilot_llm-46f3f695d22b4ab4.rlib: crates/llm/src/lib.rs crates/llm/src/cot.rs crates/llm/src/finetune.rs crates/llm/src/labelgen.rs crates/llm/src/profile.rs crates/llm/src/prompt.rs crates/llm/src/summarize.rs

/root/repo/target/debug/deps/librcacopilot_llm-46f3f695d22b4ab4.rmeta: crates/llm/src/lib.rs crates/llm/src/cot.rs crates/llm/src/finetune.rs crates/llm/src/labelgen.rs crates/llm/src/profile.rs crates/llm/src/prompt.rs crates/llm/src/summarize.rs

crates/llm/src/lib.rs:
crates/llm/src/cot.rs:
crates/llm/src/finetune.rs:
crates/llm/src/labelgen.rs:
crates/llm/src/profile.rs:
crates/llm/src/prompt.rs:
crates/llm/src/summarize.rs:
