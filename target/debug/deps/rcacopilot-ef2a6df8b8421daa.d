/root/repo/target/debug/deps/rcacopilot-ef2a6df8b8421daa.d: src/lib.rs

/root/repo/target/debug/deps/rcacopilot-ef2a6df8b8421daa: src/lib.rs

src/lib.rs:
