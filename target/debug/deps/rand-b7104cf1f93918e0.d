/root/repo/target/debug/deps/rand-b7104cf1f93918e0.d: shims/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-b7104cf1f93918e0.rmeta: shims/rand/src/lib.rs Cargo.toml

shims/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
