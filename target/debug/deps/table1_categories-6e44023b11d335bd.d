/root/repo/target/debug/deps/table1_categories-6e44023b11d335bd.d: crates/bench/benches/table1_categories.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_categories-6e44023b11d335bd.rmeta: crates/bench/benches/table1_categories.rs Cargo.toml

crates/bench/benches/table1_categories.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
