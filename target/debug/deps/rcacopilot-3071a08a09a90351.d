/root/repo/target/debug/deps/rcacopilot-3071a08a09a90351.d: src/lib.rs

/root/repo/target/debug/deps/librcacopilot-3071a08a09a90351.rlib: src/lib.rs

/root/repo/target/debug/deps/librcacopilot-3071a08a09a90351.rmeta: src/lib.rs

src/lib.rs:
