/root/repo/target/debug/deps/rcacopilot_simcloud-4cbe2d0c66645de5.d: crates/simcloud/src/lib.rs crates/simcloud/src/catalog.rs crates/simcloud/src/dataset.rs crates/simcloud/src/faults.rs crates/simcloud/src/generator.rs crates/simcloud/src/incident.rs crates/simcloud/src/noise.rs crates/simcloud/src/signature.rs crates/simcloud/src/teams.rs crates/simcloud/src/topology.rs

/root/repo/target/debug/deps/librcacopilot_simcloud-4cbe2d0c66645de5.rlib: crates/simcloud/src/lib.rs crates/simcloud/src/catalog.rs crates/simcloud/src/dataset.rs crates/simcloud/src/faults.rs crates/simcloud/src/generator.rs crates/simcloud/src/incident.rs crates/simcloud/src/noise.rs crates/simcloud/src/signature.rs crates/simcloud/src/teams.rs crates/simcloud/src/topology.rs

/root/repo/target/debug/deps/librcacopilot_simcloud-4cbe2d0c66645de5.rmeta: crates/simcloud/src/lib.rs crates/simcloud/src/catalog.rs crates/simcloud/src/dataset.rs crates/simcloud/src/faults.rs crates/simcloud/src/generator.rs crates/simcloud/src/incident.rs crates/simcloud/src/noise.rs crates/simcloud/src/signature.rs crates/simcloud/src/teams.rs crates/simcloud/src/topology.rs

crates/simcloud/src/lib.rs:
crates/simcloud/src/catalog.rs:
crates/simcloud/src/dataset.rs:
crates/simcloud/src/faults.rs:
crates/simcloud/src/generator.rs:
crates/simcloud/src/incident.rs:
crates/simcloud/src/noise.rs:
crates/simcloud/src/signature.rs:
crates/simcloud/src/teams.rs:
crates/simcloud/src/topology.rs:
