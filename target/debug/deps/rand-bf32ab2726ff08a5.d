/root/repo/target/debug/deps/rand-bf32ab2726ff08a5.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/rand-bf32ab2726ff08a5: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
