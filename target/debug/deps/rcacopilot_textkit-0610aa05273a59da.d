/root/repo/target/debug/deps/rcacopilot_textkit-0610aa05273a59da.d: crates/textkit/src/lib.rs crates/textkit/src/bpe.rs crates/textkit/src/ngram.rs crates/textkit/src/normalize.rs crates/textkit/src/sparse.rs crates/textkit/src/tfidf.rs Cargo.toml

/root/repo/target/debug/deps/librcacopilot_textkit-0610aa05273a59da.rmeta: crates/textkit/src/lib.rs crates/textkit/src/bpe.rs crates/textkit/src/ngram.rs crates/textkit/src/normalize.rs crates/textkit/src/sparse.rs crates/textkit/src/tfidf.rs Cargo.toml

crates/textkit/src/lib.rs:
crates/textkit/src/bpe.rs:
crates/textkit/src/ngram.rs:
crates/textkit/src/normalize.rs:
crates/textkit/src/sparse.rs:
crates/textkit/src/tfidf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
