/root/repo/target/debug/deps/rcacopilot_handlers-3d86ec6311fa75cc.d: crates/handlers/src/lib.rs crates/handlers/src/action.rs crates/handlers/src/executor.rs crates/handlers/src/handler.rs crates/handlers/src/library.rs crates/handlers/src/registry.rs

/root/repo/target/debug/deps/librcacopilot_handlers-3d86ec6311fa75cc.rlib: crates/handlers/src/lib.rs crates/handlers/src/action.rs crates/handlers/src/executor.rs crates/handlers/src/handler.rs crates/handlers/src/library.rs crates/handlers/src/registry.rs

/root/repo/target/debug/deps/librcacopilot_handlers-3d86ec6311fa75cc.rmeta: crates/handlers/src/lib.rs crates/handlers/src/action.rs crates/handlers/src/executor.rs crates/handlers/src/handler.rs crates/handlers/src/library.rs crates/handlers/src/registry.rs

crates/handlers/src/lib.rs:
crates/handlers/src/action.rs:
crates/handlers/src/executor.rs:
crates/handlers/src/handler.rs:
crates/handlers/src/library.rs:
crates/handlers/src/registry.rs:
