/root/repo/target/debug/deps/rcacopilot_embed-61bd7a395ab3c1a7.d: crates/embed/src/lib.rs crates/embed/src/features.rs crates/embed/src/index.rs crates/embed/src/model.rs Cargo.toml

/root/repo/target/debug/deps/librcacopilot_embed-61bd7a395ab3c1a7.rmeta: crates/embed/src/lib.rs crates/embed/src/features.rs crates/embed/src/index.rs crates/embed/src/model.rs Cargo.toml

crates/embed/src/lib.rs:
crates/embed/src/features.rs:
crates/embed/src/index.rs:
crates/embed/src/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
