/root/repo/target/debug/deps/fig3_longtail-df145484a19f6913.d: crates/bench/benches/fig3_longtail.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_longtail-df145484a19f6913.rmeta: crates/bench/benches/fig3_longtail.rs Cargo.toml

crates/bench/benches/fig3_longtail.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
