/root/repo/target/debug/deps/rcacopilot_telemetry-fb72a8ef93ddc31b.d: crates/telemetry/src/lib.rs crates/telemetry/src/alert.rs crates/telemetry/src/artifacts.rs crates/telemetry/src/fault.rs crates/telemetry/src/ids.rs crates/telemetry/src/log.rs crates/telemetry/src/metrics.rs crates/telemetry/src/query.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/time.rs crates/telemetry/src/trace.rs

/root/repo/target/debug/deps/librcacopilot_telemetry-fb72a8ef93ddc31b.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/alert.rs crates/telemetry/src/artifacts.rs crates/telemetry/src/fault.rs crates/telemetry/src/ids.rs crates/telemetry/src/log.rs crates/telemetry/src/metrics.rs crates/telemetry/src/query.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/time.rs crates/telemetry/src/trace.rs

/root/repo/target/debug/deps/librcacopilot_telemetry-fb72a8ef93ddc31b.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/alert.rs crates/telemetry/src/artifacts.rs crates/telemetry/src/fault.rs crates/telemetry/src/ids.rs crates/telemetry/src/log.rs crates/telemetry/src/metrics.rs crates/telemetry/src/query.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/time.rs crates/telemetry/src/trace.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/alert.rs:
crates/telemetry/src/artifacts.rs:
crates/telemetry/src/fault.rs:
crates/telemetry/src/ids.rs:
crates/telemetry/src/log.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/query.rs:
crates/telemetry/src/snapshot.rs:
crates/telemetry/src/time.rs:
crates/telemetry/src/trace.rs:
