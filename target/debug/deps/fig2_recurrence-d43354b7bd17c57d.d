/root/repo/target/debug/deps/fig2_recurrence-d43354b7bd17c57d.d: crates/bench/benches/fig2_recurrence.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_recurrence-d43354b7bd17c57d.rmeta: crates/bench/benches/fig2_recurrence.rs Cargo.toml

crates/bench/benches/fig2_recurrence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
