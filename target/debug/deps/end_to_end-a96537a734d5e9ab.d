/root/repo/target/debug/deps/end_to_end-a96537a734d5e9ab.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-a96537a734d5e9ab: tests/end_to_end.rs

tests/end_to_end.rs:
