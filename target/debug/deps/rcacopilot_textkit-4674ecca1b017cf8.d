/root/repo/target/debug/deps/rcacopilot_textkit-4674ecca1b017cf8.d: crates/textkit/src/lib.rs crates/textkit/src/bpe.rs crates/textkit/src/ngram.rs crates/textkit/src/normalize.rs crates/textkit/src/sparse.rs crates/textkit/src/tfidf.rs

/root/repo/target/debug/deps/rcacopilot_textkit-4674ecca1b017cf8: crates/textkit/src/lib.rs crates/textkit/src/bpe.rs crates/textkit/src/ngram.rs crates/textkit/src/normalize.rs crates/textkit/src/sparse.rs crates/textkit/src/tfidf.rs

crates/textkit/src/lib.rs:
crates/textkit/src/bpe.rs:
crates/textkit/src/ngram.rs:
crates/textkit/src/normalize.rs:
crates/textkit/src/sparse.rs:
crates/textkit/src/tfidf.rs:
