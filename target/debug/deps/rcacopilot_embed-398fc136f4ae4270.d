/root/repo/target/debug/deps/rcacopilot_embed-398fc136f4ae4270.d: crates/embed/src/lib.rs crates/embed/src/features.rs crates/embed/src/index.rs crates/embed/src/model.rs

/root/repo/target/debug/deps/rcacopilot_embed-398fc136f4ae4270: crates/embed/src/lib.rs crates/embed/src/features.rs crates/embed/src/index.rs crates/embed/src/model.rs

crates/embed/src/lib.rs:
crates/embed/src/features.rs:
crates/embed/src/index.rs:
crates/embed/src/model.rs:
