/root/repo/target/debug/deps/table4_deployment-043fca0719865aee.d: crates/bench/benches/table4_deployment.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_deployment-043fca0719865aee.rmeta: crates/bench/benches/table4_deployment.rs Cargo.toml

crates/bench/benches/table4_deployment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
