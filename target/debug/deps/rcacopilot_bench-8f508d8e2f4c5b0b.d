/root/repo/target/debug/deps/rcacopilot_bench-8f508d8e2f4c5b0b.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librcacopilot_bench-8f508d8e2f4c5b0b.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
