/root/repo/target/debug/deps/rcacopilot_core-84cbdc113c4eedc8.d: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/baselines.rs crates/core/src/collection.rs crates/core/src/context.rs crates/core/src/eval.rs crates/core/src/feedback.rs crates/core/src/metrics.rs crates/core/src/pipeline.rs crates/core/src/report.rs crates/core/src/retrieval.rs Cargo.toml

/root/repo/target/debug/deps/librcacopilot_core-84cbdc113c4eedc8.rmeta: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/baselines.rs crates/core/src/collection.rs crates/core/src/context.rs crates/core/src/eval.rs crates/core/src/feedback.rs crates/core/src/metrics.rs crates/core/src/pipeline.rs crates/core/src/report.rs crates/core/src/retrieval.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/ablation.rs:
crates/core/src/baselines.rs:
crates/core/src/collection.rs:
crates/core/src/context.rs:
crates/core/src/eval.rs:
crates/core/src/feedback.rs:
crates/core/src/metrics.rs:
crates/core/src/pipeline.rs:
crates/core/src/report.rs:
crates/core/src/retrieval.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
