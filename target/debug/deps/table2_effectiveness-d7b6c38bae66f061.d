/root/repo/target/debug/deps/table2_effectiveness-d7b6c38bae66f061.d: crates/bench/benches/table2_effectiveness.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_effectiveness-d7b6c38bae66f061.rmeta: crates/bench/benches/table2_effectiveness.rs Cargo.toml

crates/bench/benches/table2_effectiveness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
