/root/repo/target/debug/deps/fig12_k_alpha_sweep-b2d9c1866cabe405.d: crates/bench/benches/fig12_k_alpha_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_k_alpha_sweep-b2d9c1866cabe405.rmeta: crates/bench/benches/fig12_k_alpha_sweep.rs Cargo.toml

crates/bench/benches/fig12_k_alpha_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
