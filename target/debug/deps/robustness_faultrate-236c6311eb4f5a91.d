/root/repo/target/debug/deps/robustness_faultrate-236c6311eb4f5a91.d: crates/bench/benches/robustness_faultrate.rs Cargo.toml

/root/repo/target/debug/deps/librobustness_faultrate-236c6311eb4f5a91.rmeta: crates/bench/benches/robustness_faultrate.rs Cargo.toml

crates/bench/benches/robustness_faultrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
