/root/repo/target/debug/deps/rcacopilot_handlers-3a98575abaee06e8.d: crates/handlers/src/lib.rs crates/handlers/src/action.rs crates/handlers/src/executor.rs crates/handlers/src/handler.rs crates/handlers/src/library.rs crates/handlers/src/registry.rs

/root/repo/target/debug/deps/rcacopilot_handlers-3a98575abaee06e8: crates/handlers/src/lib.rs crates/handlers/src/action.rs crates/handlers/src/executor.rs crates/handlers/src/handler.rs crates/handlers/src/library.rs crates/handlers/src/registry.rs

crates/handlers/src/lib.rs:
crates/handlers/src/action.rs:
crates/handlers/src/executor.rs:
crates/handlers/src/handler.rs:
crates/handlers/src/library.rs:
crates/handlers/src/registry.rs:
