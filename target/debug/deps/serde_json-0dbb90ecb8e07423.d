/root/repo/target/debug/deps/serde_json-0dbb90ecb8e07423.d: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-0dbb90ecb8e07423: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:
