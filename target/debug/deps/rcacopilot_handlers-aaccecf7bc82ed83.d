/root/repo/target/debug/deps/rcacopilot_handlers-aaccecf7bc82ed83.d: crates/handlers/src/lib.rs crates/handlers/src/action.rs crates/handlers/src/executor.rs crates/handlers/src/handler.rs crates/handlers/src/library.rs crates/handlers/src/registry.rs Cargo.toml

/root/repo/target/debug/deps/librcacopilot_handlers-aaccecf7bc82ed83.rmeta: crates/handlers/src/lib.rs crates/handlers/src/action.rs crates/handlers/src/executor.rs crates/handlers/src/handler.rs crates/handlers/src/library.rs crates/handlers/src/registry.rs Cargo.toml

crates/handlers/src/lib.rs:
crates/handlers/src/action.rs:
crates/handlers/src/executor.rs:
crates/handlers/src/handler.rs:
crates/handlers/src/library.rs:
crates/handlers/src/registry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
