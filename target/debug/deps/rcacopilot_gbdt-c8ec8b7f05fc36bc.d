/root/repo/target/debug/deps/rcacopilot_gbdt-c8ec8b7f05fc36bc.d: crates/gbdt/src/lib.rs crates/gbdt/src/booster.rs crates/gbdt/src/tree.rs

/root/repo/target/debug/deps/rcacopilot_gbdt-c8ec8b7f05fc36bc: crates/gbdt/src/lib.rs crates/gbdt/src/booster.rs crates/gbdt/src/tree.rs

crates/gbdt/src/lib.rs:
crates/gbdt/src/booster.rs:
crates/gbdt/src/tree.rs:
