/root/repo/target/debug/deps/rcacopilot_embed-e2c0878b1f307a51.d: crates/embed/src/lib.rs crates/embed/src/features.rs crates/embed/src/index.rs crates/embed/src/model.rs

/root/repo/target/debug/deps/librcacopilot_embed-e2c0878b1f307a51.rlib: crates/embed/src/lib.rs crates/embed/src/features.rs crates/embed/src/index.rs crates/embed/src/model.rs

/root/repo/target/debug/deps/librcacopilot_embed-e2c0878b1f307a51.rmeta: crates/embed/src/lib.rs crates/embed/src/features.rs crates/embed/src/index.rs crates/embed/src/model.rs

crates/embed/src/lib.rs:
crates/embed/src/features.rs:
crates/embed/src/index.rs:
crates/embed/src/model.rs:
