/root/repo/target/debug/deps/rcacopilot_gbdt-706475825f234ddd.d: crates/gbdt/src/lib.rs crates/gbdt/src/booster.rs crates/gbdt/src/tree.rs

/root/repo/target/debug/deps/librcacopilot_gbdt-706475825f234ddd.rlib: crates/gbdt/src/lib.rs crates/gbdt/src/booster.rs crates/gbdt/src/tree.rs

/root/repo/target/debug/deps/librcacopilot_gbdt-706475825f234ddd.rmeta: crates/gbdt/src/lib.rs crates/gbdt/src/booster.rs crates/gbdt/src/tree.rs

crates/gbdt/src/lib.rs:
crates/gbdt/src/booster.rs:
crates/gbdt/src/tree.rs:
