/root/repo/target/debug/deps/retrieval_and_prompts-5d6d66eae108261f.d: tests/retrieval_and_prompts.rs Cargo.toml

/root/repo/target/debug/deps/libretrieval_and_prompts-5d6d66eae108261f.rmeta: tests/retrieval_and_prompts.rs Cargo.toml

tests/retrieval_and_prompts.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
