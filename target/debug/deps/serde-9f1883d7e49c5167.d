/root/repo/target/debug/deps/serde-9f1883d7e49c5167.d: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-9f1883d7e49c5167.rlib: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-9f1883d7e49c5167.rmeta: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
