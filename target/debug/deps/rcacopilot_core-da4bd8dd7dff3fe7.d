/root/repo/target/debug/deps/rcacopilot_core-da4bd8dd7dff3fe7.d: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/baselines.rs crates/core/src/collection.rs crates/core/src/context.rs crates/core/src/eval.rs crates/core/src/feedback.rs crates/core/src/metrics.rs crates/core/src/pipeline.rs crates/core/src/report.rs crates/core/src/retrieval.rs

/root/repo/target/debug/deps/librcacopilot_core-da4bd8dd7dff3fe7.rlib: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/baselines.rs crates/core/src/collection.rs crates/core/src/context.rs crates/core/src/eval.rs crates/core/src/feedback.rs crates/core/src/metrics.rs crates/core/src/pipeline.rs crates/core/src/report.rs crates/core/src/retrieval.rs

/root/repo/target/debug/deps/librcacopilot_core-da4bd8dd7dff3fe7.rmeta: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/baselines.rs crates/core/src/collection.rs crates/core/src/context.rs crates/core/src/eval.rs crates/core/src/feedback.rs crates/core/src/metrics.rs crates/core/src/pipeline.rs crates/core/src/report.rs crates/core/src/retrieval.rs

crates/core/src/lib.rs:
crates/core/src/ablation.rs:
crates/core/src/baselines.rs:
crates/core/src/collection.rs:
crates/core/src/context.rs:
crates/core/src/eval.rs:
crates/core/src/feedback.rs:
crates/core/src/metrics.rs:
crates/core/src/pipeline.rs:
crates/core/src/report.rs:
crates/core/src/retrieval.rs:
