/root/repo/target/debug/deps/dataset_statistics-3011fc835037eb44.d: tests/dataset_statistics.rs Cargo.toml

/root/repo/target/debug/deps/libdataset_statistics-3011fc835037eb44.rmeta: tests/dataset_statistics.rs Cargo.toml

tests/dataset_statistics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
