/root/repo/target/debug/deps/rcacopilot_llm-dc10f476c54f65ac.d: crates/llm/src/lib.rs crates/llm/src/cot.rs crates/llm/src/finetune.rs crates/llm/src/labelgen.rs crates/llm/src/profile.rs crates/llm/src/prompt.rs crates/llm/src/summarize.rs Cargo.toml

/root/repo/target/debug/deps/librcacopilot_llm-dc10f476c54f65ac.rmeta: crates/llm/src/lib.rs crates/llm/src/cot.rs crates/llm/src/finetune.rs crates/llm/src/labelgen.rs crates/llm/src/profile.rs crates/llm/src/prompt.rs crates/llm/src/summarize.rs Cargo.toml

crates/llm/src/lib.rs:
crates/llm/src/cot.rs:
crates/llm/src/finetune.rs:
crates/llm/src/labelgen.rs:
crates/llm/src/profile.rs:
crates/llm/src/prompt.rs:
crates/llm/src/summarize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
