/root/repo/target/debug/deps/robustness-48cbd17317726886.d: tests/robustness.rs

/root/repo/target/debug/deps/robustness-48cbd17317726886: tests/robustness.rs

tests/robustness.rs:
