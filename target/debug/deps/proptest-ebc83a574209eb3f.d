/root/repo/target/debug/deps/proptest-ebc83a574209eb3f.d: shims/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-ebc83a574209eb3f.rmeta: shims/proptest/src/lib.rs Cargo.toml

shims/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
