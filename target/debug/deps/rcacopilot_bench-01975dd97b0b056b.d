/root/repo/target/debug/deps/rcacopilot_bench-01975dd97b0b056b.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librcacopilot_bench-01975dd97b0b056b.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
