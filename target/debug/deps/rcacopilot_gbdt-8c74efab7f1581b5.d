/root/repo/target/debug/deps/rcacopilot_gbdt-8c74efab7f1581b5.d: crates/gbdt/src/lib.rs crates/gbdt/src/booster.rs crates/gbdt/src/tree.rs Cargo.toml

/root/repo/target/debug/deps/librcacopilot_gbdt-8c74efab7f1581b5.rmeta: crates/gbdt/src/lib.rs crates/gbdt/src/booster.rs crates/gbdt/src/tree.rs Cargo.toml

crates/gbdt/src/lib.rs:
crates/gbdt/src/booster.rs:
crates/gbdt/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
