/root/repo/target/debug/deps/rcacopilot_bench-3c2435d76e866f05.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/rcacopilot_bench-3c2435d76e866f05: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
