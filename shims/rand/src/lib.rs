//! Vendored offline stand-in for `rand` 0.8.5.
//!
//! Reimplements exactly the slice of rand this workspace uses — `SmallRng`
//! (the vendored xoshiro256++ generator), `SeedableRng::seed_from_u64`
//! (SplitMix64 seeding), `Rng::gen_range` (Lemire-style widening-multiply
//! rejection sampling) and `Rng::gen_bool` (Bernoulli via a 2^64 fixed-point
//! threshold) — with bit-exact output, so every seeded dataset, topology,
//! and signature in `simcloud` reproduces the same streams the real crate
//! produced.

use std::ops::{Range, RangeInclusive};

/// Core generator interface: raw integer output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling interface, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Sample from the full value distribution (rand's `Standard`).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`;
    /// exactly rand 0.8.5's fixed-point comparison).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        if p == 1.0 {
            return true;
        }
        // rand's Bernoulli: p_int = p * 2^64, sample = next_u64() < p_int.
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        self.next_u64() < (p * SCALE) as u64
    }
}

impl<R: RngCore> Rng for R {}

/// Seeding interface; only the parts this workspace calls.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;
    /// Builds a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;
    /// Builds a generator from a `u64` convenience seed.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::SeedableRng;

    /// A small-state, fast, non-crypto generator: xoshiro256++, matching
    /// `rand` 0.8.5's 64-bit `SmallRng` bit for bit.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl super::RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            // The low bits of xoshiro have weak linear structure; rand
            // takes the high half.
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);

            let t = self.s[1] << 17;

            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];

            self.s[2] ^= t;

            self.s[3] = self.s[3].rotate_left(45);

            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            if seed.iter().all(|&b| b == 0) {
                return Self::seed_from_u64(0);
            }
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            SmallRng { s }
        }

        fn seed_from_u64(mut state: u64) -> Self {
            // SplitMix64 expansion, as in rand 0.8.5's xoshiro seeding.
            const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
            let mut seed = [0u8; 32];
            for chunk in seed.chunks_mut(8) {
                state = state.wrapping_add(PHI);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^= z >> 31;
                chunk.copy_from_slice(&z.to_le_bytes());
            }
            Self::from_seed(seed)
        }
    }
}

/// Types samplable by `Rng::gen` (rand's `Standard` distribution).
pub trait StandardSample {
    /// Draws one value covering the type's full range (floats: `[0, 1)`).
    fn standard_sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_small {
    ($($ty:ty),*) => {$(
        impl StandardSample for $ty {
            fn standard_sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u32() as $ty
            }
        }
    )*};
}

macro_rules! impl_standard_large {
    ($($ty:ty),*) => {$(
        impl StandardSample for $ty {
            fn standard_sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_standard_small!(u8, u16, u32, i8, i16, i32);
impl_standard_large!(u64, usize, i64, isize);

impl StandardSample for bool {
    fn standard_sample<R: RngCore>(rng: &mut R) -> Self {
        // rand's Standard bool: the top bit of a u32 draw.
        (rng.next_u32() >> 31) == 1
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore>(rng: &mut R) -> Self {
        // rand's Standard floats: uniform [0, 1) from the top mantissa bits.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Types with a uniform sampler; the blanket `SampleRange` impls below
/// mirror rand's, which keeps integer-literal type inference working at
/// `gen_range(1..400)`-style call sites.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform sample from `[low, high)`.
    fn sample_exclusive<R: RngCore>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[low, high]`.
    fn sample_inclusive<R: RngCore>(low: Self, high: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_exclusive(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_inclusive(low, high, rng)
    }
}

// Integer uniform sampling, following rand 0.8.5's `uniform_int_impl!`:
// widen-multiply rejection with zone `(range << range.leading_zeros()) - 1`.
// Types up to 32 bits draw from `next_u32`; 64-bit types from `next_u64`.
macro_rules! impl_int_uniform {
    ($($ty:ty, $unsigned:ty, $large:ty, $next:ident;)*) => {$(
        impl SampleUniform for $ty {
            fn sample_exclusive<R: RngCore>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                assert!(low < high, "gen_range: low >= high");
                Self::sample_inclusive(low, high - 1, rng)
            }

            #[allow(clippy::cast_lossless)]
            fn sample_inclusive<R: RngCore>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                assert!(low <= high, "gen_range: low > high");
                let range = high.wrapping_sub(low).wrapping_add(1) as $unsigned as $large;
                if range == 0 {
                    // Full type range requested.
                    return rng.$next() as $ty;
                }
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = rng.$next() as $large;
                    let m = (v as u128) * (range as u128);
                    let hi = (m >> (<$large>::BITS)) as $large;
                    let lo = m as $large;
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    )*};
}

impl_int_uniform! {
    u8, u8, u32, next_u32;
    u16, u16, u32, next_u32;
    u32, u32, u32, next_u32;
    u64, u64, u64, next_u64;
    usize, usize, u64, next_u64;
    i8, u8, u32, next_u32;
    i16, u16, u32, next_u32;
    i32, u32, u32, next_u32;
    i64, u64, u64, next_u64;
    isize, usize, u64, next_u64;
}

// Float uniform sampling, following rand 0.8.5's `uniform_float_impl!`
// `sample_single`: a mantissa-filled value in [1, 2), shifted to [0, 1),
// then scaled -- retrying in the rare rounding case where `res == high`.
macro_rules! impl_float_uniform {
    ($($ty:ty, $uty:ty, $bits_to_discard:expr, $exp_bias:expr, $mant_bits:expr, $next:ident;)*) => {$(
        impl SampleUniform for $ty {
            fn sample_exclusive<R: RngCore>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                assert!(low < high, "gen_range: low >= high");
                let scale = high - low;
                loop {
                    let bits = rng.$next() >> $bits_to_discard;
                    let value1_2 =
                        <$ty>::from_bits((($exp_bias as $uty) << $mant_bits) | bits);
                    let value0_1 = value1_2 - 1.0;
                    let res = value0_1 * scale + low;
                    if res < high {
                        return res;
                    }
                }
            }

            fn sample_inclusive<R: RngCore>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                assert!(low <= high, "gen_range: low > high");
                // rand's inclusive float path: scale by (high - low) divided
                // by the largest representable [0, 1) sample, so `high` is
                // reachable.
                let max_rand = <$ty>::from_bits(
                    (($exp_bias as $uty) << $mant_bits) | (<$uty>::MAX >> $bits_to_discard),
                ) - 1.0;
                let scale = (high - low) / max_rand;
                let bits = rng.$next() >> $bits_to_discard;
                let value1_2 = <$ty>::from_bits((($exp_bias as $uty) << $mant_bits) | bits);
                let value0_1 = value1_2 - 1.0;
                let res = value0_1 * scale + low;
                if res > high {
                    high
                } else {
                    res
                }
            }
        }
    )*};
}

impl_float_uniform! {
    f32, u32, 9u32, 127u32, 23u32, next_u32;
    f64, u64, 12u64, 1023u64, 52u64, next_u64;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    // Reference stream from rand 0.8.5 `SmallRng::seed_from_u64(42)`:
    // SplitMix64(42) expands to state
    //   [0xbdd732262feb6e95, 0x28efe333b266f103,
    //    0x47526757130f9f52, 0x581ce1ff0e4ae394],
    // whose first xoshiro256++ output is 0xd0764d4f4476689f.
    #[test]
    fn seeding_matches_rand_085() {
        let mut rng = SmallRng::seed_from_u64(42);
        let first = rng.next_u64();
        let second = rng.next_u64();
        assert_eq!(first, 0xd076_4d4f_4476_689f);
        assert_ne!(first, second);
    }

    #[test]
    fn gen_range_is_in_bounds_and_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = a.gen_range(0usize..17);
            assert!(x < 17);
            assert_eq!(x, b.gen_range(0usize..17));
        }
        let mut c = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f = c.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = c.gen_range(0u64..=4);
            assert!(i <= 4);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }
}
