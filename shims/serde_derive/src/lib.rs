//! Vendored offline stand-in for `serde_derive`.
//!
//! Generates `Serialize`/`Deserialize` impls targeting the shim `serde`
//! crate's `Content` data model, using serde's default externally-tagged
//! representation. The parser works directly on `proc_macro::TokenStream`
//! (no `syn`/`quote` available offline), which is sufficient because this
//! workspace derives only on non-generic, attribute-free types.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive shim generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive shim generated invalid Deserialize impl")
}

struct Item {
    name: String,
    body: Body,
}

enum Body {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (doc comments arrive as `#[doc = ...]`) and
    // visibility / auxiliary keywords until the `struct` / `enum` keyword.
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) => {
                let word = id.to_string();
                if word == "struct" || word == "enum" {
                    i += 1;
                    break word;
                }
                i += 1;
                if word == "pub" {
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                }
            }
            Some(_) => i += 1,
            None => panic!("serde_derive shim: no struct/enum keyword found"),
        }
    };

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, found {other:?}"),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic type `{name}` is not supported");
        }
    }

    let body = match (kind.as_str(), tokens.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Body::NamedStruct(parse_named_fields(&g.stream()))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Body::TupleStruct(count_tuple_fields(&g.stream()))
        }
        ("struct", _) => Body::UnitStruct,
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Body::Enum(parse_variants(&g.stream()))
        }
        _ => panic!("serde_derive shim: malformed {kind} `{name}`"),
    };

    Item { name, body }
}

/// Parses `name: Type, ...` field lists, returning field names in order.
/// Commas inside generic arguments are skipped by tracking `<`/`>` depth
/// (commas inside parens/brackets are invisible: those are token groups).
fn parse_named_fields(stream: &TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        if let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1; // field name
        i += 1; // ':'
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Counts the fields of a tuple struct / tuple variant by splitting on
/// top-level commas (angle-depth aware, same caveats as named fields).
fn count_tuple_fields(stream: &TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut saw_token_since_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                saw_token_since_comma = false;
                continue;
            }
            _ => {}
        }
        if !saw_token_since_comma {
            saw_token_since_comma = true;
            count += 1;
        }
    }
    // The first field was double-counted by the bootstrap `count = 1`.
    count - 1
}

fn parse_variants(stream: &TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(&g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(&g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip a discriminant (`= expr`) if present, then the trailing comma.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) => {
            let mut entries = String::new();
            for f in fields {
                let _ = write!(
                    entries,
                    "(\"{f}\".to_string(), ::serde::Serialize::to_content(&self.{f})),"
                );
            }
            format!("::serde::Content::Map(vec![{entries}])")
        }
        Body::TupleStruct(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Body::TupleStruct(n) => {
            let mut elems = String::new();
            for idx in 0..*n {
                let _ = write!(elems, "::serde::Serialize::to_content(&self.{idx}),");
            }
            format!("::serde::Content::Seq(vec![{elems}])")
        }
        Body::UnitStruct => "::serde::Content::Null".to_string(),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = write!(
                            arms,
                            "{name}::{vname} => ::serde::Content::Str(\"{vname}\".to_string()),"
                        );
                    }
                    VariantKind::Tuple(1) => {
                        let _ = write!(
                            arms,
                            "{name}::{vname}(f0) => ::serde::Content::Map(vec![\
                             (\"{vname}\".to_string(), ::serde::Serialize::to_content(f0))]),"
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_content({b})"))
                            .collect();
                        let _ = write!(
                            arms,
                            "{name}::{vname}({}) => ::serde::Content::Map(vec![\
                             (\"{vname}\".to_string(), ::serde::Content::Seq(vec![{}]))]),",
                            binds.join(","),
                            elems.join(",")
                        );
                    }
                    VariantKind::Struct(fields) => {
                        let binds = fields.join(",");
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), ::serde::Serialize::to_content({f}))"
                                )
                            })
                            .collect();
                        let _ = write!(
                            arms,
                            "{name}::{vname}{{{binds}}} => ::serde::Content::Map(vec![\
                             (\"{vname}\".to_string(), ::serde::Content::Map(vec![{}]))]),",
                            entries.join(",")
                        );
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) => {
            let mut inits = String::new();
            for f in fields {
                let _ = write!(
                    inits,
                    "{f}: ::serde::Deserialize::from_content(\
                     ::serde::Content::field(__fields, \"{f}\"))?,"
                );
            }
            format!(
                "let __fields = c.as_map().ok_or_else(|| \
                 ::serde::ContentError::expected(\"object\", \"{name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        Body::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_content(c)?))")
        }
        Body::TupleStruct(n) => {
            let mut elems = String::new();
            for idx in 0..*n {
                let _ = write!(
                    elems,
                    "::serde::Deserialize::from_content(__seq.get({idx}).ok_or_else(|| \
                     ::serde::ContentError::expected(\"tuple element\", \"{name}\"))?)?,"
                );
            }
            format!(
                "let __seq = c.as_seq().ok_or_else(|| \
                 ::serde::ContentError::expected(\"array\", \"{name}\"))?;\n\
                 ::std::result::Result::Ok({name}({elems}))"
            )
        }
        Body::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = write!(
                            unit_arms,
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"
                        );
                    }
                    VariantKind::Tuple(1) => {
                        let _ = write!(
                            data_arms,
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_content(__inner)?)),"
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|idx| {
                                format!(
                                    "::serde::Deserialize::from_content(__seq.get({idx})\
                                     .ok_or_else(|| ::serde::ContentError::expected(\
                                     \"tuple element\", \"{name}::{vname}\"))?)?"
                                )
                            })
                            .collect();
                        let _ = write!(
                            data_arms,
                            "\"{vname}\" => {{\n\
                             let __seq = __inner.as_seq().ok_or_else(|| \
                             ::serde::ContentError::expected(\"array\", \"{name}::{vname}\"))?;\n\
                             ::std::result::Result::Ok({name}::{vname}({}))\n\
                             }},",
                            elems.join(",")
                        );
                    }
                    VariantKind::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_content(\
                                     ::serde::Content::field(__vf, \"{f}\"))?"
                                )
                            })
                            .collect();
                        let _ = write!(
                            data_arms,
                            "\"{vname}\" => {{\n\
                             let __vf = __inner.as_map().ok_or_else(|| \
                             ::serde::ContentError::expected(\"object\", \"{name}::{vname}\"))?;\n\
                             ::std::result::Result::Ok({name}::{vname} {{ {} }})\n\
                             }},",
                            inits.join(",")
                        );
                    }
                }
            }
            format!(
                "match c {{\n\
                 ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\n\
                 _ => ::std::result::Result::Err(::serde::ContentError::expected(\
                 \"known unit variant\", \"{name}\")),\n\
                 }},\n\
                 ::serde::Content::Map(__m) if __m.len() == 1 => {{\n\
                 let (__tag, __inner) = &__m[0];\n\
                 match __tag.as_str() {{\n\
                 {data_arms}\n\
                 _ => ::std::result::Result::Err(::serde::ContentError::expected(\
                 \"known data variant\", \"{name}\")),\n\
                 }}\n\
                 }},\n\
                 _ => ::std::result::Result::Err(::serde::ContentError::expected(\
                 \"externally tagged enum\", \"{name}\")),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_content(c: &::serde::Content) -> \
         ::std::result::Result<Self, ::serde::ContentError> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}
