//! Vendored offline stand-in for `proptest`.
//!
//! Keeps the workspace's property tests running without the real crate:
//! each `proptest!` test samples its strategies from a deterministic
//! per-(test, case) RNG and runs the body for `ProptestConfig::cases`
//! cases. No shrinking — a failing case panics with the case index and
//! message, which is enough signal for this repo's tests. The strategy
//! surface implemented is exactly what the workspace uses: integer/float
//! ranges, character-class string patterns, `collection::vec`,
//! `sample::select`, tuples, and `prop_map`.

pub mod test_runner {
    /// How many random cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real crate's default case count.
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed (or rejected) test case.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Deterministic per-case RNG handed to strategies.
    pub struct TestRng {
        pub(crate) rng: rand::rngs::SmallRng,
    }

    impl TestRng {
        /// RNG for case number `case` of the test named `name`; the seed
        /// is a hash of both, so runs are reproducible and cases are
        /// independent.
        pub fn for_case(name: &str, case: u32) -> Self {
            use rand::SeedableRng;
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
            }
            h = (h ^ u64::from(case)).wrapping_mul(0x0000_0100_0000_01b3);
            TestRng {
                rng: rand::rngs::SmallRng::seed_from_u64(h),
            }
        }
    }
}

/// Runs `case` for every case index the config asks for, panicking with
/// context on the first failure. Used by the `proptest!` macro expansion.
pub fn run_proptest<F>(config: &test_runner::ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut test_runner::TestRng) -> Result<(), test_runner::TestCaseError>,
{
    for i in 0..config.cases {
        let mut rng = test_runner::TestRng::for_case(name, i);
        match case(&mut rng) {
            Ok(()) => {}
            Err(test_runner::TestCaseError::Reject(_)) => {}
            Err(test_runner::TestCaseError::Fail(msg)) => {
                panic!("property `{name}` failed at case {i}: {msg}");
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A source of random values of one type.
    pub trait Strategy {
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Post-processes every sampled value with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    rng.rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    rng.rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// `&'static str` patterns of the form `[class]{m,n}` sample strings
    /// of `m..=n` characters drawn uniformly from the character class
    /// (ranges like `a-z`, escapes `\n` `\t` `\\`, literals). This covers
    /// every string strategy the workspace writes.
    impl Strategy for &'static str {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            let (chars, min, max) = parse_class_pattern(self)
                .unwrap_or_else(|| panic!("proptest shim: unsupported string pattern {self:?}"));
            let len = rng.rng.gen_range(min..=max);
            (0..len)
                .map(|_| chars[rng.rng.gen_range(0..chars.len())])
                .collect()
        }
    }

    fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let close = rest.find(']')?;
        let (class, tail) = (&rest[..close], &rest[close + 1..]);

        let mut chars = Vec::new();
        let mut iter = class.chars().peekable();
        while let Some(c) = iter.next() {
            let lo = if c == '\\' {
                match iter.next()? {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    '\\' => '\\',
                    other => other,
                }
            } else {
                c
            };
            if iter.peek() == Some(&'-') {
                let mut ahead = iter.clone();
                ahead.next(); // '-'
                if let Some(hi) = ahead.next() {
                    // A trailing '-' is a literal, not a range.
                    iter = ahead;
                    for code in (lo as u32)..=(hi as u32) {
                        chars.extend(char::from_u32(code));
                    }
                    continue;
                }
            }
            chars.push(lo);
        }
        if chars.is_empty() {
            return None;
        }

        let bounds = tail.strip_prefix('{')?.strip_suffix('}')?;
        let (min, max) = match bounds.split_once(',') {
            Some((m, n)) => (m.trim().parse().ok()?, n.trim().parse().ok()?),
            None => {
                let n = bounds.trim().parse().ok()?;
                (n, n)
            }
        };
        Some((chars, min, max))
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive element-count bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max: r.end.saturating_sub(1),
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector of `size.into()` elements sampled from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy choosing uniformly from a fixed list.
    pub struct Select<T> {
        items: Vec<T>,
    }

    /// Uniform choice from `items` (must be non-empty).
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "sample::select: empty choice list");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.items[rng.rng.gen_range(0..self.items.len())].clone()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Defines `#[test]` functions whose arguments are sampled from
/// strategies; supports an optional `#![proptest_config(..)]` header.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])+ fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {$(
        $(#[$meta])+
        fn $name() {
            let __config = $cfg;
            $crate::run_proptest(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), __rng);)*
                let mut __case = move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                };
                __case()
            });
        }
    )*};
}

/// Asserts inside a `proptest!` body, failing the case (not panicking
/// directly) so the runner can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        if !(__left == __right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __left,
                    __right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __left = $left;
        let __right = $right;
        if !(__left == __right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..9, f in -1.0f64..1.0, s in "[a-z]{1,8}") {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
            prop_assert!(!s.is_empty() && s.len() <= 8);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }

        #[test]
        fn vec_and_select_and_map(
            v in crate::collection::vec((0usize..4, 0.0f64..1.0), 2..=5),
            pick in crate::sample::select(vec!["a", "b"]).prop_map(str::to_string)
        ) {
            prop_assert!(v.len() >= 2 && v.len() <= 5);
            prop_assert!(pick == "a" || pick == "b");
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let strat = 0u64..1_000_000;
        let a: Vec<u64> = (0..10)
            .map(|i| strat.sample(&mut crate::test_runner::TestRng::for_case("t", i)))
            .collect();
        let b: Vec<u64> = (0..10)
            .map(|i| strat.sample(&mut crate::test_runner::TestRng::for_case("t", i)))
            .collect();
        assert_eq!(a, b);
    }
}
