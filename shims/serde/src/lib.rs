//! Vendored offline stand-in for the `serde` crate.
//!
//! The build environment has no network access and no vendored registry,
//! so the real `serde` cannot be fetched. This shim keeps the workspace's
//! `#[derive(Serialize, Deserialize)]` code compiling and its JSON
//! round-trips working by replacing serde's visitor architecture with a
//! concrete JSON-shaped [`Content`] tree: `Serialize` lowers a value into
//! `Content`, `Deserialize` lifts it back. The derive macros (from the
//! sibling `serde_derive` shim) generate those impls with serde's default
//! externally-tagged representation, so JSON produced by the `serde_json`
//! shim matches real-serde output for the shapes this workspace uses.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON-shaped value tree: the data model `Serialize`/`Deserialize`
/// convert through.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Content>),
    /// Object, insertion-ordered.
    Map(Vec<(String, Content)>),
}

/// A deserialization error: what was expected, what was found.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentError(pub String);

impl ContentError {
    /// Builds an error noting that `expected` was not found while reading
    /// a value of type `ty`.
    pub fn expected(expected: &str, ty: &str) -> Self {
        ContentError(format!("expected {expected} while deserializing {ty}"))
    }
}

impl fmt::Display for ContentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ContentError {}

static NULL_CONTENT: Content = Content::Null;

impl Content {
    /// The map entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up `key` in a field list; missing fields read as `Null`
    /// (which deserializes to `None` for `Option` fields, and errors for
    /// everything else — matching serde's missing-field behavior closely
    /// enough for round-trips of our own output).
    pub fn field<'a>(fields: &'a [(String, Content)], key: &str) -> &'a Content {
        fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or(&NULL_CONTENT)
    }
}

/// Serialization into the [`Content`] data model.
pub trait Serialize {
    /// Lowers `self` into a content tree.
    fn to_content(&self) -> Content;
}

/// Deserialization out of the [`Content`] data model.
pub trait Deserialize: Sized {
    /// Lifts a value of `Self` out of a content tree.
    fn from_content(c: &Content) -> Result<Self, ContentError>;
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(c: &Content) -> Result<Self, ContentError> {
        Ok(c.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, ContentError> {
        match c {
            Content::Bool(b) => Ok(*b),
            _ => Err(ContentError::expected("bool", "bool")),
        }
    }
}

macro_rules! impl_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $ty {
            fn from_content(c: &Content) -> Result<Self, ContentError> {
                let v = match c {
                    Content::U64(v) => *v,
                    Content::I64(v) if *v >= 0 => *v as u64,
                    Content::F64(v) if v.fract() == 0.0 && *v >= 0.0 => *v as u64,
                    _ => return Err(ContentError::expected("unsigned integer", stringify!($ty))),
                };
                <$ty>::try_from(v)
                    .map_err(|_| ContentError::expected("in-range integer", stringify!($ty)))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 {
                    Content::U64(v as u64)
                } else {
                    Content::I64(v)
                }
            }
        }
        impl Deserialize for $ty {
            fn from_content(c: &Content) -> Result<Self, ContentError> {
                let v = match c {
                    Content::I64(v) => *v,
                    Content::U64(v) => i64::try_from(*v)
                        .map_err(|_| ContentError::expected("in-range integer", stringify!($ty)))?,
                    Content::F64(v) if v.fract() == 0.0 => *v as i64,
                    _ => return Err(ContentError::expected("integer", stringify!($ty))),
                };
                <$ty>::try_from(v)
                    .map_err(|_| ContentError::expected("in-range integer", stringify!($ty)))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_content(&self) -> Content {
                Content::F64(*self as f64)
            }
        }
        impl Deserialize for $ty {
            fn from_content(c: &Content) -> Result<Self, ContentError> {
                match c {
                    Content::F64(v) => Ok(*v as $ty),
                    Content::U64(v) => Ok(*v as $ty),
                    Content::I64(v) => Ok(*v as $ty),
                    _ => Err(ContentError::expected("number", stringify!($ty))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, ContentError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            _ => Err(ContentError::expected("string", "String")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, ContentError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, ContentError> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, ContentError> {
        c.as_seq()
            .ok_or_else(|| ContentError::expected("array", "Vec"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($idx:tt $name:ident),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(c: &Content) -> Result<Self, ContentError> {
                let s = c.as_seq().ok_or_else(|| ContentError::expected("array", "tuple"))?;
                Ok(($($name::from_content(
                    s.get($idx).ok_or_else(|| ContentError::expected("tuple element", "tuple"))?
                )?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Encodes key/value pairs: all-string keys become an object (serde's
/// JSON shape); any other key type becomes a sequence of `[key, value]`
/// pairs, which round-trips through [`map_pairs_from_content`].
fn map_content_from_pairs(pairs: Vec<(Content, Content)>) -> Content {
    if pairs.iter().all(|(k, _)| matches!(k, Content::Str(_))) {
        Content::Map(
            pairs
                .into_iter()
                .map(|(k, v)| match k {
                    Content::Str(s) => (s, v),
                    _ => unreachable!("checked all keys are strings"),
                })
                .collect(),
        )
    } else {
        Content::Seq(
            pairs
                .into_iter()
                .map(|(k, v)| Content::Seq(vec![k, v]))
                .collect(),
        )
    }
}

/// Decodes either map encoding produced by [`map_content_from_pairs`].
fn map_pairs_from_content<K: Deserialize, V: Deserialize>(
    c: &Content,
    ty: &str,
) -> Result<Vec<(K, V)>, ContentError> {
    match c {
        Content::Map(entries) => entries
            .iter()
            .map(|(k, v)| {
                Ok((
                    K::from_content(&Content::Str(k.clone()))?,
                    V::from_content(v)?,
                ))
            })
            .collect(),
        Content::Seq(items) => items
            .iter()
            .map(|item| {
                let pair = item
                    .as_seq()
                    .filter(|s| s.len() == 2)
                    .ok_or_else(|| ContentError::expected("[key, value] pair", ty))?;
                Ok((K::from_content(&pair[0])?, V::from_content(&pair[1])?))
            })
            .collect(),
        _ => Err(ContentError::expected("object or pair list", ty)),
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        map_content_from_pairs(
            self.iter()
                .map(|(k, v)| (k.to_content(), v.to_content()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, ContentError> {
        Ok(map_pairs_from_content::<K, V>(c, "BTreeMap")?
            .into_iter()
            .collect())
    }
}

impl<K: Serialize + Eq + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_content(&self) -> Content {
        // Sorted by encoded key for deterministic output regardless of
        // hash iteration order.
        let mut pairs: Vec<(Content, Content)> = self
            .iter()
            .map(|(k, v)| (k.to_content(), v.to_content()))
            .collect();
        pairs.sort_by(|a, b| format!("{:?}", a.0).cmp(&format!("{:?}", b.0)));
        map_content_from_pairs(pairs)
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, ContentError> {
        Ok(map_pairs_from_content::<K, V>(c, "HashMap")?
            .into_iter()
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_content(&42u32.to_content()).unwrap(), 42);
        assert_eq!(i64::from_content(&(-7i64).to_content()).unwrap(), -7);
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<u8>::from_content(&Content::Null).unwrap(), None);
        assert_eq!(
            Vec::<u64>::from_content(&vec![1u64, 2].to_content()).unwrap(),
            vec![1, 2]
        );
    }

    #[test]
    fn missing_field_reads_as_null() {
        let fields = vec![("a".to_string(), Content::U64(1))];
        assert_eq!(Content::field(&fields, "a"), &Content::U64(1));
        assert_eq!(Content::field(&fields, "b"), &Content::Null);
    }
}
