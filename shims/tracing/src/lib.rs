//! Vendored offline stand-in for the `tracing` crate.
//!
//! The build environment has no registry access, so the real `tracing`
//! cannot be fetched. This shim reimplements exactly the API slice the
//! workspace uses: leveled events (`info!`, `warn!`, …) and spans
//! (`info_span!`, …) carrying `key = value` fields, dispatched to a
//! process-global [`Subscriber`]. When no subscriber is installed every
//! macro collapses to a relaxed atomic load — instrumented hot paths stay
//! effectively free, which is what lets the serving engine keep its
//! spans compiled in under the `tracing` cargo feature without perturbing
//! the virtual-time benchmarks.
//!
//! Differences from the real crate are deliberate simplifications: field
//! values are rendered eagerly to strings at the call site (only when a
//! subscriber is installed), the span context is a per-thread stack
//! rather than a registry, and there is no per-callsite filtering — the
//! subscriber's `max_level` is the only filter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Event/span severity, ordered from most to least verbose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Finest-grained detail.
    Trace,
    /// Debug-level detail.
    Debug,
    /// Informational.
    Info,
    /// Something degraded but handled.
    Warn,
    /// Something failed.
    Error,
}

impl Level {
    /// Upper-case display name, padded as the real crate renders it.
    pub fn name(self) -> &'static str {
        match self {
            Level::Trace => "TRACE",
            Level::Debug => "DEBUG",
            Level::Info => "INFO",
            Level::Warn => "WARN",
            Level::Error => "ERROR",
        }
    }
}

/// A value renderable as a span/event field. Implemented for the scalar
/// and string types the workspace records; everything renders via
/// `Display` (no quoting), matching how `tracing` records primitives.
pub trait FieldValue {
    /// Renders the value for the subscriber.
    fn render(&self) -> String;
}

macro_rules! impl_field_display {
    ($($ty:ty),* $(,)?) => {
        $(impl FieldValue for $ty {
            fn render(&self) -> String {
                self.to_string()
            }
        })*
    };
}

impl_field_display!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool, char);

impl FieldValue for &str {
    fn render(&self) -> String {
        (*self).to_string()
    }
}

impl FieldValue for String {
    fn render(&self) -> String {
        self.clone()
    }
}

impl<T: FieldValue> FieldValue for &T {
    fn render(&self) -> String {
        (**self).render()
    }
}

/// One rendered `key = value` field.
pub type Field = (&'static str, String);

/// A structured diagnostic record handed to the [`Subscriber`]: the
/// shared payload of events and span lifecycle notifications.
#[derive(Debug, Clone)]
pub struct Record<'a> {
    /// Severity.
    pub level: Level,
    /// Event message or span name.
    pub message: &'a str,
    /// Rendered fields, in call-site order.
    pub fields: &'a [Field],
    /// Rendered headers (`name{k=v …}`) of the enclosing span stack on
    /// this thread, outermost first.
    pub spans: &'a [String],
}

/// Receives events and span lifecycle notifications.
pub trait Subscriber: Send + Sync {
    /// Most verbose level this subscriber wants; records below it are
    /// dropped at the dispatch site.
    fn max_level(&self) -> Level {
        Level::Trace
    }

    /// A leveled event fired.
    fn on_event(&self, record: &Record<'_>);

    /// A span was entered (the record's message is the span name).
    fn on_enter(&self, record: &Record<'_>) {
        let _ = record;
    }

    /// A span was exited.
    fn on_exit(&self, record: &Record<'_>) {
        let _ = record;
    }
}

static SUBSCRIBER: OnceLock<Box<dyn Subscriber>> = OnceLock::new();
static ENABLED: AtomicBool = AtomicBool::new(false);

thread_local! {
    static SPAN_STACK: std::cell::RefCell<Vec<String>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Installs the process-global subscriber. Returns `Err` (with the
/// rejected subscriber) if one is already installed.
pub fn set_global_default(subscriber: Box<dyn Subscriber>) -> Result<(), Box<dyn Subscriber>> {
    match SUBSCRIBER.set(subscriber) {
        Ok(()) => {
            ENABLED.store(true, Ordering::Release);
            Ok(())
        }
        Err(rejected) => Err(rejected),
    }
}

/// True when a subscriber is installed and wants records at `level`.
/// This is the fast path every macro checks first.
pub fn enabled(level: Level) -> bool {
    ENABLED.load(Ordering::Relaxed) && SUBSCRIBER.get().is_some_and(|s| level >= s.max_level())
}

/// Dispatches an event to the global subscriber (no-op when none).
/// Called by the event macros; not intended for direct use.
pub fn dispatch_event(level: Level, message: &str, fields: &[Field]) {
    if let Some(sub) = SUBSCRIBER.get() {
        if level < sub.max_level() {
            return;
        }
        SPAN_STACK.with(|stack| {
            let stack = stack.borrow();
            sub.on_event(&Record {
                level,
                message,
                fields,
                spans: &stack,
            });
        });
    }
}

/// A live span handle. Dropping it is a no-op; entering it pushes the
/// span onto this thread's stack until the guard drops.
#[derive(Debug)]
pub struct Span {
    /// `None` for a disabled span (no subscriber / filtered out).
    header: Option<String>,
    level: Level,
    name: &'static str,
}

impl Span {
    /// A span that records nothing.
    pub fn none() -> Self {
        Span {
            header: None,
            level: Level::Trace,
            name: "",
        }
    }

    /// Builds a span; disabled (and field rendering skipped) when no
    /// subscriber wants `level`. Called by the span macros.
    pub fn build(level: Level, name: &'static str, fields: &[Field]) -> Self {
        if !enabled(level) {
            return Span::none();
        }
        let mut header = String::from(name);
        if !fields.is_empty() {
            header.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    header.push(' ');
                }
                let _ = write!(header, "{k}={v}");
            }
            header.push('}');
        }
        Span {
            header: Some(header),
            level,
            name,
        }
    }

    /// True when this span will notify the subscriber.
    pub fn is_enabled(&self) -> bool {
        self.header.is_some()
    }

    /// Enters the span: pushes it onto the thread's span stack and
    /// notifies the subscriber until the returned guard drops.
    pub fn enter(&self) -> Entered<'_> {
        self.push_notify();
        Entered { span: self }
    }

    /// Enters an owned span (`info_span!(…).entered()`): same as
    /// [`Span::enter`], but the guard owns the span, so the whole
    /// expression can bind to one local — the function-scope idiom.
    pub fn entered(self) -> EnteredSpan {
        self.push_notify();
        EnteredSpan { span: self }
    }

    /// Runs `f` inside the span.
    pub fn in_scope<T>(&self, f: impl FnOnce() -> T) -> T {
        let _guard = self.enter();
        f()
    }

    fn push_notify(&self) {
        if let Some(header) = &self.header {
            SPAN_STACK.with(|stack| stack.borrow_mut().push(header.clone()));
            if let Some(sub) = SUBSCRIBER.get() {
                SPAN_STACK.with(|stack| {
                    let stack = stack.borrow();
                    sub.on_enter(&Record {
                        level: self.level,
                        message: self.name,
                        fields: &[],
                        spans: &stack,
                    });
                });
            }
        }
    }

    fn pop_notify(&self) {
        if self.header.is_some() {
            if let Some(sub) = SUBSCRIBER.get() {
                SPAN_STACK.with(|stack| {
                    let stack = stack.borrow();
                    sub.on_exit(&Record {
                        level: self.level,
                        message: self.name,
                        fields: &[],
                        spans: &stack,
                    });
                });
            }
            SPAN_STACK.with(|stack| {
                stack.borrow_mut().pop();
            });
        }
    }
}

/// RAII guard returned by [`Span::enter`].
#[derive(Debug)]
pub struct Entered<'a> {
    span: &'a Span,
}

impl Drop for Entered<'_> {
    fn drop(&mut self) {
        self.span.pop_notify();
    }
}

/// RAII guard returned by [`Span::entered`]; owns its span.
#[derive(Debug)]
pub struct EnteredSpan {
    span: Span,
}

impl Drop for EnteredSpan {
    fn drop(&mut self) {
        self.span.pop_notify();
    }
}

/// Renders `key = value` pairs into a field vector. Shared tail of the
/// event/span macros; not intended for direct use.
#[macro_export]
macro_rules! __fields {
    ($(,)?) => { Vec::<$crate::Field>::new() };
    ($($key:ident = $val:expr),+ $(,)?) => {
        vec![$((stringify!($key), $crate::FieldValue::render(&$val))),+]
    };
}

/// Fires a leveled event: `event!(Level::Info, key = v, "message")`.
/// The message must be a string literal (it disambiguates the field
/// list), matching how the real crate's events are normally written.
#[macro_export]
macro_rules! event {
    ($level:expr, $($key:ident = $val:expr),+ , $msg:literal $(,)?) => {
        if $crate::enabled($level) {
            let fields = $crate::__fields!($($key = $val),+);
            $crate::dispatch_event($level, &$msg, &fields);
        }
    };
    ($level:expr, $msg:expr $(,)?) => {
        if $crate::enabled($level) {
            $crate::dispatch_event($level, &$msg, &[]);
        }
    };
}

/// `event!` at [`Level::Trace`].
#[macro_export]
macro_rules! trace {
    ($($tt:tt)*) => { $crate::event!($crate::Level::Trace, $($tt)*) };
}

/// `event!` at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($($tt:tt)*) => { $crate::event!($crate::Level::Debug, $($tt)*) };
}

/// `event!` at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($($tt:tt)*) => { $crate::event!($crate::Level::Info, $($tt)*) };
}

/// `event!` at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($($tt:tt)*) => { $crate::event!($crate::Level::Warn, $($tt)*) };
}

/// `event!` at [`Level::Error`].
#[macro_export]
macro_rules! error {
    ($($tt:tt)*) => { $crate::event!($crate::Level::Error, $($tt)*) };
}

/// Builds a span: `span!(Level::Info, "name", key = v, …)`.
#[macro_export]
macro_rules! span {
    ($level:expr, $name:expr, $($key:ident = $val:expr),+ $(,)?) => {{
        let fields = if $crate::enabled($level) {
            $crate::__fields!($($key = $val),+)
        } else {
            Vec::new()
        };
        $crate::Span::build($level, $name, &fields)
    }};
    ($level:expr, $name:expr $(,)?) => {
        $crate::Span::build($level, $name, &[])
    };
}

/// `span!` at [`Level::Debug`].
#[macro_export]
macro_rules! debug_span {
    ($($tt:tt)*) => { $crate::span!($crate::Level::Debug, $($tt)*) };
}

/// `span!` at [`Level::Info`].
#[macro_export]
macro_rules! info_span {
    ($($tt:tt)*) => { $crate::span!($crate::Level::Info, $($tt)*) };
}

/// A line-oriented subscriber writing
/// `LEVEL span{k=v}:inner{…}: message k=v …` lines to stderr — the
/// `tracing_subscriber::fmt` stand-in used by the real-mode example.
#[derive(Debug, Default)]
pub struct StderrSubscriber {
    min_level: Option<Level>,
    /// Lines written, for tests and smoke checks.
    lines: AtomicUsize,
}

impl StderrSubscriber {
    /// Subscriber at the given minimum level.
    pub fn with_level(level: Level) -> Self {
        StderrSubscriber {
            min_level: Some(level),
            lines: AtomicUsize::new(0),
        }
    }

    fn render(record: &Record<'_>) -> String {
        let mut line = String::new();
        let _ = write!(line, "{:>5}", record.level.name());
        if !record.spans.is_empty() {
            line.push(' ');
            line.push_str(&record.spans.join(":"));
            line.push(':');
        }
        let _ = write!(line, " {}", record.message);
        for (k, v) in record.fields {
            let _ = write!(line, " {k}={v}");
        }
        line
    }
}

impl Subscriber for StderrSubscriber {
    fn max_level(&self) -> Level {
        self.min_level.unwrap_or(Level::Info)
    }

    fn on_event(&self, record: &Record<'_>) {
        self.lines.fetch_add(1, Ordering::Relaxed);
        eprintln!("{}", Self::render(record));
    }
}

/// Installs a [`StderrSubscriber`] at `level` as the global default.
/// Idempotent: a second call (or a prior custom subscriber) wins and
/// this becomes a no-op, matching `try_init` semantics.
pub fn init_stderr(level: Level) {
    let _ = set_global_default(Box::new(StderrSubscriber::with_level(level)));
}

/// A subscriber that buffers rendered lines in memory — used by tests
/// that assert on span/event structure.
#[derive(Debug, Default)]
pub struct MemorySubscriber {
    lines: Mutex<Vec<String>>,
}

impl MemorySubscriber {
    /// Snapshot of the captured lines.
    pub fn lines(&self) -> Vec<String> {
        self.lines
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }
}

impl Subscriber for MemorySubscriber {
    fn on_event(&self, record: &Record<'_>) {
        self.lines
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(StderrSubscriber::render(record));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_macros_are_no_ops_and_spans_are_none() {
        // No subscriber installed in this test binary unless another test
        // ran first; either way the macros must not panic and `none()`
        // spans must nest cleanly.
        let span = Span::none();
        let _g = span.enter();
        info!(seq = 1usize, "event without a subscriber");
        assert!(!span.is_enabled());
    }

    #[test]
    fn field_rendering_uses_display() {
        assert_eq!(FieldValue::render(&42u64), "42");
        assert_eq!(FieldValue::render(&true), "true");
        assert_eq!(FieldValue::render(&"abc"), "abc");
        assert_eq!(FieldValue::render(&1.5f64), "1.5");
    }

    #[test]
    fn record_renders_span_stack_and_fields() {
        let record = Record {
            level: Level::Info,
            message: "stage complete",
            fields: &[("seq", "3".into()), ("stage", "embed".into())],
            spans: &["serve_event{seq=3}".into()],
        };
        let line = StderrSubscriber::render(&record);
        assert_eq!(
            line,
            " INFO serve_event{seq=3}: stage complete seq=3 stage=embed"
        );
    }

    #[test]
    fn levels_order_from_trace_to_error() {
        assert!(Level::Trace < Level::Debug);
        assert!(Level::Debug < Level::Info);
        assert!(Level::Info < Level::Warn);
        assert!(Level::Warn < Level::Error);
    }
}
