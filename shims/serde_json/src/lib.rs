//! Vendored offline stand-in for `serde_json`.
//!
//! Serializes the shim `serde` crate's `Content` data model to JSON text
//! and parses JSON text back. Output formatting follows serde_json's
//! conventions (compact `{"k":v}` form, two-space pretty indentation,
//! floats always carrying a decimal point) so artifacts written by the
//! benches keep the familiar shape.

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// JSON value type; identical to the serde shim's content tree.
pub type Value = Content;

/// A JSON (de)serialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::ContentError> for Error {
    fn from(e: serde::ContentError) -> Self {
        Error(e.0)
    }
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_content()
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_content(), None, 0);
    Ok(out)
}

/// Serializes `value` to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_content(), Some(2), 0);
    Ok(out)
}

/// Parses a JSON string into any deserializable value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_content(&value)?)
}

/// Builds a [`Value`] from JSON-like syntax: `json!({"k": expr, ...})`,
/// `json!([a, b])`, `json!(null)`, or any serializable expression.
/// Object and array literals nest, as in the real crate.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({}) => { $crate::Value::Map(Vec::new()) };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Map($crate::json_object_entries!([]; $($tt)+))
    };
    ([]) => { $crate::Value::Seq(Vec::new()) };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Seq($crate::json_array_items!([]; $($tt)+))
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Muncher for `json!` object bodies: accumulates parsed `(key, value)`
/// pairs inside `[...]`, then expands to one `vec![...]`. Values may
/// themselves be object or array literals, which recurse through `json!`.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_entries {
    ([$(($k:expr, $v:expr),)*];) => { vec![$(($k.to_string(), $v)),*] };
    ([$($acc:tt)*]; $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_object_entries!(
            [$($acc)* ($key, $crate::json!({ $($inner)* })),]; $($($rest)*)?
        )
    };
    ([$($acc:tt)*]; $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_object_entries!(
            [$($acc)* ($key, $crate::json!([ $($inner)* ])),]; $($($rest)*)?
        )
    };
    ([$($acc:tt)*]; $key:literal : null $(, $($rest:tt)*)?) => {
        $crate::json_object_entries!(
            [$($acc)* ($key, $crate::Value::Null),]; $($($rest)*)?
        )
    };
    ([$($acc:tt)*]; $key:literal : $val:expr $(, $($rest:tt)*)?) => {
        $crate::json_object_entries!(
            [$($acc)* ($key, $crate::to_value(&$val)),]; $($($rest)*)?
        )
    };
}

/// Muncher for `json!` array bodies; same accumulator scheme as
/// [`json_object_entries`].
#[doc(hidden)]
#[macro_export]
macro_rules! json_array_items {
    ([$($v:expr,)*];) => { vec![$($v),*] };
    ([$($acc:tt)*]; { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_array_items!([$($acc)* $crate::json!({ $($inner)* }),]; $($($rest)*)?)
    };
    ([$($acc:tt)*]; [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_array_items!([$($acc)* $crate::json!([ $($inner)* ]),]; $($($rest)*)?)
    };
    ([$($acc:tt)*]; null $(, $($rest:tt)*)?) => {
        $crate::json_array_items!([$($acc)* $crate::Value::Null,]; $($($rest)*)?)
    };
    ([$($acc:tt)*]; $val:expr $(, $($rest:tt)*)?) => {
        $crate::json_array_items!([$($acc)* $crate::to_value(&$val),]; $($($rest)*)?)
    };
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
        }
        Value::I64(n) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
        }
        Value::F64(n) => write_f64(out, *n),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => write_compound(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, depth + 1);
        }),
        Value::Map(entries) => {
            write_compound(out, indent, depth, '{', '}', entries.len(), |out, i| {
                write_escaped(out, &entries[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, &entries[i].1, indent, depth + 1);
            })
        }
    }
}

fn write_compound(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        write_item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e16 {
        let _ = fmt::Write::write_fmt(out, format_args!("{v:.1}"));
    } else {
        let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while !matches!(self.peek(), Some(b'"' | b'\\') | None) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(e.to_string()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| {
                                    Error(format!("bad \\u escape at byte {}", self.pos))
                                })?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!(
                                "bad escape {:?} at byte {}",
                                other.map(|b| b as char),
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                None => return Err(Error("unterminated string".to_string())),
                _ => unreachable!(),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| Error(e.to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error(e.to_string()))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|e| Error(e.to_string()))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|e| Error(e.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_value() {
        let v = json!({
            "name": "queue",
            "count": 3usize,
            "ratio": 0.5f64,
            "tags": ["a", "b"],
            "inner": json!({"ok": true, "none": Value::Null}),
        });
        let s = to_string(&v).unwrap();
        assert_eq!(
            s,
            "{\"name\":\"queue\",\"count\":3,\"ratio\":0.5,\"tags\":[\"a\",\"b\"],\
             \"inner\":{\"ok\":true,\"none\":null}}"
        );
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn object_and_array_literals_nest_without_inner_json_calls() {
        let v = json!({
            "best": {"k": 5usize, "alpha": 0.3f64},
            "grid": [{"k": 1usize}, {"k": 2usize}],
            "empty_map": {},
            "empty_seq": [],
            "gap": null,
        });
        let s = to_string(&v).unwrap();
        assert_eq!(
            s,
            "{\"best\":{\"k\":5,\"alpha\":0.3},\"grid\":[{\"k\":1},{\"k\":2}],\
             \"empty_map\":{},\"empty_seq\":[],\"gap\":null}"
        );
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_uses_two_space_indent() {
        let v = json!({"rows": [1u64]});
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"rows\": [\n    1\n  ]\n}"
        );
    }

    #[test]
    fn escapes_and_floats() {
        let s = to_string(&json!({"s": "a\"b\nc", "f": 2.0f64})).unwrap();
        assert_eq!(s, "{\"s\":\"a\\\"b\\nc\",\"f\":2.0}");
        let back: Value = from_str(&s).unwrap();
        assert_eq!(
            back.as_map().unwrap()[0].1,
            Value::Str("a\"b\nc".to_string())
        );
    }
}
