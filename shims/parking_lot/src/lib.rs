//! Vendored offline stand-in for `parking_lot`.
//!
//! Wraps the std locks with parking_lot's API shape: `lock()`, `read()`
//! and `write()` return guards directly instead of `Result`s. Poisoning
//! is deliberately ignored (a poisoned lock yields its inner guard),
//! matching parking_lot's no-poisoning semantics.

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock whose guards are infallible.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps `value` in a new lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock")
            .field("data", &*self.read())
            .finish()
    }
}

/// A mutual-exclusion lock whose guard is infallible.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex")
            .field("data", &*self.lock())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1u32);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
