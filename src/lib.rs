//! # RCACopilot — automatic root cause analysis for cloud incidents
//!
//! A from-scratch Rust reproduction of *"Automatic Root Cause Analysis via
//! Large Language Models for Cloud Incidents"* (EuroSys 2024): an on-call
//! system that matches incoming incidents to per-alert-type handlers,
//! collects multi-source diagnostic information, summarizes it, retrieves
//! similar historical incidents with a temporal-decay similarity, and asks
//! a (simulated) LLM to pick the matching root-cause category — or declare
//! the incident unseen and synthesize a new category label.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! - [`telemetry`]: logs/metrics/traces/alerts data model and query surface
//! - [`simcloud`]: the simulated transport service and incident campaign
//! - [`handlers`]: the incident-handler workflow engine
//! - [`textkit`]: text normalization, TF-IDF, BPE tokenizer
//! - [`embed`]: FastText-style embeddings and nearest-neighbor search
//! - [`gbdt`]: gradient-boosted trees (the XGBoost baseline)
//! - [`llm`]: the simulated language model (summarization, CoT prediction)
//! - [`core`]: the end-to-end pipeline, baselines, and evaluation harness
//! - [`serve`]: the online serving engine — streaming alerts, admission
//!   control, multi-worker execution, incremental retrieval index
//!
//! See `examples/quickstart.rs` for a five-minute tour and DESIGN.md for
//! the full system inventory.

#![forbid(unsafe_code)]

pub use rcacopilot_core as core;
pub use rcacopilot_embed as embed;
pub use rcacopilot_gbdt as gbdt;
pub use rcacopilot_handlers as handlers;
pub use rcacopilot_llm as llm;
pub use rcacopilot_serve as serve;
pub use rcacopilot_simcloud as simcloud;
pub use rcacopilot_telemetry as telemetry;
pub use rcacopilot_textkit as textkit;
