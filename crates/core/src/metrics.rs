//! Micro/macro F1 scoring for multi-class predictions.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-class precision/recall/F1 with support.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ClassScores {
    /// Precision.
    pub precision: f64,
    /// Recall.
    pub recall: f64,
    /// F1.
    pub f1: f64,
    /// Gold occurrences of the class.
    pub support: usize,
}

/// The full scoring report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct F1Report {
    /// Micro-averaged F1 (for single-label classification this equals
    /// accuracy, which is how the paper's Micro column behaves).
    pub micro_f1: f64,
    /// Macro-averaged F1 over classes present in the gold labels.
    pub macro_f1: f64,
    /// Per-class breakdown (gold classes only).
    pub per_class: BTreeMap<String, ClassScores>,
}

/// Computes micro and macro F1 for aligned gold/predicted label slices.
///
/// Macro averages over classes that appear in the *gold* labels; a
/// prediction of a label outside the gold set counts as a false positive
/// nowhere and a false negative for its gold class (standard convention
/// when generated labels may be novel strings).
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn f1_scores(gold: &[String], pred: &[String]) -> F1Report {
    assert_eq!(gold.len(), pred.len(), "gold/pred length mismatch");
    assert!(!gold.is_empty(), "cannot score zero predictions");

    let mut tp: BTreeMap<&str, usize> = BTreeMap::new();
    let mut fp: BTreeMap<&str, usize> = BTreeMap::new();
    let mut fn_: BTreeMap<&str, usize> = BTreeMap::new();
    let mut support: BTreeMap<&str, usize> = BTreeMap::new();

    for (g, p) in gold.iter().zip(pred) {
        *support.entry(g.as_str()).or_insert(0) += 1;
        if g == p {
            *tp.entry(g.as_str()).or_insert(0) += 1;
        } else {
            *fn_.entry(g.as_str()).or_insert(0) += 1;
            *fp.entry(p.as_str()).or_insert(0) += 1;
        }
    }

    let total_tp: usize = tp.values().sum();
    let n = gold.len();
    // Single-label: ΣFP = ΣFN = N − ΣTP, so micro P = R = F1 = accuracy.
    let micro_f1 = total_tp as f64 / n as f64;

    let mut per_class = BTreeMap::new();
    let mut macro_sum = 0.0;
    for (&class, &sup) in &support {
        let tp_c = tp.get(class).copied().unwrap_or(0) as f64;
        let fp_c = fp.get(class).copied().unwrap_or(0) as f64;
        let fn_c = fn_.get(class).copied().unwrap_or(0) as f64;
        let precision = if tp_c + fp_c > 0.0 {
            tp_c / (tp_c + fp_c)
        } else {
            0.0
        };
        let recall = if tp_c + fn_c > 0.0 {
            tp_c / (tp_c + fn_c)
        } else {
            0.0
        };
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        macro_sum += f1;
        per_class.insert(
            class.to_string(),
            ClassScores {
                precision,
                recall,
                f1,
                support: sup,
            },
        );
    }
    let macro_f1 = macro_sum / per_class.len() as f64;

    F1Report {
        micro_f1,
        macro_f1,
        per_class,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(items: &[&str]) -> Vec<String> {
        items.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn perfect_predictions_score_one() {
        let gold = s(&["a", "b", "a", "c"]);
        let r = f1_scores(&gold, &gold);
        assert_eq!(r.micro_f1, 1.0);
        assert_eq!(r.macro_f1, 1.0);
        assert_eq!(r.per_class["a"].support, 2);
    }

    #[test]
    fn micro_equals_accuracy_for_single_label() {
        let gold = s(&["a", "a", "a", "b"]);
        let pred = s(&["a", "a", "b", "b"]);
        let r = f1_scores(&gold, &pred);
        assert!((r.micro_f1 - 0.75).abs() < 1e-12);
    }

    #[test]
    fn macro_punishes_minority_class_failure() {
        // 9 correct on the majority class, total miss on the minority.
        let mut gold = vec!["maj".to_string(); 9];
        gold.push("min".to_string());
        let mut pred = vec!["maj".to_string(); 9];
        pred.push("maj".to_string());
        let r = f1_scores(&gold, &pred);
        assert!(r.micro_f1 > 0.89);
        // maj: P = 9/10, R = 1 → F1 ≈ 0.947; min: 0. Macro ≈ 0.474.
        assert!((r.macro_f1 - 0.4737).abs() < 0.01, "macro {}", r.macro_f1);
    }

    #[test]
    fn novel_predicted_labels_are_not_macro_classes() {
        let gold = s(&["a", "b"]);
        let pred = s(&["I/O Bottleneck", "b"]);
        let r = f1_scores(&gold, &pred);
        assert_eq!(r.per_class.len(), 2);
        assert!(!r.per_class.contains_key("I/O Bottleneck"));
        assert_eq!(r.per_class["a"].recall, 0.0);
        assert_eq!(r.per_class["b"].f1, 1.0);
    }

    #[test]
    fn precision_accounts_for_cross_class_false_positives() {
        let gold = s(&["a", "b", "b"]);
        let pred = s(&["b", "b", "b"]);
        let r = f1_scores(&gold, &pred);
        let b = r.per_class["b"];
        assert!((b.precision - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(b.recall, 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = f1_scores(&s(&["a"]), &s(&["a", "b"]));
    }

    #[test]
    #[should_panic(expected = "zero predictions")]
    fn empty_inputs_panic() {
        let _ = f1_scores(&[], &[]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn labels(n: usize) -> impl Strategy<Value = Vec<String>> {
        proptest::collection::vec(
            proptest::sample::select(vec!["a", "b", "c", "d"]).prop_map(str::to_string),
            n..=n,
        )
    }

    proptest! {
        #[test]
        fn scores_are_bounded(gold in labels(17), pred in labels(17)) {
            let r = f1_scores(&gold, &pred);
            prop_assert!((0.0..=1.0).contains(&r.micro_f1));
            prop_assert!((0.0..=1.0).contains(&r.macro_f1));
        }

        #[test]
        fn perfect_prediction_scores_one(gold in labels(12)) {
            let r = f1_scores(&gold, &gold);
            prop_assert_eq!(r.micro_f1, 1.0);
            prop_assert_eq!(r.macro_f1, 1.0);
        }

        #[test]
        fn micro_counts_exact_matches(gold in labels(20), pred in labels(20)) {
            let exact = gold.iter().zip(&pred).filter(|(g, p)| g == p).count();
            let r = f1_scores(&gold, &pred);
            prop_assert!((r.micro_f1 - exact as f64 / 20.0).abs() < 1e-12);
        }

        #[test]
        fn macro_never_exceeds_micro_plus_one(gold in labels(20), pred in labels(20)) {
            // Not a theorem in general, but both must be consistent bounds.
            let r = f1_scores(&gold, &pred);
            prop_assert!(r.macro_f1 <= 1.0 && r.micro_f1 <= 1.0);
            if r.micro_f1 == 0.0 {
                prop_assert_eq!(r.macro_f1, 0.0);
            }
        }
    }
}
