//! On-call incident reports — the notification RCACopilot sends OCEs.
//!
//! The deployed system notifies on-call engineers by email with the
//! predicted root cause, the explanation, the handler's mitigation
//! suggestions, and a feedback link (paper §5.5). This module renders
//! that artifact from the pipeline's outputs.

use crate::collection::CollectedIncident;
use crate::pipeline::RcaPrediction;
use rcacopilot_simcloud::Incident;
use serde::{Deserialize, Serialize};

/// A fully rendered on-call report for one incident.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnCallReport {
    /// Incident ticket id.
    pub incident_id: String,
    /// Alert headline (type, scope, severity).
    pub headline: String,
    /// Predicted category (or synthesized label for unseen incidents).
    pub predicted_category: String,
    /// True when the incident was declared unseen.
    pub unseen: bool,
    /// Prediction confidence.
    pub confidence: f64,
    /// Natural-language explanation.
    pub explanation: String,
    /// Summarized diagnostics shown inline.
    pub summary: String,
    /// Handler path that produced the diagnostics.
    pub handler_path: Vec<String>,
    /// Mitigation suggestions the handler reached.
    pub mitigations: Vec<String>,
    /// Categories of the retrieved historical demonstrations.
    pub similar_incidents: Vec<String>,
}

impl OnCallReport {
    /// Assembles a report from the pipeline's stage outputs.
    pub fn assemble(
        incident: &Incident,
        collected: &CollectedIncident,
        summary: &str,
        prediction: &RcaPrediction,
    ) -> Self {
        OnCallReport {
            incident_id: incident.alert.incident.to_string(),
            headline: format!(
                "{} ({}) on {}",
                incident.alert.alert_type, incident.alert.severity, incident.alert.scope
            ),
            predicted_category: prediction.label.clone(),
            unseen: prediction.unseen,
            confidence: prediction.confidence,
            explanation: prediction.explanation.clone(),
            summary: summary.to_string(),
            handler_path: collected.run.path.clone(),
            mitigations: collected.run.mitigations.clone(),
            similar_incidents: prediction.demo_categories.clone(),
        }
    }

    /// Renders the report as the notification text OCEs receive.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "RCACopilot report for {}\n{}\n\n",
            self.incident_id, self.headline
        ));
        if self.unseen {
            out.push_str(&format!(
                "PREDICTED ROOT CAUSE: {} (NEW CATEGORY — not seen before; please review)\n",
                self.predicted_category
            ));
        } else {
            out.push_str(&format!(
                "PREDICTED ROOT CAUSE: {} (confidence {:.2})\n",
                self.predicted_category, self.confidence
            ));
        }
        out.push_str(&format!("\nWhy: {}\n", self.explanation));
        out.push_str("\nSummarized diagnostics:\n");
        out.push_str(&self.summary);
        out.push('\n');
        if !self.mitigations.is_empty() {
            out.push_str("\nSuggested mitigations:\n");
            for m in &self.mitigations {
                out.push_str(&format!("  - {m}\n"));
            }
        }
        if !self.similar_incidents.is_empty() {
            out.push_str("\nSimilar historical incidents considered: ");
            out.push_str(&self.similar_incidents.join(", "));
            out.push('\n');
        }
        out.push_str("\nCollected by handler path: ");
        out.push_str(&self.handler_path.join(" -> "));
        out.push_str("\n\nWas this prediction helpful? Reply with feedback.\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcacopilot_handlers::HandlerRun;
    use rcacopilot_telemetry::alert::{Alert, AlertType, Severity};
    use rcacopilot_telemetry::ids::{ForestId, IncidentId, TenantId};
    use rcacopilot_telemetry::query::Scope;
    use rcacopilot_telemetry::time::SimTime;
    use rcacopilot_telemetry::TelemetrySnapshot;

    fn fixture() -> (Incident, CollectedIncident, RcaPrediction) {
        let incident = Incident {
            alert: Alert {
                incident: IncidentId(42),
                alert_type: AlertType::OutboundConnectionFailure,
                scope: Scope::Forest(ForestId(1)),
                severity: Severity::Sev2,
                tenant: TenantId::default(),
                raised_at: SimTime::from_days(10),
                monitor: "OutboundProxyMonitor".into(),
                message: "Outbound proxy connections failing.".into(),
            },
            category: "HubPortExhaustion".into(),
            first_of_category: false,
            snapshot: TelemetrySnapshot::new(SimTime::from_days(10)),
        };
        let collected = CollectedIncident {
            alert_info: incident.alert_info(),
            run: HandlerRun {
                path: vec![
                    "Probe hub outbound proxy".into(),
                    "Count UDP sockets".into(),
                ],
                mitigations: vec!["Recycle the Transport service.".into()],
                ..HandlerRun::default()
            },
            known_issue: None,
        };
        let prediction = RcaPrediction {
            label: "HubPortExhaustion".into(),
            unseen: false,
            confidence: 0.82,
            explanation: "Matched on WinSock 11001 and the UDP socket table.".into(),
            demo_categories: vec!["HubPortExhaustion".into(), "DnsMisconfigMxRecord".into()],
            completeness: 1.0,
        };
        (incident, collected, prediction)
    }

    #[test]
    fn report_renders_all_sections() {
        let (incident, collected, prediction) = fixture();
        let report =
            OnCallReport::assemble(&incident, &collected, "UDP sockets exhausted.", &prediction);
        let text = report.render();
        assert!(text.contains("IcM000000042"));
        assert!(text.contains("PREDICTED ROOT CAUSE: HubPortExhaustion (confidence 0.82)"));
        assert!(text.contains("Recycle the Transport service."));
        assert!(text.contains("Probe hub outbound proxy -> Count UDP sockets"));
        assert!(text.contains(
            "Similar historical incidents considered: HubPortExhaustion, DnsMisconfigMxRecord"
        ));
        assert!(text.contains("feedback"));
    }

    #[test]
    fn unseen_reports_flag_new_categories() {
        let (incident, collected, mut prediction) = fixture();
        prediction.unseen = true;
        prediction.label = "I/O Bottleneck".into();
        let report = OnCallReport::assemble(&incident, &collected, "disk full", &prediction);
        let text = report.render();
        assert!(text.contains("NEW CATEGORY"));
        assert!(text.contains("I/O Bottleneck"));
        assert!(!text.contains("confidence 0.82"));
    }

    #[test]
    fn report_round_trips_serde() {
        let (incident, collected, prediction) = fixture();
        let report = OnCallReport::assemble(&incident, &collected, "s", &prediction);
        let json = serde_json::to_string(&report).unwrap();
        let back: OnCallReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
