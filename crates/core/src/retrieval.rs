//! Historical-incident retrieval with temporal-decay similarity.
//!
//! Paper §4.2.2:
//!
//! ```text
//! Distance(a,b)   = ‖a − b‖₂
//! Similarity(a,b) = 1/(1 + Distance(a,b)) · e^(−α·|T(a) − T(b)|)
//! ```
//!
//! with the top-K neighbors drawn from *distinct* categories so the
//! demonstrations stay diverse. `α` is measured per day; the paper's best
//! values are `K = 5`, `α = 0.3`.

use rcacopilot_telemetry::time::SimTime;
use serde::{Deserialize, Serialize};

/// Retrieval hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetrievalConfig {
    /// Demonstrations per prompt.
    pub k: usize,
    /// Temporal decay rate per day.
    pub alpha: f64,
}

impl Default for RetrievalConfig {
    fn default() -> Self {
        RetrievalConfig { k: 5, alpha: 0.3 }
    }
}

/// One indexed historical incident.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistoricalEntry {
    /// Caller-assigned id (index into the training set).
    pub id: usize,
    /// Root-cause category label.
    pub category: String,
    /// Summarized diagnostic information (prompt demonstration text).
    pub summary: String,
    /// When the incident occurred.
    pub at: SimTime,
    /// Embedding of the incident's (raw) diagnostic information.
    pub embedding: Vec<f32>,
}

/// A retrieved neighbor with its similarity.
#[derive(Debug, Clone, PartialEq)]
pub struct Neighbor<'a> {
    /// The matched historical entry.
    pub entry: &'a HistoricalEntry,
    /// Similarity per the paper's formula.
    pub similarity: f64,
}

/// The index of historical incidents.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct HistoricalIndex {
    entries: Vec<HistoricalEntry>,
}

/// The paper's similarity formula.
pub fn similarity(distance: f64, delta_days: f64, alpha: f64) -> f64 {
    (1.0 / (1.0 + distance)) * (-alpha * delta_days.abs()).exp()
}

fn euclidean(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = (*x - *y) as f64;
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

impl HistoricalIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        HistoricalIndex::default()
    }

    /// Adds a historical incident.
    pub fn add(&mut self, entry: HistoricalEntry) {
        self.entries.push(entry);
    }

    /// Number of indexed incidents.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries.
    pub fn entries(&self) -> &[HistoricalEntry] {
        &self.entries
    }

    /// Retrieves the top-`k` most similar incidents **from distinct
    /// categories** (paper §4.2.2: "we select the top K incidents from
    /// different categories as demonstrations").
    pub fn top_k_diverse(
        &self,
        query_embedding: &[f32],
        query_time: SimTime,
        config: &RetrievalConfig,
    ) -> Vec<Neighbor<'_>> {
        let mut scored: Vec<(usize, f64)> = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| {
                let dist = euclidean(query_embedding, &e.embedding);
                let dt = e.at.abs_diff(query_time).as_days_f64();
                (i, similarity(dist, dt, config.alpha))
            })
            .collect();
        // total_cmp instead of partial_cmp: a NaN similarity (possible
        // from a degenerate zero embedding) must not panic the pipeline;
        // it gets a deterministic position instead.
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));

        let mut seen_categories = std::collections::BTreeSet::new();
        let mut out = Vec::with_capacity(config.k);
        for (i, sim) in scored {
            let entry = &self.entries[i];
            if seen_categories.insert(entry.category.as_str()) {
                out.push(Neighbor {
                    entry,
                    similarity: sim,
                });
                if out.len() == config.k {
                    break;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: usize, cat: &str, day: u64, emb: Vec<f32>) -> HistoricalEntry {
        HistoricalEntry {
            id,
            category: cat.to_string(),
            summary: format!("summary {id}"),
            at: SimTime::from_days(day),
            embedding: emb,
        }
    }

    #[test]
    fn similarity_formula_matches_paper() {
        // Zero distance, zero time gap: similarity 1.
        assert!((similarity(0.0, 0.0, 0.3) - 1.0).abs() < 1e-12);
        // Distance 1 halves the spatial part.
        assert!((similarity(1.0, 0.0, 0.3) - 0.5).abs() < 1e-12);
        // Ten days at alpha 0.3 decays by e^-3.
        let s = similarity(0.0, 10.0, 0.3);
        assert!((s - (-3.0f64).exp()).abs() < 1e-12);
        // Alpha 0 ignores time.
        assert_eq!(similarity(2.0, 100.0, 0.0), 1.0 / 3.0);
    }

    #[test]
    fn temporal_decay_prefers_recent_incidents() {
        let mut idx = HistoricalIndex::new();
        // Same embedding, different times; category must differ to coexist.
        idx.add(entry(0, "Old", 10, vec![0.0, 0.0]));
        idx.add(entry(1, "New", 99, vec![0.0, 0.0]));
        let cfg = RetrievalConfig { k: 2, alpha: 0.3 };
        let hits = idx.top_k_diverse(&[0.0, 0.0], SimTime::from_days(100), &cfg);
        assert_eq!(hits[0].entry.category, "New");
        assert!(hits[0].similarity > hits[1].similarity);
        // With alpha = 0 the tie is broken by insertion order, not time.
        let cfg0 = RetrievalConfig { k: 2, alpha: 0.0 };
        let hits0 = idx.top_k_diverse(&[0.0, 0.0], SimTime::from_days(100), &cfg0);
        assert!((hits0[0].similarity - hits0[1].similarity).abs() < 1e-12);
    }

    #[test]
    fn diversity_takes_one_per_category() {
        let mut idx = HistoricalIndex::new();
        idx.add(entry(0, "A", 50, vec![0.0]));
        idx.add(entry(1, "A", 50, vec![0.1]));
        idx.add(entry(2, "B", 50, vec![5.0]));
        idx.add(entry(3, "C", 50, vec![9.0]));
        let cfg = RetrievalConfig { k: 3, alpha: 0.0 };
        let hits = idx.top_k_diverse(&[0.0], SimTime::from_days(50), &cfg);
        let cats: Vec<&str> = hits.iter().map(|n| n.entry.category.as_str()).collect();
        assert_eq!(cats, vec!["A", "B", "C"]);
        // The closer "A" entry represents its category.
        assert_eq!(hits[0].entry.id, 0);
    }

    #[test]
    fn k_larger_than_categories_returns_all_categories() {
        let mut idx = HistoricalIndex::new();
        idx.add(entry(0, "A", 1, vec![0.0]));
        idx.add(entry(1, "B", 1, vec![1.0]));
        let cfg = RetrievalConfig { k: 10, alpha: 0.3 };
        let hits = idx.top_k_diverse(&[0.0], SimTime::from_days(1), &cfg);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx = HistoricalIndex::new();
        let hits = idx.top_k_diverse(&[0.0], SimTime::EPOCH, &RetrievalConfig::default());
        assert!(hits.is_empty());
        assert!(idx.is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn similarity_is_bounded_and_monotone(
            d1 in 0.0f64..50.0, d2 in 0.0f64..50.0,
            t1 in 0.0f64..365.0, t2 in 0.0f64..365.0,
            alpha in 0.0f64..2.0
        ) {
            let s = similarity(d1, t1, alpha);
            prop_assert!((0.0..=1.0).contains(&s));
            // Monotone decreasing in distance at fixed time.
            if d1 <= d2 {
                prop_assert!(similarity(d1, t1, alpha) + 1e-12 >= similarity(d2, t1, alpha));
            }
            // Monotone decreasing in |Δt| at fixed distance.
            if t1 <= t2 {
                prop_assert!(similarity(d1, t1, alpha) + 1e-12 >= similarity(d1, t2, alpha));
            }
        }

        #[test]
        fn top_k_diverse_is_sorted_and_distinct(
            k in 1usize..8,
            days in proptest::collection::vec(0u64..364, 1..30)
        ) {
            let mut idx = HistoricalIndex::new();
            for (i, &d) in days.iter().enumerate() {
                idx.add(HistoricalEntry {
                    id: i,
                    category: format!("Cat{}", i % 7),
                    summary: String::new(),
                    at: SimTime::from_days(d),
                    embedding: vec![(i % 5) as f32, (i % 3) as f32],
                });
            }
            let hits = idx.top_k_diverse(&[0.0, 0.0], SimTime::from_days(180), &RetrievalConfig { k, alpha: 0.3 });
            prop_assert!(hits.len() <= k);
            for w in hits.windows(2) {
                prop_assert!(w[0].similarity + 1e-12 >= w[1].similarity);
            }
            let mut cats: Vec<&str> = hits.iter().map(|n| n.entry.category.as_str()).collect();
            cats.sort_unstable();
            let before = cats.len();
            cats.dedup();
            prop_assert_eq!(cats.len(), before, "duplicate categories in demos");
        }
    }
}
