//! Historical-incident retrieval with temporal-decay similarity.
//!
//! Paper §4.2.2:
//!
//! ```text
//! Distance(a,b)   = ‖a − b‖₂
//! Similarity(a,b) = 1/(1 + Distance(a,b)) · e^(−α·|T(a) − T(b)|)
//! ```
//!
//! with the top-K neighbors drawn from *distinct* categories so the
//! demonstrations stay diverse. `α` is measured per day; the paper's best
//! values are `K = 5`, `α = 0.3`.

use rcacopilot_embed::{BucketedIndex, EpochIndex, HnswConfig, HnswIndex, IndexStats, IvfIndex};
use rcacopilot_telemetry::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Which index answers the candidate-generation half of retrieval.
///
/// Scoring is *always* exact: the paper's temporal-decay similarity is
/// computed per candidate in `f64` and ranked with the same tie-breaks
/// regardless of backend. The backend only decides which entries become
/// candidates — [`Exact`](RetrievalBackend::Exact) considers everything,
/// the ANN tiers consider what their structure surfaces. At saturation
/// (`ef_search`/`nprobe` at or past the structure size) the ANN
/// candidate set provably covers every entry, and answers are
/// byte-identical to `Exact` (property-tested).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum RetrievalBackend {
    /// Bound-pruned exact scan over the bucketed cells (the default).
    #[default]
    Exact,
    /// Inverted-file candidates: probe the `nprobe` nearest of `ncells`
    /// k-means cells, exact re-rank of their contents.
    Ivf {
        /// Quantizer cells built from the first insert batch.
        ncells: usize,
        /// Cells probed per query (`>= ncells` saturates to full recall).
        nprobe: usize,
    },
    /// Seeded deterministic HNSW graph candidates, exact re-rank.
    Hnsw {
        /// Max neighbors per node above layer 0 (layer 0 allows `2m`).
        m: usize,
        /// Insertion beam width.
        ef_construction: usize,
        /// Query beam width (`>= len` saturates to full recall).
        ef_search: usize,
    },
}

impl RetrievalBackend {
    /// An HNSW backend with the embed crate's default graph parameters.
    pub fn hnsw() -> Self {
        let d = HnswConfig::default();
        RetrievalBackend::Hnsw {
            m: d.m,
            ef_construction: d.ef_construction,
            ef_search: d.ef_search,
        }
    }

    /// An IVF backend with moderate defaults.
    pub fn ivf() -> Self {
        RetrievalBackend::Ivf {
            ncells: 64,
            nprobe: 8,
        }
    }
}

/// Retrieval hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetrievalConfig {
    /// Demonstrations per prompt.
    pub k: usize,
    /// Temporal decay rate per day.
    pub alpha: f64,
    /// Candidate-generation backend (see [`RetrievalBackend`]). Only
    /// online snapshots honor it — the frozen batch index is a plain
    /// exact scan — and a snapshot whose index was built without the
    /// requested ANN structure falls back to the exact scan.
    pub backend: RetrievalBackend,
}

impl Default for RetrievalConfig {
    fn default() -> Self {
        RetrievalConfig {
            k: 5,
            alpha: 0.3,
            backend: RetrievalBackend::Exact,
        }
    }
}

/// One indexed historical incident.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistoricalEntry {
    /// Caller-assigned id (index into the training set).
    pub id: usize,
    /// Root-cause category label.
    pub category: String,
    /// Summarized diagnostic information (prompt demonstration text).
    pub summary: String,
    /// When the incident occurred.
    pub at: SimTime,
    /// Embedding of the incident's (raw) diagnostic information.
    pub embedding: Vec<f32>,
}

/// A retrieved neighbor with its similarity.
#[derive(Debug, Clone, PartialEq)]
pub struct Neighbor<'a> {
    /// The matched historical entry.
    pub entry: &'a HistoricalEntry,
    /// Similarity per the paper's formula.
    pub similarity: f64,
}

/// The index of historical incidents.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct HistoricalIndex {
    entries: Vec<HistoricalEntry>,
}

/// The paper's similarity formula.
pub fn similarity(distance: f64, delta_days: f64, alpha: f64) -> f64 {
    (1.0 / (1.0 + distance)) * (-alpha * delta_days.abs()).exp()
}

/// 64-bit FNV-1a hash of a byte string — the stable hash behind shard
/// routing (and the serving plane's content-hash memo caches).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The shard a category routes to under `shards`-way partitioning.
///
/// Category-keyed routing is what makes the cross-shard merge exact
/// cheaply: every entry of a category lives in exactly one shard, so a
/// shard's per-category best is already the *global* per-category best,
/// and the merge only has to rank whole categories.
pub fn shard_for_category(category: &str, shards: usize) -> usize {
    if shards <= 1 {
        0
    } else {
        (fnv1a(category.as_bytes()) % shards as u64) as usize
    }
}

fn euclidean(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = (*x - *y) as f64;
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

impl HistoricalIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        HistoricalIndex::default()
    }

    /// Adds a historical incident.
    pub fn add(&mut self, entry: HistoricalEntry) {
        self.entries.push(entry);
    }

    /// Number of indexed incidents.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries.
    pub fn entries(&self) -> &[HistoricalEntry] {
        &self.entries
    }

    /// Retrieves the top-`k` most similar incidents **from distinct
    /// categories** (paper §4.2.2: "we select the top K incidents from
    /// different categories as demonstrations").
    pub fn top_k_diverse(
        &self,
        query_embedding: &[f32],
        query_time: SimTime,
        config: &RetrievalConfig,
    ) -> Vec<Neighbor<'_>> {
        let scored = self.entries.iter().enumerate().map(|(i, e)| {
            let dist = euclidean(query_embedding, &e.embedding);
            let dt = e.at.abs_diff(query_time).as_days_f64();
            (i, e, similarity(dist, dt, config.alpha))
        });
        diverse_select(scored.collect(), config.k)
    }
}

/// The greedy distinct-category selection both index implementations
/// share: stable-sort all `(position, entry, similarity)` candidates by
/// similarity (descending) and keep the first entry of each new category
/// until `k` categories are chosen.
fn diverse_select(mut scored: Vec<(usize, &HistoricalEntry, f64)>, k: usize) -> Vec<Neighbor<'_>> {
    // total_cmp instead of partial_cmp: a NaN similarity (possible
    // from a degenerate zero embedding) must not panic the pipeline;
    // it gets a deterministic position instead.
    scored.sort_by(|a, b| b.2.total_cmp(&a.2));
    let mut seen_categories = std::collections::BTreeSet::new();
    let mut out = Vec::with_capacity(k);
    for (_, entry, sim) in scored {
        if seen_categories.insert(entry.category.as_str()) {
            out.push(Neighbor {
                entry,
                similarity: sim,
            });
            if out.len() == k {
                break;
            }
        }
    }
    out
}

/// Read access to a historical-incident store for the retrieval stage.
///
/// The batch pipeline queries its frozen [`HistoricalIndex`]; the online
/// serving engine queries [`HistorySnapshot`]s of a growing
/// [`OnlineHistoricalIndex`]. Both return identical answers on the same
/// visible entries (asserted by property tests), so a prediction is a
/// pure function of the view contents.
pub trait HistoryView {
    /// Top-`k` distinct-category neighbors of `query_embedding` at
    /// `query_time` — the contract of [`HistoricalIndex::top_k_diverse`].
    fn top_k_diverse(
        &self,
        query_embedding: &[f32],
        query_time: SimTime,
        config: &RetrievalConfig,
    ) -> Vec<Neighbor<'_>>;

    /// Number of entries in the view (for online views: published,
    /// before any per-query visibility filtering).
    fn len(&self) -> usize;

    /// True if the view holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl HistoryView for HistoricalIndex {
    fn top_k_diverse(
        &self,
        query_embedding: &[f32],
        query_time: SimTime,
        config: &RetrievalConfig,
    ) -> Vec<Neighbor<'_>> {
        HistoricalIndex::top_k_diverse(self, query_embedding, query_time, config)
    }

    fn len(&self) -> usize {
        HistoricalIndex::len(self)
    }
}

/// Entries per copy-on-write chunk in [`OnlineHistoricalIndex`]. Chunking
/// keeps a snapshot at `O(n / CHUNK)` `Arc` clones and an append at one
/// `O(CHUNK)` copy worst case, instead of `O(n)` for a flat vector.
const ENTRY_CHUNK: usize = 256;

/// One stored entry plus the virtual instant it became retrievable —
/// the resolution time for streamed incidents ([`SimTime::EPOCH`] for
/// warm-start history, which is visible to every query).
#[derive(Debug, Clone)]
struct OnlineEntry {
    entry: HistoricalEntry,
    visible_from: SimTime,
    /// Global insertion sequence number — the retrieval tie-break. For a
    /// standalone index this equals the local position; under
    /// [`ShardedHistoricalIndex`] it is allocated by the router, so
    /// cross-shard ties resolve exactly as a single index would.
    global_seq: u64,
}

/// Append-only chunked entry store with cheap snapshots.
#[derive(Debug, Clone, Default)]
struct EntryChunks {
    chunks: Vec<Arc<Vec<OnlineEntry>>>,
    len: usize,
}

impl EntryChunks {
    fn push(&mut self, item: OnlineEntry) {
        if self.len.is_multiple_of(ENTRY_CHUNK) {
            self.chunks.push(Arc::new(Vec::with_capacity(ENTRY_CHUNK)));
        }
        let last = self.chunks.last_mut().expect("chunk just ensured");
        Arc::make_mut(last).push(item);
        self.len += 1;
    }

    fn get(&self, i: usize) -> &OnlineEntry {
        &self.chunks[i / ENTRY_CHUNK][i % ENTRY_CHUNK]
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// Fixed seed of every online HNSW graph. A constant (rather than
/// per-shard state) keeps the graph a pure function of the insert
/// stream, so checkpoint restore and worker-count changes cannot
/// perturb candidate generation.
const ANN_SEED: u64 = 0x0a2a_c0de;

/// Inserts staged into an online IVF tier before its quantizer is
/// trained, as a multiple of `ncells`.
const IVF_TRAIN_FACTOR: usize = 8;

/// An IVF tier that grows online: inserts are staged until
/// `ncells * IVF_TRAIN_FACTOR` arrive, the quantizer is k-means-trained
/// on that prefix once, and every later insert routes to its nearest
/// frozen centroid. Before training there is no structure to probe, so
/// [`candidates`](IvfOnline::candidates) reports `None` and the caller
/// scans exactly — trivially full recall.
#[derive(Debug, Clone)]
struct IvfOnline {
    ncells: usize,
    built: Option<IvfIndex>,
    pending: Vec<(u64, Vec<f32>)>,
}

impl IvfOnline {
    fn new(ncells: usize) -> Self {
        IvfOnline {
            ncells: ncells.max(1),
            built: None,
            pending: Vec::new(),
        }
    }

    fn insert(&mut self, id: u64, vector: Vec<f32>) {
        if let Some(ivf) = &mut self.built {
            ivf.insert(id, vector);
            return;
        }
        self.pending.push((id, vector));
        if self.pending.len() >= self.ncells * IVF_TRAIN_FACTOR {
            self.built = Some(IvfIndex::build(
                &self.pending,
                self.ncells,
                self.ncells,
                ANN_SEED,
            ));
            self.pending.clear();
        }
    }

    /// Candidate ids for `query`, or `None` while untrained (caller
    /// falls back to the exact scan over everything).
    fn candidates(&self, query: &[f32], nprobe: usize) -> Option<Vec<u64>> {
        self.built.as_ref().map(|ivf| ivf.candidates(query, nprobe))
    }

    fn stats(&self) -> IndexStats {
        match &self.built {
            Some(ivf) => ivf.stats(),
            None => {
                let dim = self.pending.first().map_or(0, |(_, v)| v.len());
                IndexStats {
                    vectors: self.pending.len(),
                    dim,
                    cells: 0,
                    layers: 0,
                    edges: 0,
                    bytes: self.pending.len() * (dim * 4 + 8 + std::mem::size_of::<Vec<f32>>()),
                }
            }
        }
    }
}

/// The ANN structure an online index maintains next to its exact
/// bucketed cells, when a non-[`Exact`](RetrievalBackend::Exact) backend
/// was configured. Ids are the index's *local* entry positions.
#[derive(Debug, Clone)]
enum AnnPlane {
    Hnsw(HnswIndex),
    Ivf(IvfOnline),
}

impl AnnPlane {
    fn for_backend(backend: RetrievalBackend) -> Option<AnnPlane> {
        match backend {
            RetrievalBackend::Exact => None,
            RetrievalBackend::Hnsw {
                m,
                ef_construction,
                ef_search,
            } => Some(AnnPlane::Hnsw(HnswIndex::new(HnswConfig {
                m,
                ef_construction,
                ef_search,
                seed: ANN_SEED,
            }))),
            RetrievalBackend::Ivf { ncells, .. } => Some(AnnPlane::Ivf(IvfOnline::new(ncells))),
        }
    }

    fn insert(&mut self, local: u64, vector: Vec<f32>) {
        match self {
            AnnPlane::Hnsw(h) => h.add(local, vector),
            AnnPlane::Ivf(iv) => iv.insert(local, vector),
        }
    }

    /// Candidate local ids under the query's backend parameters, or
    /// `None` when the structure kind doesn't match the request (or the
    /// request is `Exact`): the caller then uses the exact scan.
    fn candidates(&self, query: &[f32], backend: RetrievalBackend) -> Option<Vec<u64>> {
        match (self, backend) {
            (AnnPlane::Hnsw(h), RetrievalBackend::Hnsw { ef_search, .. }) => {
                Some(h.candidates(query, ef_search))
            }
            (AnnPlane::Ivf(iv), RetrievalBackend::Ivf { nprobe, .. }) => {
                iv.candidates(query, nprobe)
            }
            _ => None,
        }
    }

    fn stats(&self) -> IndexStats {
        match self {
            AnnPlane::Hnsw(h) => h.stats(),
            AnnPlane::Ivf(iv) => iv.stats(),
        }
    }
}

/// An incrementally growing historical index with epoch-snapshotted
/// read views.
///
/// The batch pipeline builds its index once; an on-call deployment
/// cannot, because the paper's recurrence structure (93.8% of
/// recurrences within 20 days, Figure 2) means the most valuable
/// retrieval candidate for an incoming incident is usually one resolved
/// *hours* ago. This index accepts [`insert`]s as incidents resolve and
/// [`publish`]es epochs; concurrent readers take [`snapshot`]s and
/// query them lock-free. Spatially it delegates to
/// [`rcacopilot_embed::EpochIndex`] (bucketed cells, online growth),
/// and queries prune cells whose spatial bound cannot reach the current
/// `k`-th distinct-category similarity — exact, because the temporal
/// decay factor never exceeds 1.
///
/// [`insert`]: OnlineHistoricalIndex::insert
/// [`publish`]: OnlineHistoricalIndex::publish
/// [`snapshot`]: OnlineHistoricalIndex::snapshot
#[derive(Debug)]
pub struct OnlineHistoricalIndex {
    vectors: EpochIndex,
    /// ANN candidate tier next to the exact cells (`None` for
    /// [`RetrievalBackend::Exact`]); working side, published as an
    /// `Arc` clone at each epoch like the entry chunks.
    ann: Option<AnnPlane>,
    ann_published: Option<Arc<AnnPlane>>,
    backend: RetrievalBackend,
    entries: EntryChunks,
    published: EntryChunks,
    /// Sealed epochs between spatial compactions (0 = never compact).
    compact_every: usize,
    epochs_since_compaction: usize,
    compactions: u64,
}

impl Default for OnlineHistoricalIndex {
    fn default() -> Self {
        OnlineHistoricalIndex::new(64)
    }
}

impl OnlineHistoricalIndex {
    /// Creates an empty exact-backend index with the given spatial
    /// cell-split threshold.
    pub fn new(max_cell: usize) -> Self {
        OnlineHistoricalIndex::with_backend(max_cell, RetrievalBackend::Exact)
    }

    /// Creates an empty index that additionally maintains the given
    /// backend's ANN candidate structure. The exact bucketed cells are
    /// always kept — they are the scoring backbone, the cross-shard
    /// bound source, and the fallback when a query's config asks for a
    /// different backend kind.
    pub fn with_backend(max_cell: usize, backend: RetrievalBackend) -> Self {
        OnlineHistoricalIndex {
            vectors: EpochIndex::new(max_cell),
            ann: AnnPlane::for_backend(backend),
            ann_published: None,
            backend,
            entries: EntryChunks::default(),
            published: EntryChunks::default(),
            compact_every: 0,
            epochs_since_compaction: 0,
            compactions: 0,
        }
    }

    /// Warm-starts from existing history (e.g. a trained pipeline's
    /// index); every seeded entry is visible to all queries. The first
    /// epoch is published immediately.
    pub fn warm(entries: &[HistoricalEntry], max_cell: usize) -> Self {
        OnlineHistoricalIndex::warm_with(entries, max_cell, RetrievalBackend::Exact)
    }

    /// [`warm`](OnlineHistoricalIndex::warm) with an ANN backend.
    pub fn warm_with(
        entries: &[HistoricalEntry],
        max_cell: usize,
        backend: RetrievalBackend,
    ) -> Self {
        let mut idx = OnlineHistoricalIndex::with_backend(max_cell, backend);
        for e in entries {
            idx.insert(e.clone(), SimTime::EPOCH);
        }
        idx.publish();
        idx
    }

    /// The backend this index maintains a candidate structure for.
    pub fn backend(&self) -> RetrievalBackend {
        self.backend
    }

    /// Footprint report: the exact cells plus the ANN structure if one
    /// is maintained (both are resident).
    pub fn index_stats(&self) -> IndexStats {
        let mut stats = self.vectors.snapshot().stats();
        if let Some(ann) = &self.ann {
            stats.merge(&ann.stats());
        }
        stats
    }

    /// Appends a resolved incident. It reaches readers at the next
    /// [`publish`](OnlineHistoricalIndex::publish), and from then on
    /// only for queries at or after `visible_from` (its resolution
    /// instant; pass [`SimTime::EPOCH`] for always-visible history).
    pub fn insert(&mut self, entry: HistoricalEntry, visible_from: SimTime) {
        let seq = self.entries.len() as u64;
        self.insert_at_seq(entry, visible_from, seq);
    }

    /// [`insert`](OnlineHistoricalIndex::insert) with an explicit global
    /// sequence number for the retrieval tie-break — the hook
    /// [`ShardedHistoricalIndex`] routes through so entries keep one
    /// global insertion order across shards. `global_seq` must be
    /// strictly increasing across calls on the same index.
    pub fn insert_at_seq(
        &mut self,
        entry: HistoricalEntry,
        visible_from: SimTime,
        global_seq: u64,
    ) {
        let local = self.entries.len() as u64;
        self.vectors
            .add_at(local, entry.embedding.clone(), entry.at.as_secs());
        if let Some(ann) = &mut self.ann {
            ann.insert(local, entry.embedding.clone());
        }
        self.entries.push(OnlineEntry {
            entry,
            visible_from,
            global_seq,
        });
    }

    /// Enables epoch compaction: after every `every_epochs` sealed
    /// epochs, the spatial index is rebuilt into fresh, tight cells
    /// (`0` disables, the default). Compaction is transparent — query
    /// answers are byte-identical before and after (property-tested
    /// below), because retrieval over the bucketed cells is exact with
    /// insertion-sequence tie-breaks independent of cell layout.
    pub fn set_compaction_interval(&mut self, every_epochs: usize) {
        self.compact_every = every_epochs;
    }

    /// Number of compactions performed so far.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// The spatial cell-split threshold.
    pub fn max_cell(&self) -> usize {
        self.vectors.max_cell()
    }

    /// Number of the currently published epoch (0 = nothing published).
    pub fn epoch(&self) -> u64 {
        self.vectors.epoch()
    }

    /// Overrides the epoch counter (checkpoint restore continuity).
    pub fn set_epoch(&mut self, epoch: u64) {
        self.vectors.set_epoch(epoch);
    }

    /// Seals the current contents into a new published epoch and returns
    /// its number. Past the configured compaction interval, the sealed
    /// epochs are first folded into a freshly compacted spatial index.
    pub fn publish(&mut self) -> u64 {
        self.epochs_since_compaction += 1;
        if self.compact_every > 0 && self.epochs_since_compaction >= self.compact_every {
            self.vectors.compact();
            self.compactions += 1;
            self.epochs_since_compaction = 0;
        }
        let epoch = self.vectors.publish();
        self.published = self.entries.clone();
        // Cloning the ANN plane is O(chunks)/O(cells) Arc bumps — the
        // same copy-on-write contract as the entry chunks above.
        self.ann_published = self.ann.as_ref().map(|a| Arc::new(a.clone()));
        epoch
    }

    /// Entries inserted so far (published or not).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing was inserted.
    pub fn is_empty(&self) -> bool {
        self.entries.len() == 0
    }

    /// An immutable view of the latest published epoch. Costs
    /// `O(cells + n/256)` `Arc` clones; safe to hand to another thread.
    pub fn snapshot(&self) -> HistorySnapshot {
        HistorySnapshot {
            index: self.vectors.snapshot(),
            ann: self.ann_published.clone(),
            entries: self.published.clone(),
        }
    }

    /// Serializes the index state — every inserted entry with its
    /// visibility instant, in insertion order — for the serving plane's
    /// write-ahead checkpoint. [`restore`](OnlineHistoricalIndex::restore)
    /// rebuilds an index answering every query identically: insertion
    /// order (the retrieval tie-break) is preserved, and epoch-batch
    /// boundaries are immaterial because visibility is filtered per query
    /// by `visible_from`, not by epoch membership.
    pub fn checkpoint(&self) -> EpochCheckpoint {
        EpochCheckpoint {
            max_cell: self.max_cell(),
            epoch: self.epoch(),
            entries: (0..self.entries.len())
                .map(|i| {
                    let stored = self.entries.get(i);
                    CheckpointEntry {
                        entry: stored.entry.clone(),
                        visible_from: stored.visible_from,
                    }
                })
                .collect(),
        }
    }

    /// Every stored entry with its global sequence number — the raw
    /// material [`ShardedHistoricalIndex::checkpoint`] merges back into
    /// one global-order list.
    fn seq_entries(&self) -> Vec<(u64, CheckpointEntry)> {
        (0..self.entries.len())
            .map(|i| {
                let stored = self.entries.get(i);
                (
                    stored.global_seq,
                    CheckpointEntry {
                        entry: stored.entry.clone(),
                        visible_from: stored.visible_from,
                    },
                )
            })
            .collect()
    }

    /// Rebuilds an index from a [`checkpoint`](OnlineHistoricalIndex::checkpoint):
    /// entries are re-inserted in their original order and published in
    /// one epoch, and the epoch counter resumes from the checkpoint.
    pub fn restore(checkpoint: &EpochCheckpoint) -> Self {
        OnlineHistoricalIndex::restore_with(checkpoint, RetrievalBackend::Exact)
    }

    /// [`restore`](OnlineHistoricalIndex::restore) with an ANN backend.
    /// The ANN structure is rebuilt by re-inserting in the checkpoint's
    /// order, and since the graph/quantizer is a pure function of the
    /// insert stream and a fixed seed, the restored candidate sets are
    /// identical to the crashed index's.
    pub fn restore_with(checkpoint: &EpochCheckpoint, backend: RetrievalBackend) -> Self {
        let mut idx = OnlineHistoricalIndex::with_backend(checkpoint.max_cell.max(1), backend);
        for ce in &checkpoint.entries {
            idx.insert(ce.entry.clone(), ce.visible_from);
        }
        idx.publish();
        idx.set_epoch(checkpoint.epoch);
        idx
    }
}

/// One [`OnlineHistoricalIndex`] entry as journaled by the serving
/// plane's write-ahead log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointEntry {
    /// The stored historical entry.
    pub entry: HistoricalEntry,
    /// The virtual instant it became retrievable.
    pub visible_from: SimTime,
}

/// A serializable snapshot of an [`OnlineHistoricalIndex`]'s full state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochCheckpoint {
    /// Spatial cell-split threshold to rebuild with.
    pub max_cell: usize,
    /// Published epoch number at checkpoint time.
    pub epoch: u64,
    /// Every inserted entry, in insertion order.
    pub entries: Vec<CheckpointEntry>,
}

/// A sealed read view of one [`OnlineHistoricalIndex`] epoch.
#[derive(Debug, Clone)]
pub struct HistorySnapshot {
    index: Arc<BucketedIndex>,
    /// Published ANN candidate structure, if the index maintains one.
    ann: Option<Arc<AnnPlane>>,
    entries: EntryChunks,
}

/// The retrieval ranking's "strictly better" relation on
/// `(similarity, global_seq)`: higher similarity wins, earlier global
/// insertion breaks ties — shared by the exact scan and the ANN re-rank
/// so both produce bit-identical per-category representatives.
fn better_rep(a: (f64, u64), b: (f64, u64)) -> bool {
    match a.0.total_cmp(&b.0) {
        std::cmp::Ordering::Greater => true,
        std::cmp::Ordering::Less => false,
        std::cmp::Ordering::Equal => a.1 < b.1,
    }
}

/// Final ranking of per-category best `(similarity, global_seq, local)`
/// representatives: `(similarity desc, global_seq asc)`, cut to `k`.
fn rank_reps(
    best: std::collections::BTreeMap<&str, (f64, u64, usize)>,
    k: usize,
) -> Vec<(u64, f64, usize)> {
    let mut reps: Vec<(u64, f64, usize)> =
        best.into_values().map(|(s, seq, i)| (seq, s, i)).collect();
    reps.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    reps.truncate(k);
    reps
}

impl HistorySnapshot {
    /// Entries in this epoch (before per-query visibility filtering).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the epoch holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.len() == 0
    }

    /// Entries visible to a query at `at`.
    pub fn visible_len(&self, at: SimTime) -> usize {
        (0..self.entries.len())
            .filter(|&i| self.entries.get(i).visible_from <= at)
            .count()
    }

    /// Safe upper bound on the temporal-decay factor of any entry in a
    /// cell whose nearest timestamp is `min_dt_secs` away. Exact-safe:
    /// the integer Δt is converted through the *same* seconds→days path
    /// the per-entry similarity uses, and every step (u64→f64, ×alpha,
    /// exp) is monotone, so the bound can never round below a real
    /// entry's factor.
    fn decay_bound(min_dt_secs: u64, alpha: f64) -> f64 {
        (-alpha * SimDuration::from_secs(min_dt_secs).as_days_f64()).exp()
    }

    /// Best similarity any entry of this snapshot could reach for a
    /// query at `query_time` — the max over cells of the combined
    /// spatial × temporal bound. `f64::NEG_INFINITY` when empty. The
    /// cross-shard merge uses this to visit shards best-first and stop
    /// early.
    pub fn best_bound(&self, query_embedding: &[f32], query_time: SimTime, alpha: f64) -> f64 {
        let qsecs = query_time.as_secs();
        self.index
            .prune_scan(query_embedding)
            .iter()
            .map(|scan| {
                let spatial = 1.0 / (1.0 + scan.lower_bound);
                spatial * Self::decay_bound(scan.min_abs_dt_secs(qsecs), alpha)
            })
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Bound-pruned exact retrieval of this snapshot's per-category best
    /// entries as `(global_seq, similarity, local index)`, at most
    /// `config.k` of them, ranked by `(similarity desc, global_seq
    /// asc)`.
    ///
    /// Cells are visited in spatial-lower-bound order. Once `k` category
    /// representatives exist, a cell is *skipped* when even its combined
    /// spatial × temporal bound cannot beat the current `k`-th
    /// similarity, and the scan *stops* when the spatial bound alone
    /// cannot (the spatial bound is monotone in scan order; the combined
    /// bound is not, so it only ever skips). Tie-breaking follows the
    /// linear scan's stable sort: higher similarity first, then earlier
    /// global insertion.
    fn diverse_reps(
        &self,
        query_embedding: &[f32],
        query_time: SimTime,
        config: &RetrievalConfig,
    ) -> Vec<(u64, f64, usize)> {
        debug_assert!(
            query_embedding.iter().all(|x| x.is_finite()),
            "query embedding must be finite"
        );
        // ANN path: the configured structure proposes candidates, the
        // exact similarity re-ranks them. When the candidate set covers
        // every visible entry (saturation), the per-category bests and
        // the final ranking are computed by the very same code over the
        // very same values as the exact scan — byte-identical answers.
        if let Some(cands) = self
            .ann
            .as_deref()
            .and_then(|a| a.candidates(query_embedding, config.backend))
        {
            return self.rerank_candidates(&cands, query_embedding, query_time, config);
        }
        let qsecs = query_time.as_secs();
        // Best (similarity, global seq, local index) per category.
        let mut best: std::collections::BTreeMap<&str, (f64, u64, usize)> =
            std::collections::BTreeMap::new();
        for scan in self.index.prune_scan(query_embedding) {
            if best.len() >= config.k {
                // k-th best category representative so far.
                let mut sims: Vec<f64> = best.values().map(|&(s, _, _)| s).collect();
                sims.sort_by(|a, b| b.total_cmp(a));
                let kth = sims[config.k - 1];
                let spatial = 1.0 / (1.0 + scan.lower_bound);
                // The spatial bound is monotone across the ordered scan:
                // once it falls below the k-th similarity (even through a
                // zero time gap), no later cell can contribute.
                if spatial.total_cmp(&kth) == std::cmp::Ordering::Less {
                    break;
                }
                // The temporal-decay factor is not monotone in scan
                // order, so a cell disqualified by age alone is skipped,
                // not a stopping point. Strict comparison: a bound that
                // *ties* the k-th could still hide an entry winning on
                // insertion order.
                let upper = spatial * Self::decay_bound(scan.min_abs_dt_secs(qsecs), config.alpha);
                if upper.total_cmp(&kth) == std::cmp::Ordering::Less {
                    continue;
                }
            }
            for (local, _) in scan.items() {
                let i = local as usize;
                let stored = self.entries.get(i);
                if stored.visible_from > query_time {
                    continue;
                }
                let dist = euclidean(query_embedding, &stored.entry.embedding);
                let dt = stored.entry.at.abs_diff(query_time).as_days_f64();
                let sim = similarity(dist, dt, config.alpha);
                let cand = (sim, stored.global_seq, i);
                match best.entry(stored.entry.category.as_str()) {
                    std::collections::btree_map::Entry::Vacant(v) => {
                        v.insert(cand);
                    }
                    std::collections::btree_map::Entry::Occupied(mut o) => {
                        let cur = *o.get();
                        if better_rep((cand.0, cand.1), (cur.0, cur.1)) {
                            o.insert(cand);
                        }
                    }
                }
            }
        }
        rank_reps(best, config.k)
    }

    /// Exact temporal-decay re-rank of an ANN candidate set.
    ///
    /// `cands` holds local entry indexes proposed by the candidate
    /// structure. Each visible candidate is scored with the *same* f64
    /// similarity as the exact scan, reduced to per-category bests via
    /// [`better_rep`], and ranked via [`rank_reps`] — so the only way
    /// this can differ from the exact path is by candidates the ANN
    /// structure failed to propose.
    fn rerank_candidates(
        &self,
        cands: &[u64],
        query_embedding: &[f32],
        query_time: SimTime,
        config: &RetrievalConfig,
    ) -> Vec<(u64, f64, usize)> {
        let mut best: std::collections::BTreeMap<&str, (f64, u64, usize)> =
            std::collections::BTreeMap::new();
        for &local in cands {
            let i = local as usize;
            if i >= self.entries.len() {
                // A published graph can briefly run ahead of the sealed
                // entry chunks between publishes; ignore unknown ids.
                continue;
            }
            let stored = self.entries.get(i);
            if stored.visible_from > query_time {
                continue;
            }
            let dist = euclidean(query_embedding, &stored.entry.embedding);
            let dt = stored.entry.at.abs_diff(query_time).as_days_f64();
            let sim = similarity(dist, dt, config.alpha);
            let cand = (sim, stored.global_seq, i);
            match best.entry(stored.entry.category.as_str()) {
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(cand);
                }
                std::collections::btree_map::Entry::Occupied(mut o) => {
                    let cur = *o.get();
                    if better_rep((cand.0, cand.1), (cur.0, cur.1)) {
                        o.insert(cand);
                    }
                }
            }
        }
        rank_reps(best, config.k)
    }
}

impl HistoryView for HistorySnapshot {
    /// Bound-pruned exact retrieval (see `HistorySnapshot::diverse_reps`,
    /// private): the answer is
    /// byte-identical to [`HistoricalIndex::top_k_diverse`] over the
    /// same visible entries.
    fn top_k_diverse(
        &self,
        query_embedding: &[f32],
        query_time: SimTime,
        config: &RetrievalConfig,
    ) -> Vec<Neighbor<'_>> {
        self.diverse_reps(query_embedding, query_time, config)
            .into_iter()
            .map(|(_, sim, i)| Neighbor {
                entry: &self.entries.get(i).entry,
                similarity: sim,
            })
            .collect()
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// A category-sharded [`OnlineHistoricalIndex`]: the serving plane's
/// retrieval index split into `N` independently locked shards.
///
/// Routing is by [`shard_for_category`], so every entry of a category
/// lives in exactly one shard and each shard's per-category best is
/// already globally correct. Three invariants keep query answers — and
/// therefore the serving engine's prediction log — **byte-identical** to
/// one unsharded index, for any shard count:
///
/// 1. **Global sequence numbers.** The router allocates one monotonically
///    increasing `global_seq` per insert; cross-category similarity ties
///    resolve on it exactly as a single index's insertion order would.
/// 2. **Exact per-shard retrieval.** Each shard answers with its
///    bound-pruned exact per-category representatives
///    (`HistorySnapshot::diverse_reps`, private).
/// 3. **Bounded merge.** Shards are visited in descending
///    [`HistorySnapshot::best_bound`] order (spatial × temporal-decay
///    upper bound); once `k` representatives are held and the next
///    shard's bound is *strictly* below the `k`-th similarity, the
///    remaining shards are skipped — a work win, not just a lock split.
///
/// All methods take `&self`: shard locks are internal, and a lock
/// poisoned by a dying worker thread is recovered (and counted) rather
/// than propagated, matching the serving plane's supervision policy.
#[derive(Debug)]
pub struct ShardedHistoricalIndex {
    shards: Vec<Mutex<OnlineHistoricalIndex>>,
    next_seq: AtomicU64,
    poison_recoveries: AtomicU64,
}

impl ShardedHistoricalIndex {
    /// An empty index with `shards` shards (clamped to ≥ 1), each with
    /// the given spatial cell-split threshold.
    pub fn new(shards: usize, max_cell: usize) -> Self {
        Self::new_with(shards, max_cell, RetrievalBackend::Exact)
    }

    /// An empty index whose shards each maintain the candidate structure
    /// for `backend` (see [`OnlineHistoricalIndex::with_backend`]). Each
    /// shard builds its *own* ANN graph over its own entries; the
    /// bound-ordered cross-shard merge is unchanged because
    /// [`HistorySnapshot::best_bound`] is still computed from the exact
    /// bucketed cells.
    pub fn new_with(shards: usize, max_cell: usize, backend: RetrievalBackend) -> Self {
        ShardedHistoricalIndex {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(OnlineHistoricalIndex::with_backend(max_cell, backend)))
                .collect(),
            next_seq: AtomicU64::new(0),
            poison_recoveries: AtomicU64::new(0),
        }
    }

    /// Warm-starts from existing history in slice order (matching
    /// [`OnlineHistoricalIndex::warm`]) and publishes every shard.
    pub fn warm(entries: &[HistoricalEntry], shards: usize, max_cell: usize) -> Self {
        Self::warm_with(entries, shards, max_cell, RetrievalBackend::Exact)
    }

    /// [`warm`](Self::warm) with a retrieval backend for every shard.
    pub fn warm_with(
        entries: &[HistoricalEntry],
        shards: usize,
        max_cell: usize,
        backend: RetrievalBackend,
    ) -> Self {
        let idx = ShardedHistoricalIndex::new_with(shards, max_cell, backend);
        for e in entries {
            idx.insert(e.clone(), SimTime::EPOCH);
        }
        idx.publish_all();
        idx
    }

    /// Aggregated candidate-structure statistics across shards (exact
    /// bucketed cells merged with any ANN graph/quantizer footprint).
    pub fn index_stats(&self) -> IndexStats {
        let mut total = IndexStats::default();
        for s in 0..self.shards.len() {
            total.merge(&self.lock_shard(s).index_stats());
        }
        total
    }

    fn lock_shard(&self, shard: usize) -> MutexGuard<'_, OnlineHistoricalIndex> {
        self.shards[shard].lock().unwrap_or_else(|poisoned| {
            self.poison_recoveries.fetch_add(1, Ordering::Relaxed);
            poisoned.into_inner()
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard `category` routes to.
    pub fn route(&self, category: &str) -> usize {
        shard_for_category(category, self.shards.len())
    }

    /// Appends a resolved incident to its category's shard, allocating
    /// the next global sequence number. Returns the shard it landed in
    /// (whose next [`publish`](ShardedHistoricalIndex::publish) makes it
    /// visible).
    pub fn insert(&self, entry: HistoricalEntry, visible_from: SimTime) -> usize {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let shard = self.route(&entry.category);
        self.lock_shard(shard)
            .insert_at_seq(entry, visible_from, seq);
        shard
    }

    /// Publishes one shard's pending inserts as a new epoch and returns
    /// the shard's epoch number.
    pub fn publish(&self, shard: usize) -> u64 {
        self.lock_shard(shard).publish()
    }

    /// Publishes every shard (warm start / checkpoint restore).
    pub fn publish_all(&self) {
        for s in 0..self.shards.len() {
            self.lock_shard(s).publish();
        }
    }

    /// Sets every shard's epoch-compaction interval
    /// (see [`OnlineHistoricalIndex::set_compaction_interval`]).
    pub fn set_compaction_interval(&self, every_epochs: usize) {
        for s in 0..self.shards.len() {
            self.lock_shard(s).set_compaction_interval(every_epochs);
        }
    }

    /// Total spatial compactions across shards.
    pub fn compactions(&self) -> u64 {
        (0..self.shards.len())
            .map(|s| self.lock_shard(s).compactions())
            .sum()
    }

    /// One shard's published epoch number.
    pub fn epoch(&self, shard: usize) -> u64 {
        self.lock_shard(shard).epoch()
    }

    /// Overrides one shard's epoch counter (journal continuity on
    /// recovery).
    pub fn set_epoch(&self, shard: usize, epoch: u64) {
        self.lock_shard(shard).set_epoch(epoch);
    }

    /// Entries inserted so far across all shards (published or not).
    pub fn len(&self) -> usize {
        (0..self.shards.len())
            .map(|s| self.lock_shard(s).len())
            .sum()
    }

    /// True if nothing was inserted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Poisoned shard locks recovered so far (folded into the engine's
    /// fault counters).
    pub fn poison_recoveries(&self) -> u64 {
        self.poison_recoveries.load(Ordering::Relaxed)
    }

    /// An immutable cross-shard view of each shard's latest published
    /// epoch. Shards are snapshotted one at a time — the serving engine
    /// commits inserts under its own in-order watermark, so per-query
    /// `visible_from` filtering (not snapshot atomicity) is what defines
    /// the visible set.
    pub fn snapshot(&self) -> ShardedHistorySnapshot {
        ShardedHistorySnapshot {
            shards: (0..self.shards.len())
                .map(|s| self.lock_shard(s).snapshot())
                .collect(),
        }
    }

    /// Serializes all shards as one flat entry list in global insertion
    /// order. Storing the *merged* order (rather than per-shard lists)
    /// makes the checkpoint shard-count independent: restoring with a
    /// different `shards` value re-routes deterministically and
    /// reproduces identical retrieval answers.
    pub fn checkpoint(&self) -> ShardedCheckpoint {
        let mut seqd: Vec<(u64, CheckpointEntry)> = Vec::new();
        let mut shard_epochs = Vec::with_capacity(self.shards.len());
        let mut max_cell = 1;
        for s in 0..self.shards.len() {
            let guard = self.lock_shard(s);
            seqd.extend(guard.seq_entries());
            shard_epochs.push(guard.epoch());
            max_cell = guard.max_cell();
        }
        seqd.sort_by_key(|&(seq, _)| seq);
        ShardedCheckpoint {
            max_cell,
            shard_epochs,
            entries: seqd.into_iter().map(|(_, e)| e).collect(),
        }
    }

    /// Rebuilds a sharded index from a checkpoint with `shards` shards
    /// (not necessarily the checkpoint's count): entries are re-inserted
    /// in global order — the deterministic router reassigns shards and
    /// sequence numbers — and every shard is published once. Per-shard
    /// epoch counters are restored positionally where the shard exists;
    /// epoch numbering is journal bookkeeping and never affects query
    /// answers.
    pub fn restore(checkpoint: &ShardedCheckpoint, shards: usize) -> Self {
        Self::restore_with(checkpoint, shards, RetrievalBackend::Exact)
    }

    /// [`restore`](Self::restore) with a retrieval backend for every
    /// shard. The backend is a parameter (not checkpoint state): the
    /// seeded ANN graph is a pure function of the re-inserted entry
    /// stream, so the owning engine re-applies its configured backend
    /// and reproduces the same graph.
    pub fn restore_with(
        checkpoint: &ShardedCheckpoint,
        shards: usize,
        backend: RetrievalBackend,
    ) -> Self {
        let idx = ShardedHistoricalIndex::new_with(shards, checkpoint.max_cell.max(1), backend);
        for ce in &checkpoint.entries {
            idx.insert(ce.entry.clone(), ce.visible_from);
        }
        idx.publish_all();
        for (s, &epoch) in checkpoint.shard_epochs.iter().enumerate() {
            if s < idx.shard_count() && epoch > idx.epoch(s) {
                idx.set_epoch(s, epoch);
            }
        }
        idx
    }
}

/// A serializable snapshot of a [`ShardedHistoricalIndex`]'s full state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardedCheckpoint {
    /// Spatial cell-split threshold to rebuild with.
    pub max_cell: usize,
    /// Per-shard published epoch numbers at checkpoint time (length =
    /// the checkpointing index's shard count).
    pub shard_epochs: Vec<u64>,
    /// Every inserted entry, in *global* insertion order.
    pub entries: Vec<CheckpointEntry>,
}

/// A sealed cross-shard read view of a [`ShardedHistoricalIndex`].
#[derive(Debug, Clone)]
pub struct ShardedHistorySnapshot {
    shards: Vec<HistorySnapshot>,
}

impl ShardedHistorySnapshot {
    /// Per-shard views (tests and diagnostics).
    pub fn shard_views(&self) -> &[HistorySnapshot] {
        &self.shards
    }

    /// Entries visible to a query at `at`, across shards.
    pub fn visible_len(&self, at: SimTime) -> usize {
        self.shards.iter().map(|s| s.visible_len(at)).sum()
    }
}

impl HistoryView for ShardedHistorySnapshot {
    /// Cross-shard top-`k` distinct-category merge, byte-identical to a
    /// single [`HistorySnapshot`] over the same entries: shards are
    /// visited best-bound-first, each contributes its exact per-category
    /// representatives, and the running top-`k` is re-ranked by
    /// `(similarity desc, global_seq asc)`. Once the next shard's bound
    /// is strictly below the `k`-th similarity, every remaining shard is
    /// skipped (their bounds are no larger).
    fn top_k_diverse(
        &self,
        query_embedding: &[f32],
        query_time: SimTime,
        config: &RetrievalConfig,
    ) -> Vec<Neighbor<'_>> {
        // (shard, bound), best bound first; shard index breaks ties so
        // the visit order — though not the answer — is deterministic.
        let mut order: Vec<(usize, f64)> = self
            .shards
            .iter()
            .enumerate()
            .map(|(s, snap)| {
                (
                    s,
                    snap.best_bound(query_embedding, query_time, config.alpha),
                )
            })
            .collect();
        order.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        // (global_seq, similarity, shard, local index)
        let mut reps: Vec<(u64, f64, usize, usize)> = Vec::new();
        for (s, bound) in order {
            if reps.len() >= config.k {
                let kth = reps[config.k - 1].1;
                if bound.total_cmp(&kth) == std::cmp::Ordering::Less {
                    break;
                }
            }
            reps.extend(
                self.shards[s]
                    .diverse_reps(query_embedding, query_time, config)
                    .into_iter()
                    .map(|(seq, sim, i)| (seq, sim, s, i)),
            );
            // Categories partition across shards, so representatives
            // never collide: rank and cut to k directly.
            reps.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            reps.truncate(config.k);
        }
        reps.into_iter()
            .map(|(_, sim, s, i)| Neighbor {
                entry: &self.shards[s].entries.get(i).entry,
                similarity: sim,
            })
            .collect()
    }

    fn len(&self) -> usize {
        self.shards.iter().map(HistorySnapshot::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: usize, cat: &str, day: u64, emb: Vec<f32>) -> HistoricalEntry {
        HistoricalEntry {
            id,
            category: cat.to_string(),
            summary: format!("summary {id}"),
            at: SimTime::from_days(day),
            embedding: emb,
        }
    }

    #[test]
    fn similarity_formula_matches_paper() {
        // Zero distance, zero time gap: similarity 1.
        assert!((similarity(0.0, 0.0, 0.3) - 1.0).abs() < 1e-12);
        // Distance 1 halves the spatial part.
        assert!((similarity(1.0, 0.0, 0.3) - 0.5).abs() < 1e-12);
        // Ten days at alpha 0.3 decays by e^-3.
        let s = similarity(0.0, 10.0, 0.3);
        assert!((s - (-3.0f64).exp()).abs() < 1e-12);
        // Alpha 0 ignores time.
        assert_eq!(similarity(2.0, 100.0, 0.0), 1.0 / 3.0);
    }

    #[test]
    fn temporal_decay_prefers_recent_incidents() {
        let mut idx = HistoricalIndex::new();
        // Same embedding, different times; category must differ to coexist.
        idx.add(entry(0, "Old", 10, vec![0.0, 0.0]));
        idx.add(entry(1, "New", 99, vec![0.0, 0.0]));
        let cfg = RetrievalConfig {
            k: 2,
            alpha: 0.3,
            ..RetrievalConfig::default()
        };
        let hits = idx.top_k_diverse(&[0.0, 0.0], SimTime::from_days(100), &cfg);
        assert_eq!(hits[0].entry.category, "New");
        assert!(hits[0].similarity > hits[1].similarity);
        // With alpha = 0 the tie is broken by insertion order, not time.
        let cfg0 = RetrievalConfig {
            k: 2,
            alpha: 0.0,
            ..RetrievalConfig::default()
        };
        let hits0 = idx.top_k_diverse(&[0.0, 0.0], SimTime::from_days(100), &cfg0);
        assert!((hits0[0].similarity - hits0[1].similarity).abs() < 1e-12);
    }

    #[test]
    fn diversity_takes_one_per_category() {
        let mut idx = HistoricalIndex::new();
        idx.add(entry(0, "A", 50, vec![0.0]));
        idx.add(entry(1, "A", 50, vec![0.1]));
        idx.add(entry(2, "B", 50, vec![5.0]));
        idx.add(entry(3, "C", 50, vec![9.0]));
        let cfg = RetrievalConfig {
            k: 3,
            alpha: 0.0,
            ..RetrievalConfig::default()
        };
        let hits = idx.top_k_diverse(&[0.0], SimTime::from_days(50), &cfg);
        let cats: Vec<&str> = hits.iter().map(|n| n.entry.category.as_str()).collect();
        assert_eq!(cats, vec!["A", "B", "C"]);
        // The closer "A" entry represents its category.
        assert_eq!(hits[0].entry.id, 0);
    }

    #[test]
    fn k_larger_than_categories_returns_all_categories() {
        let mut idx = HistoricalIndex::new();
        idx.add(entry(0, "A", 1, vec![0.0]));
        idx.add(entry(1, "B", 1, vec![1.0]));
        let cfg = RetrievalConfig {
            k: 10,
            alpha: 0.3,
            ..RetrievalConfig::default()
        };
        let hits = idx.top_k_diverse(&[0.0], SimTime::from_days(1), &cfg);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx = HistoricalIndex::new();
        let hits = idx.top_k_diverse(&[0.0], SimTime::EPOCH, &RetrievalConfig::default());
        assert!(hits.is_empty());
        assert!(idx.is_empty());
    }

    #[test]
    fn online_snapshot_matches_linear_index() {
        let mut linear = HistoricalIndex::new();
        for i in 0..40usize {
            linear.add(entry(
                i,
                &format!("Cat{}", i % 9),
                (i as u64 * 7) % 300,
                vec![(i % 5) as f32, (i % 3) as f32 * 2.0],
            ));
        }
        let online = OnlineHistoricalIndex::warm(linear.entries(), 4);
        let snap = online.snapshot();
        assert_eq!(HistoryView::len(&snap), linear.len());
        let cfg = RetrievalConfig {
            k: 5,
            alpha: 0.3,
            ..RetrievalConfig::default()
        };
        for q in [[0.0f32, 0.0], [3.5, 1.0], [4.0, 6.0]] {
            for day in [0u64, 50, 180, 360] {
                let at = SimTime::from_days(day);
                let a = linear.top_k_diverse(&q, at, &cfg);
                let b = HistoryView::top_k_diverse(&snap, &q, at, &cfg);
                assert_eq!(a, b, "query {q:?} at day {day}");
            }
        }
    }

    #[test]
    fn checkpoint_restore_round_trips_queries_and_epoch() {
        let mut online = OnlineHistoricalIndex::new(4);
        for i in 0..25usize {
            online.insert(
                entry(
                    i,
                    &format!("Cat{}", i % 6),
                    (i as u64 * 11) % 200,
                    vec![(i % 4) as f32, (i % 7) as f32],
                ),
                SimTime::from_days((i as u64 * 3) % 100),
            );
            if i % 5 == 4 {
                online.publish();
            }
        }
        let ckpt = online.checkpoint();
        assert_eq!(ckpt.entries.len(), online.len());
        let restored = OnlineHistoricalIndex::restore(&ckpt);
        assert_eq!(restored.len(), online.len());
        assert_eq!(restored.epoch(), online.epoch());
        let cfg = RetrievalConfig {
            k: 4,
            alpha: 0.3,
            ..RetrievalConfig::default()
        };
        let (a, b) = (online.snapshot(), restored.snapshot());
        for day in [0u64, 40, 90, 300] {
            let at = SimTime::from_days(day);
            assert_eq!(
                HistoryView::top_k_diverse(&a, &[1.0, 2.0], at, &cfg),
                HistoryView::top_k_diverse(&b, &[1.0, 2.0], at, &cfg),
                "restored index must answer identically at day {day}"
            );
            assert_eq!(a.visible_len(at), b.visible_len(at));
        }
        // The checkpoint survives a serde round trip (WAL requirement).
        let json = serde_json::to_string(&ckpt).expect("serializable");
        let back: EpochCheckpoint = serde_json::from_str(&json).expect("parseable");
        assert_eq!(back, ckpt);
    }

    #[test]
    fn compaction_interval_folds_epochs_and_counts() {
        let mut online = OnlineHistoricalIndex::new(2);
        online.set_compaction_interval(3);
        for i in 0..18usize {
            online.insert(
                entry(i, &format!("Cat{}", i % 4), i as u64, vec![i as f32 * 0.5]),
                SimTime::EPOCH,
            );
            online.publish();
        }
        assert_eq!(online.compactions(), 6, "every third publish compacts");
        let snap = online.snapshot();
        assert_eq!(snap.len(), 18);
        let cfg = RetrievalConfig {
            k: 4,
            alpha: 0.0,
            ..RetrievalConfig::default()
        };
        let hits = HistoryView::top_k_diverse(&snap, &[0.0], SimTime::from_days(1), &cfg);
        assert_eq!(hits.len(), 4);
        assert_eq!(hits[0].entry.id, 0);
    }

    #[test]
    fn online_insert_respects_visibility_and_epochs() {
        let mut online = OnlineHistoricalIndex::new(8);
        online.insert(entry(0, "A", 10, vec![0.0]), SimTime::EPOCH);
        // Not yet published: snapshots are empty.
        assert!(online.snapshot().is_empty());
        online.publish();
        let first_epoch = online.snapshot();
        // Resolved on day 50: invisible to queries before that.
        online.insert(entry(1, "B", 50, vec![0.0]), SimTime::from_days(50));
        online.publish();
        assert_eq!(first_epoch.len(), 1, "sealed epoch must not move");
        let snap = online.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap.visible_len(SimTime::from_days(20)), 1);
        assert_eq!(snap.visible_len(SimTime::from_days(60)), 2);
        let cfg = RetrievalConfig {
            k: 2,
            alpha: 0.0,
            ..RetrievalConfig::default()
        };
        let early = HistoryView::top_k_diverse(&snap, &[0.0], SimTime::from_days(20), &cfg);
        assert_eq!(early.len(), 1);
        assert_eq!(early[0].entry.category, "A");
        let late = HistoryView::top_k_diverse(&snap, &[0.0], SimTime::from_days(60), &cfg);
        assert_eq!(late.len(), 2);
    }

    #[test]
    fn shard_router_is_stable_and_category_local() {
        // Same category always lands in the same shard.
        for cat in ["NetworkLatency", "DiskFailure", "AuthOutage", ""] {
            for shards in [1usize, 2, 3, 8] {
                let s = shard_for_category(cat, shards);
                assert!(s < shards);
                assert_eq!(s, shard_for_category(cat, shards), "stable");
            }
            assert_eq!(shard_for_category(cat, 1), 0);
            assert_eq!(shard_for_category(cat, 0), 0, "zero clamps to one shard");
        }
        // FNV-1a reference value ("a" hashes to the known constant).
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn sharded_index_matches_unsharded_queries_and_routing() {
        let mut single = OnlineHistoricalIndex::new(4);
        let sharded = ShardedHistoricalIndex::new(3, 4);
        for i in 0..40usize {
            let e = entry(
                i,
                &format!("Cat{}", i % 7),
                (i as u64 * 13) % 300,
                vec![(i % 5) as f32, (i % 3) as f32],
            );
            let vis = SimTime::from_days((i as u64 * 5) % 150);
            single.insert(e.clone(), vis);
            let s = sharded.insert(e.clone(), vis);
            assert_eq!(
                s,
                sharded.route(&e.category),
                "insert reports the routed shard"
            );
        }
        single.publish();
        sharded.publish_all();
        assert_eq!(sharded.len(), single.len());
        assert_eq!(sharded.shard_count(), 3);
        assert_eq!(sharded.poison_recoveries(), 0);
        let (a, b) = (single.snapshot(), sharded.snapshot());
        assert_eq!(b.shard_views().len(), 3);
        let cfg = RetrievalConfig {
            k: 5,
            alpha: 0.3,
            ..RetrievalConfig::default()
        };
        for day in [0u64, 60, 200, 400] {
            let at = SimTime::from_days(day);
            assert_eq!(a.visible_len(at), b.visible_len(at));
            for q in [[0.0f32, 0.0], [3.0, 1.0], [4.5, 2.0]] {
                assert_eq!(
                    HistoryView::top_k_diverse(&a, &q, at, &cfg),
                    HistoryView::top_k_diverse(&b, &q, at, &cfg),
                    "query {q:?} at day {day}"
                );
            }
        }
    }

    #[test]
    fn sharded_checkpoint_restores_across_shard_counts() {
        let sharded = ShardedHistoricalIndex::new(4, 3);
        for i in 0..30usize {
            sharded.insert(
                entry(
                    i,
                    &format!("Cat{}", i % 5),
                    (i as u64 * 9) % 250,
                    vec![(i % 6) as f32],
                ),
                SimTime::from_days((i as u64 * 2) % 80),
            );
            if i % 6 == 5 {
                sharded.publish_all();
            }
        }
        sharded.publish_all();
        let ckpt = sharded.checkpoint();
        assert_eq!(ckpt.entries.len(), sharded.len());
        assert_eq!(ckpt.shard_epochs.len(), 4);
        // Entries come out in global insertion order.
        for (i, ce) in ckpt.entries.iter().enumerate() {
            assert_eq!(ce.entry.id, i);
        }
        // The checkpoint survives a serde round trip (WAL requirement).
        let json = serde_json::to_string(&ckpt).expect("serializable");
        let back: ShardedCheckpoint = serde_json::from_str(&json).expect("parseable");
        assert_eq!(back, ckpt);
        let cfg = RetrievalConfig {
            k: 4,
            alpha: 0.3,
            ..RetrievalConfig::default()
        };
        let reference = sharded.snapshot();
        // Restore into the same, fewer and more shards: answers identical.
        for target in [1usize, 2, 4, 8] {
            let restored = ShardedHistoricalIndex::restore(&ckpt, target);
            assert_eq!(restored.shard_count(), target);
            assert_eq!(restored.len(), sharded.len());
            let snap = restored.snapshot();
            for day in [0u64, 40, 120, 300] {
                let at = SimTime::from_days(day);
                assert_eq!(
                    HistoryView::top_k_diverse(&reference, &[1.0], at, &cfg),
                    HistoryView::top_k_diverse(&snap, &[1.0], at, &cfg),
                    "restored into {target} shards must answer identically at day {day}"
                );
            }
        }
        // Same-count restore also restores per-shard epoch counters.
        let same = ShardedHistoricalIndex::restore(&ckpt, 4);
        for s in 0..4 {
            assert_eq!(same.epoch(s), sharded.epoch(s), "shard {s} epoch");
        }
    }

    #[test]
    fn sharded_insert_keeps_global_sequence_for_tie_breaks() {
        // Identical embeddings and timestamps across categories: ranking
        // is decided purely by insertion order, which must survive
        // sharding even though the entries land in different shards.
        let mut single = OnlineHistoricalIndex::new(2);
        let sharded = ShardedHistoricalIndex::new(8, 2);
        for i in 0..12usize {
            let e = entry(100 - i, &format!("Cat{i}"), 10, vec![1.0, 1.0]);
            single.insert(e.clone(), SimTime::EPOCH);
            sharded.insert(e, SimTime::EPOCH);
        }
        single.publish();
        sharded.publish_all();
        let cfg = RetrievalConfig {
            k: 6,
            alpha: 0.0,
            ..RetrievalConfig::default()
        };
        let at = SimTime::from_days(10);
        let (snap_a, snap_b) = (single.snapshot(), sharded.snapshot());
        let a = HistoryView::top_k_diverse(&snap_a, &[1.0, 1.0], at, &cfg);
        let b = HistoryView::top_k_diverse(&snap_b, &[1.0, 1.0], at, &cfg);
        assert_eq!(a, b);
        // All six similarities tie; order must be insertion order.
        let ids: Vec<usize> = b.iter().map(|n| n.entry.id).collect();
        assert_eq!(ids, vec![100, 99, 98, 97, 96, 95]);
    }

    /// A deterministic little incident cloud shared by the backend tests:
    /// duplicate embeddings and timestamps to stress tie-breaks.
    fn backend_cloud(n: usize) -> Vec<HistoricalEntry> {
        (0..n)
            .map(|i| {
                entry(
                    i,
                    &format!("Cat{}", i % 7),
                    (i as u64 * 13) % 300,
                    vec![(i % 5) as f32, (i % 3) as f32, (i % 2) as f32],
                )
            })
            .collect()
    }

    #[test]
    fn saturated_hnsw_answers_byte_identical_to_exact() {
        let entries = backend_cloud(60);
        let exact = OnlineHistoricalIndex::warm(&entries, 4);
        // ef_search far above the corpus size: the graph saturates and
        // proposes every entry, so the exact re-rank sees the full set.
        let hnsw = OnlineHistoricalIndex::warm_with(
            &entries,
            4,
            RetrievalBackend::Hnsw {
                m: 4,
                ef_construction: 16,
                ef_search: 1_000_000,
            },
        );
        let (a, b) = (exact.snapshot(), hnsw.snapshot());
        for day in [0u64, 50, 150, 299] {
            let at = SimTime::from_days(day);
            for k in [1usize, 3, 7] {
                let cfg_a = RetrievalConfig {
                    k,
                    alpha: 0.3,
                    ..RetrievalConfig::default()
                };
                let cfg_b = RetrievalConfig {
                    k,
                    alpha: 0.3,
                    backend: RetrievalBackend::Hnsw {
                        m: 4,
                        ef_construction: 16,
                        ef_search: 1_000_000,
                    },
                };
                assert_eq!(
                    HistoryView::top_k_diverse(&a, &[1.0, 1.0, 0.0], at, &cfg_a),
                    HistoryView::top_k_diverse(&b, &[1.0, 1.0, 0.0], at, &cfg_b),
                    "day {day} k {k}"
                );
            }
        }
    }

    #[test]
    fn backend_kind_mismatch_falls_back_to_exact_scan() {
        let entries = backend_cloud(40);
        let hnsw = OnlineHistoricalIndex::warm_with(&entries, 4, RetrievalBackend::hnsw());
        let snap = hnsw.snapshot();
        let at = SimTime::from_days(100);
        // Query config says Ivf but the plane holds an HNSW graph: the
        // snapshot must ignore the graph and run the exact scan, which
        // is trivially identical to a plain exact index.
        let exact_snap = OnlineHistoricalIndex::warm(&entries, 4).snapshot();
        let cfg_ivf = RetrievalConfig {
            k: 5,
            alpha: 0.3,
            backend: RetrievalBackend::ivf(),
        };
        let cfg_exact = RetrievalConfig {
            k: 5,
            alpha: 0.3,
            ..RetrievalConfig::default()
        };
        assert_eq!(
            HistoryView::top_k_diverse(&snap, &[0.5, 0.5, 0.5], at, &cfg_ivf),
            HistoryView::top_k_diverse(&exact_snap, &[0.5, 0.5, 0.5], at, &cfg_exact),
        );
    }

    #[test]
    fn ivf_backend_stages_until_trained_then_answers_saturated() {
        // ncells 2 → quantizer trains after 2 × IVF_TRAIN_FACTOR inserts;
        // nprobe ≥ cell count → every probe saturates (full recall).
        let backend = RetrievalBackend::Ivf {
            ncells: 2,
            nprobe: 64,
        };
        let entries = backend_cloud(50);
        let exact = OnlineHistoricalIndex::warm(&entries, 4);
        let ivf = OnlineHistoricalIndex::warm_with(&entries, 4, backend);
        let (a, b) = (exact.snapshot(), ivf.snapshot());
        let cfg_a = RetrievalConfig {
            k: 5,
            alpha: 0.3,
            ..RetrievalConfig::default()
        };
        let cfg_b = RetrievalConfig {
            k: 5,
            alpha: 0.3,
            backend,
        };
        for day in [0u64, 120, 299] {
            let at = SimTime::from_days(day);
            assert_eq!(
                HistoryView::top_k_diverse(&a, &[2.0, 1.0, 1.0], at, &cfg_a),
                HistoryView::top_k_diverse(&b, &[2.0, 1.0, 1.0], at, &cfg_b),
                "day {day}"
            );
        }
        // Below the training threshold the quantizer is still staging:
        // candidates() yields None and the exact scan answers.
        let few = OnlineHistoricalIndex::warm_with(&entries[..8], 4, backend);
        let few_exact = OnlineHistoricalIndex::warm(&entries[..8], 4);
        assert_eq!(
            HistoryView::top_k_diverse(
                &few.snapshot(),
                &[0.0, 0.0, 0.0],
                SimTime::from_days(50),
                &cfg_b
            ),
            HistoryView::top_k_diverse(
                &few_exact.snapshot(),
                &[0.0, 0.0, 0.0],
                SimTime::from_days(50),
                &cfg_a
            ),
        );
    }

    #[test]
    fn index_stats_reports_ann_footprint() {
        let entries = backend_cloud(40);
        let exact = OnlineHistoricalIndex::warm(&entries, 4);
        let stats = exact.index_stats();
        assert_eq!(stats.vectors, 40);
        assert_eq!(stats.dim, 3);
        assert!(stats.cells > 0);
        assert_eq!(stats.layers, 0, "exact backend has no graph layers");
        assert!(stats.bytes > 0);
        let hnsw = OnlineHistoricalIndex::warm_with(&entries, 4, RetrievalBackend::hnsw());
        let hs = hnsw.index_stats();
        // Bucketed vectors + graph vectors are both counted.
        assert_eq!(hs.vectors, 80);
        assert!(hs.layers >= 1, "graph contributes at least the base layer");
        assert!(hs.edges > 0);
        assert!(hs.bytes > stats.bytes);
        // Sharded aggregation sums across shards.
        let sharded = ShardedHistoricalIndex::warm_with(&entries, 3, 4, RetrievalBackend::hnsw());
        let ss = sharded.index_stats();
        assert_eq!(ss.vectors, 80);
        assert_eq!(ss.dim, 3);
    }

    #[test]
    fn restore_with_backend_reproduces_answers_and_stats() {
        let backend = RetrievalBackend::Hnsw {
            m: 4,
            ef_construction: 16,
            ef_search: 8,
        };
        let sharded = ShardedHistoricalIndex::warm_with(&backend_cloud(45), 3, 4, backend);
        let ckpt = sharded.checkpoint();
        let cfg = RetrievalConfig {
            k: 4,
            alpha: 0.3,
            backend,
        };
        let reference = sharded.snapshot();
        // The checkpoint stores no graph: the seeded rebuild reproduces
        // it exactly, including across shard-count changes at the same
        // shard count (per-shard graphs are functions of shard streams).
        let restored = ShardedHistoricalIndex::restore_with(&ckpt, 3, backend);
        assert_eq!(restored.index_stats(), sharded.index_stats());
        let snap = restored.snapshot();
        for day in [0u64, 75, 290] {
            let at = SimTime::from_days(day);
            assert_eq!(
                HistoryView::top_k_diverse(&reference, &[1.0, 2.0, 0.0], at, &cfg),
                HistoryView::top_k_diverse(&snap, &[1.0, 2.0, 0.0], at, &cfg),
                "day {day}"
            );
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn similarity_is_bounded_and_monotone(
            d1 in 0.0f64..50.0, d2 in 0.0f64..50.0,
            t1 in 0.0f64..365.0, t2 in 0.0f64..365.0,
            alpha in 0.0f64..2.0
        ) {
            let s = similarity(d1, t1, alpha);
            prop_assert!((0.0..=1.0).contains(&s));
            // Monotone decreasing in distance at fixed time.
            if d1 <= d2 {
                prop_assert!(similarity(d1, t1, alpha) + 1e-12 >= similarity(d2, t1, alpha));
            }
            // Monotone decreasing in |Δt| at fixed distance.
            if t1 <= t2 {
                prop_assert!(similarity(d1, t1, alpha) + 1e-12 >= similarity(d1, t2, alpha));
            }
        }

        #[test]
        fn top_k_diverse_is_sorted_and_distinct(
            k in 1usize..8,
            days in proptest::collection::vec(0u64..364, 1..30)
        ) {
            let mut idx = HistoricalIndex::new();
            for (i, &d) in days.iter().enumerate() {
                idx.add(HistoricalEntry {
                    id: i,
                    category: format!("Cat{}", i % 7),
                    summary: String::new(),
                    at: SimTime::from_days(d),
                    embedding: vec![(i % 5) as f32, (i % 3) as f32],
                });
            }
            let hits = idx.top_k_diverse(&[0.0, 0.0], SimTime::from_days(180), &RetrievalConfig { k, alpha: 0.3, ..RetrievalConfig::default() });
            prop_assert!(hits.len() <= k);
            for w in hits.windows(2) {
                prop_assert!(w[0].similarity + 1e-12 >= w[1].similarity);
            }
            let mut cats: Vec<&str> = hits.iter().map(|n| n.entry.category.as_str()).collect();
            cats.sort_unstable();
            let before = cats.len();
            cats.dedup();
            prop_assert_eq!(cats.len(), before, "duplicate categories in demos");
        }

        /// Epoch compaction is invisible to queries: an index that
        /// compacts on a short interval answers byte-identically to one
        /// that never compacts, for arbitrary entry clouds (duplicate
        /// embeddings stress the insertion-order tie-break), publish
        /// cadences, visibility horizons and query times.
        #[test]
        fn compaction_never_changes_query_results(
            k in 1usize..8,
            alpha in 0.0f64..2.0,
            max_cell in 1usize..8,
            compact_every in 1usize..4,
            publish_every in 1usize..5,
            query_day in 0u64..364,
            specs in proptest::collection::vec(
                (0u64..364, 0usize..6, 0i32..4, 0i32..4, 0u64..200), 1..40)
        ) {
            let mut plain = OnlineHistoricalIndex::new(max_cell);
            let mut compacting = OnlineHistoricalIndex::new(max_cell);
            compacting.set_compaction_interval(compact_every);
            for (i, &(day, cat, x, y, vis)) in specs.iter().enumerate() {
                let e = HistoricalEntry {
                    id: i,
                    category: format!("Cat{cat}"),
                    summary: String::new(),
                    at: SimTime::from_days(day),
                    embedding: vec![x as f32, y as f32],
                };
                let visible = SimTime::from_days(vis);
                plain.insert(e.clone(), visible);
                compacting.insert(e, visible);
                if (i + 1) % publish_every == 0 {
                    plain.publish();
                    compacting.publish();
                }
            }
            plain.publish();
            compacting.publish();
            let cfg = RetrievalConfig { k, alpha, ..RetrievalConfig::default() };
            let at = SimTime::from_days(query_day);
            let (a, b) = (plain.snapshot(), compacting.snapshot());
            for q in [[0.0f32, 0.0], [1.5, 2.5], [3.0, 0.0]] {
                prop_assert_eq!(
                    HistoryView::top_k_diverse(&a, &q, at, &cfg),
                    HistoryView::top_k_diverse(&b, &q, at, &cfg)
                );
            }
        }

        /// The bound-pruned online snapshot must return *exactly* the
        /// linear scan's answer — same entries, same order, same
        /// similarities — for arbitrary entry clouds, duplicate
        /// embeddings (tie-break stress) and query times.
        #[test]
        fn online_snapshot_equals_linear_scan(
            k in 1usize..8,
            alpha in 0.0f64..2.0,
            max_cell in 1usize..10,
            query_day in 0u64..364,
            specs in proptest::collection::vec(
                (0u64..364, 0usize..6, 0i32..4, 0i32..4), 1..50)
        ) {
            let mut linear = HistoricalIndex::new();
            for (i, &(day, cat, x, y)) in specs.iter().enumerate() {
                linear.add(HistoricalEntry {
                    id: i,
                    category: format!("Cat{cat}"),
                    summary: String::new(),
                    at: SimTime::from_days(day),
                    // Small integer grid: plenty of exact ties.
                    embedding: vec![x as f32, y as f32],
                });
            }
            let online = OnlineHistoricalIndex::warm(linear.entries(), max_cell);
            let snap = online.snapshot();
            let cfg = RetrievalConfig { k, alpha, ..RetrievalConfig::default() };
            let at = SimTime::from_days(query_day);
            for q in [[0.0f32, 0.0], [1.5, 2.5], [3.0, 0.0]] {
                let a = linear.top_k_diverse(&q, at, &cfg);
                let b = HistoryView::top_k_diverse(&snap, &q, at, &cfg);
                prop_assert_eq!(a, b);
            }
        }

        /// Sharding is invisible to queries: for any shard count, entry
        /// cloud (duplicate embeddings stress the global-sequence
        /// tie-break), visibility horizon, decay rate and query time, the
        /// cross-shard bounded merge answers byte-identically — same
        /// entries, same order, same similarities — to one unsharded
        /// index over the same insertion sequence.
        #[test]
        fn sharded_equals_unsharded(
            k in 1usize..8,
            alpha in 0.0f64..2.0,
            max_cell in 1usize..8,
            shards in 1usize..9,
            publish_every in 1usize..5,
            query_day in 0u64..364,
            specs in proptest::collection::vec(
                (0u64..364, 0usize..6, 0i32..4, 0i32..4, 0u64..200), 1..50)
        ) {
            let mut single = OnlineHistoricalIndex::new(max_cell);
            let sharded = ShardedHistoricalIndex::new(shards, max_cell);
            for (i, &(day, cat, x, y, vis)) in specs.iter().enumerate() {
                let e = HistoricalEntry {
                    id: i,
                    category: format!("Cat{cat}"),
                    summary: String::new(),
                    at: SimTime::from_days(day),
                    // Small integer grid: plenty of exact ties.
                    embedding: vec![x as f32, y as f32],
                };
                let visible = SimTime::from_days(vis);
                single.insert(e.clone(), visible);
                let s = sharded.insert(e, visible);
                if (i + 1) % publish_every == 0 {
                    single.publish();
                    sharded.publish(s);
                }
            }
            single.publish();
            sharded.publish_all();
            prop_assert_eq!(sharded.len(), single.len());
            let cfg = RetrievalConfig { k, alpha, ..RetrievalConfig::default() };
            let at = SimTime::from_days(query_day);
            let (a, b) = (single.snapshot(), sharded.snapshot());
            for q in [[0.0f32, 0.0], [1.5, 2.5], [3.0, 0.0]] {
                prop_assert_eq!(
                    HistoryView::top_k_diverse(&a, &q, at, &cfg),
                    HistoryView::top_k_diverse(&b, &q, at, &cfg),
                    "{} shards, query {:?}", sharded.shard_count(), q
                );
            }
        }

        /// The byte-identity contract of the ANN tier: at 100% candidate
        /// recall (`ef_search` ≥ corpus size saturates the graph; `nprobe`
        /// ≥ cell count saturates the quantizer) the HNSW and IVF
        /// backends answer byte-identically — same entries, same order,
        /// same f64 similarities — to the exact backend, for any shard
        /// count, entry cloud (duplicate embeddings stress the
        /// global-sequence tie-break), publish cadence, visibility
        /// horizon, decay rate and query time.
        #[test]
        fn saturated_ann_backends_equal_exact(
            k in 1usize..8,
            alpha in 0.0f64..2.0,
            max_cell in 1usize..8,
            shards in 1usize..5,
            m in 2usize..8,
            publish_every in 1usize..5,
            query_day in 0u64..364,
            specs in proptest::collection::vec(
                (0u64..364, 0usize..6, 0i32..4, 0i32..4, 0u64..200), 1..40)
        ) {
            let hnsw = RetrievalBackend::Hnsw {
                m, ef_construction: 8, ef_search: usize::MAX,
            };
            let ivf = RetrievalBackend::Ivf { ncells: 2, nprobe: usize::MAX };
            let exact_idx = ShardedHistoricalIndex::new(shards, max_cell);
            let hnsw_idx = ShardedHistoricalIndex::new_with(shards, max_cell, hnsw);
            let ivf_idx = ShardedHistoricalIndex::new_with(shards, max_cell, ivf);
            for (i, &(day, cat, x, y, vis)) in specs.iter().enumerate() {
                let e = HistoricalEntry {
                    id: i,
                    category: format!("Cat{cat}"),
                    summary: String::new(),
                    at: SimTime::from_days(day),
                    embedding: vec![x as f32, y as f32],
                };
                let visible = SimTime::from_days(vis);
                exact_idx.insert(e.clone(), visible);
                hnsw_idx.insert(e.clone(), visible);
                ivf_idx.insert(e, visible);
                if (i + 1) % publish_every == 0 {
                    exact_idx.publish_all();
                    hnsw_idx.publish_all();
                    ivf_idx.publish_all();
                }
            }
            exact_idx.publish_all();
            hnsw_idx.publish_all();
            ivf_idx.publish_all();
            let cfg_exact = RetrievalConfig { k, alpha, ..RetrievalConfig::default() };
            let cfg_hnsw = RetrievalConfig { k, alpha, backend: hnsw };
            let cfg_ivf = RetrievalConfig { k, alpha, backend: ivf };
            let at = SimTime::from_days(query_day);
            let (se, sh, si) =
                (exact_idx.snapshot(), hnsw_idx.snapshot(), ivf_idx.snapshot());
            for q in [[0.0f32, 0.0], [1.5, 2.5], [3.0, 0.0]] {
                let want = HistoryView::top_k_diverse(&se, &q, at, &cfg_exact);
                prop_assert_eq!(
                    &want,
                    &HistoryView::top_k_diverse(&sh, &q, at, &cfg_hnsw),
                    "hnsw: {} shards, query {:?}", shards, q
                );
                prop_assert_eq!(
                    &want,
                    &HistoryView::top_k_diverse(&si, &q, at, &cfg_ivf),
                    "ivf: {} shards, query {:?}", shards, q
                );
            }
        }

        /// Non-saturated HNSW retrieval is *deterministic*: two indexes
        /// built from the same insertion stream with the same seed answer
        /// identically at any `ef_search`, even when recall is partial.
        #[test]
        fn hnsw_retrieval_is_deterministic_at_any_ef(
            ef in 1usize..16,
            query_day in 0u64..364,
            specs in proptest::collection::vec(
                (0u64..364, 0usize..6, 0i32..4, 0i32..4), 1..40)
        ) {
            let backend = RetrievalBackend::Hnsw { m: 4, ef_construction: 8, ef_search: ef };
            let entries: Vec<HistoricalEntry> = specs.iter().enumerate().map(
                |(i, &(day, cat, x, y))| HistoricalEntry {
                    id: i,
                    category: format!("Cat{cat}"),
                    summary: String::new(),
                    at: SimTime::from_days(day),
                    embedding: vec![x as f32, y as f32],
                }).collect();
            let a = OnlineHistoricalIndex::warm_with(&entries, 4, backend);
            let b = OnlineHistoricalIndex::warm_with(&entries, 4, backend);
            let cfg = RetrievalConfig { k: 5, alpha: 0.3, backend };
            let at = SimTime::from_days(query_day);
            let (sa, sb) = (a.snapshot(), b.snapshot());
            for q in [[0.0f32, 0.0], [1.5, 2.5]] {
                prop_assert_eq!(
                    HistoryView::top_k_diverse(&sa, &q, at, &cfg),
                    HistoryView::top_k_diverse(&sb, &q, at, &cfg)
                );
            }
        }
    }
}
