//! RCACopilot: the end-to-end root-cause-analysis pipeline.
//!
//! This crate ties the substrates together into the system of the paper's
//! Figure 4:
//!
//! 1. **Diagnostic information collection** ([`collection`]): an incoming
//!    incident is matched to its alert type's handler (from
//!    `rcacopilot-handlers`), which gathers multi-source diagnostics from
//!    the incident's telemetry snapshot. A [`collection::KnownIssueDb`]
//!    can short-circuit recognized alert patterns with mitigations.
//! 2. **Context construction** ([`context`]): the Table 3 prompt contexts
//!    — alert info, (summarized) diagnostic info, action output — are
//!    rendered from the collection results.
//! 3. **Retrieval** ([`retrieval`]): historical incidents are embedded
//!    (FastText hidden states) and searched with the paper's
//!    temporal-decay similarity
//!    `sim(a,b) = 1/(1+‖a−b‖₂) · e^(−α|T(a)−T(b)|)`, picking the top-K
//!    neighbors from *distinct* categories as demonstrations.
//! 4. **Prediction** ([`pipeline`]): the simulated LLM summarizes the
//!    diagnostics, receives the Figure 9 prompt, and either selects a
//!    demonstration's category or declares an unseen incident with a
//!    synthesized label and explanation.
//!
//! [`baselines`] implements the Table 2 comparison methods, [`metrics`]
//! the micro/macro F1 scoring, and [`eval`] the experiment harness
//! (including the multi-round stability protocol of §5.6 and the
//! Table 3 / Figure 12 ablations in [`ablation`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod baselines;
pub mod collection;
pub mod context;
pub mod eval;
pub mod feedback;
pub mod memo;
pub mod metrics;
pub mod pipeline;
pub mod plan;
pub mod report;
pub mod retrieval;

pub use collection::{CollectedIncident, CollectionStage, KnownIssueDb};
pub use context::ContextSpec;
pub use eval::{evaluate_method, MethodReport, PreparedDataset};
pub use feedback::{FeedbackStore, Verdict};
pub use memo::{
    namespaced_key, ExactMemo, MemoCache, MemoPolicy, NamespacedMemo, NoMemo, ShingleMemo,
};
pub use metrics::{f1_scores, F1Report};
pub use pipeline::{RcaCopilot, RcaCopilotConfig, RcaPrediction};
pub use plan::{InferencePlan, PlanCaches, PlanExecutor, PlanOutcome, SummarizeMode};
pub use rcacopilot_embed::IndexStats;
pub use report::OnCallReport;
pub use retrieval::{
    shard_for_category, CheckpointEntry, EpochCheckpoint, HistoricalEntry, HistoricalIndex,
    HistorySnapshot, HistoryView, OnlineHistoricalIndex, RetrievalBackend, RetrievalConfig,
    ShardedCheckpoint, ShardedHistoricalIndex, ShardedHistorySnapshot,
};
