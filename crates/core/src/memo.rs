//! Content-keyed memoization for the expensive per-incident stages, plus
//! the pluggable policy deciding *which* key (if any) a stage uses.
//!
//! Monitors flap: the same incident is frequently re-raised with
//! byte-identical — or near-identical — diagnostics. Summarization and
//! embedding are pure functions of the collected text, so both planes
//! (batch eval and online serving) memoize them behind a 64-bit content
//! key produced by a [`MemoPolicy`]:
//!
//! - [`ExactMemo`] hashes the raw bytes with FNV-1a — a cache hit returns
//!   the exact value a recomputation would, which keeps every output
//!   independent of hit/miss patterns (and therefore of worker
//!   scheduling). This is the default policy on both planes.
//! - [`ShingleMemo`] canonicalizes the text (entity masking + word
//!   k-shingle min-hash sketch) before hashing, so near-identical
//!   diagnostic storms — the same flapping monitor re-raising with fresh
//!   timestamps and counters — share one summary. It trades byte-level
//!   reproducibility of the summary text for a strictly higher hit rate
//!   on storm workloads, and is therefore opt-in.
//! - [`NoMemo`] disables caching entirely (the historical batch-plane
//!   behavior).
//! - [`NamespacedMemo`] wraps any of the above and salts its keys with a
//!   tenant namespace ([`namespaced_key`]), so tenants sharing one
//!   physical cache occupy disjoint logical key spaces.
//!
//! The cache is sharded N-way by key (matching the retrieval plane's
//! shard count) so concurrent workers memoizing different incidents do
//! not serialize on one global lock. A shard lock poisoned by a dying
//! worker is recovered and counted instead of cascading: recovery is
//! sound here because every cached value is a pure function of its key —
//! the map is consistent no matter where a panicking worker died (at
//! worst one counter bump or one insert is lost, costing only a
//! recomputation).

use crate::retrieval::fnv1a;
use rcacopilot_textkit::normalize::{mask_entities, normalize, tokenize};
use std::collections::HashMap;
use std::fmt::Debug;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Thread-safe memoization cache, sharded by key.
///
/// Values must be pure functions of the key; the cache then never changes
/// observable results, only the work done to produce them. (Near-dup
/// policies weaken "pure function of the key" to "pure function of the
/// first text that produced the key" — see [`ShingleMemo`].)
#[derive(Debug)]
pub struct MemoCache<V: Clone> {
    shards: Vec<Mutex<MemoInner<V>>>,
    poison_recoveries: AtomicU64,
}

impl<V: Clone> Default for MemoCache<V> {
    fn default() -> Self {
        MemoCache::new(1)
    }
}

#[derive(Debug)]
struct MemoInner<V> {
    map: HashMap<u64, V>,
    hits: u64,
    misses: u64,
}

impl<V> Default for MemoInner<V> {
    fn default() -> Self {
        MemoInner {
            map: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }
}

impl<V: Clone> MemoCache<V> {
    /// An empty cache with `shards` lock domains (clamped to ≥ 1).
    pub fn new(shards: usize) -> Self {
        MemoCache {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(MemoInner::default()))
                .collect(),
            poison_recoveries: AtomicU64::new(0),
        }
    }

    /// Number of lock domains.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, key: u64) -> &Mutex<MemoInner<V>> {
        &self.shards[(key % self.shards.len() as u64) as usize]
    }

    /// Locks a shard, recovering (and counting) poisoned guards instead of
    /// cascading a worker's panic into every later cache access.
    fn lock<'a>(&self, mutex: &'a Mutex<MemoInner<V>>) -> MutexGuard<'a, MemoInner<V>> {
        mutex.lock().unwrap_or_else(|poisoned| {
            self.poison_recoveries.fetch_add(1, Ordering::Relaxed);
            poisoned.into_inner()
        })
    }

    /// Returns the cached value for `key`, computing and inserting it via
    /// `compute` on a miss. The lock is *not* held during `compute`; on a
    /// race the first insert wins and later computations are discarded,
    /// which is harmless because `compute` is pure.
    pub fn get_or_insert_with(&self, key: u64, compute: impl FnOnce() -> V) -> V {
        {
            let mut inner = self.lock(self.shard(key));
            if let Some(v) = inner.map.get(&key) {
                let v = v.clone();
                inner.hits += 1;
                return v;
            }
            inner.misses += 1;
        }
        let v = compute();
        let mut inner = self.lock(self.shard(key));
        inner.map.entry(key).or_insert_with(|| v.clone());
        inner.map[&key].clone()
    }

    /// `(hits, misses)` counters since construction, summed over shards.
    pub fn stats(&self) -> (u64, u64) {
        self.shards.iter().fold((0, 0), |(h, m), shard| {
            let inner = self.lock(shard);
            (h + inner.hits, m + inner.misses)
        })
    }

    /// Number of distinct cached entries across shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| self.lock(shard).map.len())
            .sum()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of poisoned shard locks recovered so far. Serving folds this
    /// into its fault counters at report time.
    pub fn poison_recoveries(&self) -> u64 {
        self.poison_recoveries.load(Ordering::Relaxed)
    }
}

/// Decides which memo key (if any) each cacheable stage uses for a given
/// raw diagnostic text.
///
/// Returning `None` bypasses the cache for that stage: the stage runs
/// unconditionally and stores nothing. Returning `Some(k)` means "any two
/// texts mapping to `k` may share one computed value" — so a policy's keys
/// define its notion of equivalence, from byte equality ([`ExactMemo`])
/// down to near-duplicate similarity ([`ShingleMemo`]).
pub trait MemoPolicy: Debug + Send + Sync {
    /// Stable policy name, surfaced in serving reports and bench output.
    fn name(&self) -> &'static str;

    /// Memo key for the summarization stage, or `None` to bypass.
    fn summary_key(&self, raw_diag: &str) -> Option<u64>;

    /// Memo key for the embedding stage, or `None` to bypass.
    fn embed_key(&self, raw_diag: &str) -> Option<u64>;
}

/// No memoization at all: the historical batch-plane behavior.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoMemo;

impl MemoPolicy for NoMemo {
    fn name(&self) -> &'static str {
        "none"
    }

    fn summary_key(&self, _raw_diag: &str) -> Option<u64> {
        None
    }

    fn embed_key(&self, _raw_diag: &str) -> Option<u64> {
        None
    }
}

/// Exact content-hash memoization: FNV-1a over the raw bytes.
///
/// Two texts share a key iff they are byte-identical, so a hit returns
/// exactly what a recomputation would — outputs are independent of
/// hit/miss patterns and of worker scheduling. Safe everywhere; the
/// serving engine's default.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExactMemo;

impl MemoPolicy for ExactMemo {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn summary_key(&self, raw_diag: &str) -> Option<u64> {
        Some(fnv1a(raw_diag.as_bytes()))
    }

    fn embed_key(&self, raw_diag: &str) -> Option<u64> {
        Some(fnv1a(raw_diag.as_bytes()))
    }
}

/// Near-duplicate summary sharing via a min-hash sketch of word
/// k-shingles over entity-masked text.
///
/// A flapping monitor re-raises the same incident with fresh timestamps,
/// counters, and machine names; byte hashing treats every re-raise as new
/// work. This policy first masks those per-incident entities
/// ([`mask_entities`]) and then sketches the masked token stream with the
/// `sketch_size` smallest k-shingle hashes — near-identical storms
/// collapse to one key and share one summary.
///
/// Only the *summary* stage is near-dup keyed: embeddings stay on the
/// exact byte hash, because retrieval similarity should still see the
/// real text, and because the embedding is cheap relative to
/// summarization in the simulated cost model.
///
/// Trade-off: with multiple serving workers the first storm member to
/// insert wins, so *which* equivalent text got summarized can depend on
/// scheduling. Keys are deterministic, but cached summary bytes are only
/// guaranteed reproducible under single-worker or batch execution — hence
/// the policy is opt-in and off by default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShingleMemo {
    /// Words per shingle (the `k` in k-shingle). Clamped to ≥ 1.
    pub shingle_k: usize,
    /// Number of smallest shingle hashes kept in the sketch. Clamped to ≥ 1.
    pub sketch_size: usize,
}

impl Default for ShingleMemo {
    fn default() -> Self {
        ShingleMemo {
            shingle_k: 4,
            sketch_size: 16,
        }
    }
}

impl ShingleMemo {
    /// The canonical sketch key for `raw_diag`: mask entities, normalize,
    /// tokenize, hash every `shingle_k`-word window, keep the
    /// `sketch_size` smallest hashes, and fold them into one 64-bit key.
    pub fn sketch_key(&self, raw_diag: &str) -> u64 {
        let k = self.shingle_k.max(1);
        // Mask before normalizing: the machine-name heuristic keys on
        // uppercase runs, which lowercasing would erase.
        let masked = normalize(&mask_entities(raw_diag));
        let tokens = tokenize(&masked);
        let mut hashes: Vec<u64> = if tokens.len() < k {
            // Degenerate short text: hash the whole token stream once.
            vec![fnv1a(tokens.join(" ").as_bytes())]
        } else {
            tokens
                .windows(k)
                .map(|w| fnv1a(w.join(" ").as_bytes()))
                .collect()
        };
        hashes.sort_unstable();
        hashes.dedup();
        hashes.truncate(self.sketch_size.max(1));
        // Fold the bottom-m sketch into a single key (order is canonical
        // after the sort, so equal sketches fold to equal keys).
        let mut key = 0xcbf2_9ce4_8422_2325u64;
        for h in hashes {
            key ^= h;
            key = key.wrapping_mul(0x0000_0100_0000_01b3);
        }
        key
    }
}

impl MemoPolicy for ShingleMemo {
    fn name(&self) -> &'static str {
        "shingle"
    }

    fn summary_key(&self, raw_diag: &str) -> Option<u64> {
        Some(self.sketch_key(raw_diag))
    }

    fn embed_key(&self, raw_diag: &str) -> Option<u64> {
        Some(fnv1a(raw_diag.as_bytes()))
    }
}

/// Salts a memo key with a tenant namespace.
///
/// Namespace `0` is the root (single-tenant) namespace and is the
/// identity, so namespacing is free to thread through single-tenant
/// paths without perturbing any existing cache key. Any other namespace
/// mixes both halves through FNV-1a, so two tenants sharing one physical
/// [`MemoCache`] can never alias each other's entries — even under
/// near-duplicate policies whose keys collide across texts by design.
pub fn namespaced_key(namespace: u64, key: u64) -> u64 {
    if namespace == 0 {
        return key;
    }
    let mut bytes = [0u8; 16];
    bytes[..8].copy_from_slice(&namespace.to_le_bytes());
    bytes[8..].copy_from_slice(&key.to_le_bytes());
    fnv1a(&bytes)
}

/// A tenant-scoped view over another memo policy: every key the inner
/// policy produces is salted with [`namespaced_key`] before it touches
/// the shared cache.
///
/// This is the memo half of the multi-tenant bulkhead: tenants share one
/// physical [`MemoCache`] (one allocation, one shard array) but live in
/// disjoint logical key spaces, so one tenant's flapping storm can evict
/// or pre-fill nothing for another. Namespace `0` degenerates to the
/// inner policy exactly.
#[derive(Debug, Clone)]
pub struct NamespacedMemo {
    inner: Arc<dyn MemoPolicy>,
    namespace: u64,
}

impl NamespacedMemo {
    /// Scopes `inner`'s keys to `namespace`.
    pub fn new(inner: Arc<dyn MemoPolicy>, namespace: u64) -> Self {
        NamespacedMemo { inner, namespace }
    }

    /// The namespace keys are salted with (`0` = root, the identity).
    pub fn namespace(&self) -> u64 {
        self.namespace
    }
}

impl MemoPolicy for NamespacedMemo {
    // The inner policy's name: namespacing changes *where* keys land,
    // not the caching semantics reports care about.
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn summary_key(&self, raw_diag: &str) -> Option<u64> {
        self.inner
            .summary_key(raw_diag)
            .map(|k| namespaced_key(self.namespace, k))
    }

    fn embed_key(&self, raw_diag: &str) -> Option<u64> {
        self.inner
            .embed_key(raw_diag)
            .map(|k| namespaced_key(self.namespace, k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn namespace_zero_is_the_identity() {
        for key in [0u64, 1, 42, u64::MAX] {
            assert_eq!(namespaced_key(0, key), key);
        }
        let wrapped = NamespacedMemo::new(Arc::new(ExactMemo), 0);
        let text = "probe timeout on HUB01";
        assert_eq!(wrapped.summary_key(text), ExactMemo.summary_key(text));
        assert_eq!(wrapped.embed_key(text), ExactMemo.embed_key(text));
        assert_eq!(wrapped.name(), "exact");
    }

    #[test]
    fn distinct_namespaces_never_share_keys() {
        let text = "delivery queue backlog on forest EURPR01";
        let a = NamespacedMemo::new(Arc::new(ExactMemo), 1);
        let b = NamespacedMemo::new(Arc::new(ExactMemo), 2);
        assert_ne!(a.summary_key(text), b.summary_key(text));
        assert_ne!(a.embed_key(text), b.embed_key(text));
        // Same namespace stays deterministic.
        assert_eq!(a.summary_key(text), a.summary_key(text));
        // A bypassing inner policy still bypasses.
        let none = NamespacedMemo::new(Arc::new(NoMemo), 7);
        assert_eq!(none.summary_key(text), None);
        assert_eq!(none.embed_key(text), None);
    }

    #[test]
    fn namespaced_tenants_are_isolated_in_one_physical_cache() {
        let cache: MemoCache<String> = MemoCache::new(4);
        let policy = Arc::new(ExactMemo) as Arc<dyn MemoPolicy>;
        let text = "same bytes, different tenants";
        let t1 = NamespacedMemo::new(policy.clone(), 1);
        let t2 = NamespacedMemo::new(policy, 2);
        let k1 = t1.summary_key(text).unwrap();
        let k2 = t2.summary_key(text).unwrap();
        let v1 = cache.get_or_insert_with(k1, || "tenant-1 summary".to_string());
        let v2 = cache.get_or_insert_with(k2, || "tenant-2 summary".to_string());
        assert_eq!(v1, "tenant-1 summary");
        assert_eq!(v2, "tenant-2 summary");
        assert_eq!(cache.len(), 2, "two tenants, two entries, one cache");
    }

    #[test]
    fn cache_computes_once_per_key() {
        let cache = MemoCache::new(1);
        let mut calls = 0;
        let a = cache.get_or_insert_with(1, || {
            calls += 1;
            "v1".to_string()
        });
        let b = cache.get_or_insert_with(1, || {
            calls += 1;
            "other".to_string()
        });
        assert_eq!(a, "v1");
        assert_eq!(b, "v1");
        assert_eq!(calls, 1);
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn sharded_cache_spreads_keys_but_answers_identically() {
        let cache = MemoCache::new(4);
        assert_eq!(cache.shard_count(), 4);
        for key in 0..32u64 {
            assert_eq!(cache.get_or_insert_with(key, || key * 3), key * 3);
        }
        assert_eq!(cache.len(), 32);
        for key in 0..32u64 {
            assert_eq!(cache.get_or_insert_with(key, || 0), key * 3);
        }
        assert_eq!(cache.stats(), (32, 32));
        let populated = cache
            .shards
            .iter()
            .filter(|s| !s.lock().unwrap().map.is_empty())
            .count();
        assert!(
            populated > 1,
            "expected keys across shards, got {populated}"
        );
        assert_eq!(MemoCache::<u64>::new(0).shard_count(), 1);
    }

    #[test]
    fn cache_is_usable_across_threads() {
        let cache = MemoCache::new(4);
        std::thread::scope(|s| {
            for t in 0..4 {
                let cache = &cache;
                s.spawn(move || {
                    for i in 0..50u64 {
                        let v = cache.get_or_insert_with(i % 10, || (i % 10) * 2);
                        assert_eq!(v, (i % 10) * 2, "thread {t}");
                    }
                });
            }
        });
        assert_eq!(cache.len(), 10);
        let (hits, misses) = cache.stats();
        assert_eq!(hits + misses, 200);
        assert!(misses >= 10);
    }

    #[test]
    fn poisoned_shard_is_recovered_and_counted() {
        let cache = std::sync::Arc::new(MemoCache::new(1));
        cache.get_or_insert_with(7, || 7u64);
        let poisoner = cache.clone();
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.shards[0].lock().unwrap();
            panic!("worker dies holding the memo lock");
        })
        .join();
        assert_eq!(cache.get_or_insert_with(7, || 0), 7);
        assert!(cache.poison_recoveries() >= 1);
    }

    #[test]
    fn exact_policy_keys_are_byte_equality() {
        let p = ExactMemo;
        assert_eq!(p.name(), "exact");
        assert_eq!(p.summary_key("abc"), p.summary_key("abc"));
        assert_ne!(p.summary_key("abc"), p.summary_key("abd"));
        assert_eq!(p.summary_key("abc"), p.embed_key("abc"));
    }

    #[test]
    fn no_memo_bypasses_both_stages() {
        assert_eq!(NoMemo.summary_key("x"), None);
        assert_eq!(NoMemo.embed_key("x"), None);
        assert_eq!(NoMemo.name(), "none");
    }

    #[test]
    fn shingle_policy_collapses_entity_churn() {
        let p = ShingleMemo::default();
        let a = "probe DatacenterHubOutboundProxyProbe failed on NAMPR03MB1234 \
                 at 11/21/2022 2:04:20 with 15276 sockets held by transport \
                 delivery process and the retry queue kept growing past limits";
        // Same storm, re-raised: fresh machine, time, and counter.
        let b = "probe DatacenterHubOutboundProxyProbe failed on NAMPR07MB9921 \
                 at 11/22/2022 9:13:55 with 18903 sockets held by transport \
                 delivery process and the retry queue kept growing past limits";
        // Genuinely different incident text.
        let c = "certificate chain validation error on the auth frontend while \
                 renewing the signing credential for federated tenants today";
        assert_eq!(
            p.summary_key(a),
            p.summary_key(b),
            "storm members share a key"
        );
        assert_ne!(p.summary_key(a), p.summary_key(c));
        // Embeddings stay on exact bytes.
        assert_ne!(p.embed_key(a), p.embed_key(b));
        assert_eq!(p.embed_key(a), ExactMemo.embed_key(a));
    }

    #[test]
    fn shingle_sketch_handles_short_text() {
        let p = ShingleMemo::default();
        assert_eq!(p.sketch_key("one two"), p.sketch_key("ONE  two"));
        assert_ne!(p.sketch_key("one two"), p.sketch_key("one three"));
        // Zero-size configs clamp rather than panic.
        let tiny = ShingleMemo {
            shingle_k: 0,
            sketch_size: 0,
        };
        let _ = tiny.sketch_key("some text here");
    }
}
