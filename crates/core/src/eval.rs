//! The evaluation harness behind Tables 2–3 and Figure 12.

use crate::baselines::{FastTextBaseline, FineTuneBaseline, XgboostBaseline, ZeroShotBaseline};
use crate::collection::CollectionStage;
use crate::context::ContextSpec;
use crate::memo::{ExactMemo, MemoCache};
use crate::metrics::{f1_scores, F1Report};
use crate::pipeline::{Embedder, RcaCopilot, RcaCopilotConfig, TrainExample};
use crate::plan::{memoized_summary, InferencePlan, PlanCaches, PlanExecutor};
use rcacopilot_handlers::RunDegradation;
use rcacopilot_llm::{ModelProfile, Summarizer};
use rcacopilot_simcloud::{IncidentDataset, TrainTestSplit};
use rcacopilot_telemetry::time::SimTime;
use std::time::Instant;

/// One incident after the (expensive) collection + summarization pass.
#[derive(Debug, Clone)]
pub struct PreparedIncident {
    /// Ground-truth category.
    pub category: String,
    /// Occurrence time.
    pub at: SimTime,
    /// First occurrence of its category in the year.
    pub first_of_category: bool,
    /// Rendered alert info.
    pub alert_info: String,
    /// Raw handler-collected diagnostics.
    pub raw_diag: String,
    /// Summarized diagnostics (120–140-word budget).
    pub summary: String,
    /// Handler action outputs as text.
    pub action_output: String,
    /// Degradation metadata of the collection run (defaulted — i.e.
    /// fully complete — on the fault-free path).
    pub degradation: RunDegradation,
}

impl PreparedIncident {
    /// Fraction of diagnostic sections collected intact.
    pub fn completeness(&self) -> f64 {
        self.degradation.completeness()
    }
}

/// The dataset after collection/summarization, with its split.
#[derive(Debug, Clone)]
pub struct PreparedDataset {
    /// All incidents, chronological.
    pub incidents: Vec<PreparedIncident>,
    /// Training indices.
    pub train: Vec<usize>,
    /// Testing indices.
    pub test: Vec<usize>,
}

impl PreparedDataset {
    /// Runs the collection stage and summarizer over the whole dataset.
    ///
    /// # Panics
    ///
    /// Panics if any incident lacks a handler (the standard library covers
    /// every alert type, so this indicates a wiring bug).
    pub fn prepare(dataset: &IncidentDataset, split: &TrainTestSplit) -> Self {
        PreparedDataset::prepare_with(dataset, split, &CollectionStage::standard())
    }

    /// Like [`prepare`], but runs collection through the caller's stage —
    /// e.g. one built by [`CollectionStage::standard_with_faults`] so the
    /// whole evaluation operates on degraded diagnostics.
    ///
    /// # Panics
    ///
    /// Panics if any incident lacks a handler in the stage's registry.
    ///
    /// [`prepare`]: PreparedDataset::prepare
    pub fn prepare_with(
        dataset: &IncidentDataset,
        split: &TrainTestSplit,
        stage: &CollectionStage,
    ) -> Self {
        let summarizer = Summarizer::default();
        // The batch plane shares the serving plane's memo seam: monitors
        // flap, so byte-identical diagnostics are summarized once. The
        // exact policy keeps preparation deterministic under the thread
        // pool (a hit returns exactly what a recomputation would).
        let summary_cache: MemoCache<String> = MemoCache::new(8);
        let incidents: Vec<PreparedIncident> = parallel_map(dataset.incidents(), |inc| {
            let collected = stage
                .collect(inc)
                .unwrap_or_else(|e| panic!("collection failed for {}: {e}", inc.category));
            let raw_diag = collected.diagnostic_text();
            let summary = memoized_summary(&summarizer, &raw_diag, &ExactMemo, &summary_cache);
            PreparedIncident {
                category: inc.category.clone(),
                at: inc.occurred_at(),
                first_of_category: inc.first_of_category,
                alert_info: collected.alert_info.clone(),
                raw_diag,
                summary,
                action_output: collected.run.action_output_text(),
                degradation: collected.run.degradation,
            }
        });
        PreparedDataset {
            incidents,
            train: split.train.clone(),
            test: split.test.clone(),
        }
    }

    /// Renders the Table 3 context text of incident `idx` under `spec`
    /// (summaries are precomputed, so this is cheap).
    pub fn context_text(&self, idx: usize, spec: &ContextSpec) -> String {
        let inc = &self.incidents[idx];
        spec.render_parts(
            &inc.alert_info,
            &inc.raw_diag,
            &inc.summary,
            &inc.action_output,
        )
    }

    /// Builds pipeline training examples under a context spec.
    pub fn train_examples(&self, spec: &ContextSpec) -> Vec<TrainExample> {
        self.train
            .iter()
            .map(|&i| {
                let inc = &self.incidents[i];
                TrainExample {
                    raw_diag: inc.raw_diag.clone(),
                    demo_text: self.context_text(i, spec),
                    category: inc.category.clone(),
                    at: inc.at,
                }
            })
            .collect()
    }

    /// Raw `(text, label)` pairs of the training split, for baselines.
    pub fn raw_train_pairs(&self) -> Vec<(String, String)> {
        self.train
            .iter()
            .map(|&i| {
                (
                    self.incidents[i].raw_diag.clone(),
                    self.incidents[i].category.clone(),
                )
            })
            .collect()
    }

    /// Gold labels of the test split.
    pub fn test_gold(&self) -> Vec<String> {
        self.test
            .iter()
            .map(|&i| self.incidents[i].category.clone())
            .collect()
    }

    /// Mean collection completeness over the test split (1.0 when the
    /// dataset was prepared fault-free).
    pub fn mean_test_completeness(&self) -> f64 {
        if self.test.is_empty() {
            return 1.0;
        }
        let sum: f64 = self
            .test
            .iter()
            .map(|&i| self.incidents[i].completeness())
            .sum();
        sum / self.test.len() as f64
    }

    /// Number of test incidents whose category never occurs in training.
    pub fn unseen_test_count(&self) -> usize {
        let train_cats: std::collections::BTreeSet<&str> = self
            .train
            .iter()
            .map(|&i| self.incidents[i].category.as_str())
            .collect();
        self.test
            .iter()
            .filter(|&&i| !train_cats.contains(self.incidents[i].category.as_str()))
            .count()
    }
}

/// A Table 2 method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Method {
    /// Full RCACopilot with the given simulated model.
    RcaCopilot(ModelProfile),
    /// FastText classifier on raw diagnostics.
    FastText,
    /// XGBoost on truncated TF-IDF of raw diagnostics.
    Xgboost,
    /// Fine-tuned LM (naive Bayes over BPE tokens) on raw diagnostics.
    FineTune,
    /// Zero-shot prompt: no demonstrations ("GPT-4 Prompt").
    ZeroShot,
    /// RCACopilot with the untrained generic LM embedding ("GPT-4 Embed.").
    LmEmbed,
}

impl Method {
    /// Display name matching the paper's Table 2 rows.
    pub fn name(&self) -> String {
        match self {
            Method::RcaCopilot(p) => format!("RCACopilot ({})", p.name()),
            Method::FastText => "FastText".to_string(),
            Method::Xgboost => "XGBoost".to_string(),
            Method::FineTune => "Fine-tune LM".to_string(),
            Method::ZeroShot => "GPT-4 Prompt (zero-shot)".to_string(),
            Method::LmEmbed => "GPT-4 Embed.".to_string(),
        }
    }
}

/// Outcome of evaluating one method.
#[derive(Debug, Clone)]
pub struct MethodReport {
    /// Method display name.
    pub name: String,
    /// Scoring report on the test split.
    pub f1: F1Report,
    /// Wall-clock training time, seconds.
    pub train_secs: f64,
    /// Mean wall-clock inference time per incident, seconds.
    pub infer_secs_avg: f64,
    /// Predicted labels, aligned with the test split.
    pub predictions: Vec<String>,
}

/// Evaluates one method on a prepared dataset. `seed` feeds the simulated
/// LLM's noise stream (vary it per round for the §5.6 protocol).
pub fn evaluate_method(prepared: &PreparedDataset, method: Method, seed: u64) -> MethodReport {
    let gold = prepared.test_gold();
    let started = Instant::now();
    let (train_secs, predictions): (f64, Vec<String>) = match method {
        Method::RcaCopilot(profile) => {
            let config = RcaCopilotConfig {
                profile,
                llm_seed: seed,
                ..RcaCopilotConfig::default()
            };
            let plan = InferencePlan::default();
            let copilot = RcaCopilot::train(&prepared.train_examples(&plan.spec), config);
            let train_secs = started.elapsed().as_secs_f64();
            (train_secs, plan_predictions(prepared, &copilot, &plan))
        }
        Method::LmEmbed => {
            let config = RcaCopilotConfig {
                profile: ModelProfile::Gpt4,
                llm_seed: seed,
                ..RcaCopilotConfig::default()
            };
            let plan = InferencePlan::default();
            let copilot = RcaCopilot::train_with_embedder(
                &prepared.train_examples(&plan.spec),
                Embedder::GenericLm { dim: 64 },
                config,
            );
            let train_secs = started.elapsed().as_secs_f64();
            (train_secs, plan_predictions(prepared, &copilot, &plan))
        }
        Method::FastText => {
            let model = FastTextBaseline::train(&prepared.raw_train_pairs());
            let train_secs = started.elapsed().as_secs_f64();
            let preds = parallel_map(&prepared.test, |&i| {
                model.predict(&prepared.incidents[i].raw_diag)
            });
            (train_secs, preds)
        }
        Method::Xgboost => {
            let model = XgboostBaseline::train(&prepared.raw_train_pairs());
            let train_secs = started.elapsed().as_secs_f64();
            let preds = parallel_map(&prepared.test, |&i| {
                model.predict(&prepared.incidents[i].raw_diag)
            });
            (train_secs, preds)
        }
        Method::FineTune => {
            let model = FineTuneBaseline::train(&prepared.raw_train_pairs());
            let train_secs = started.elapsed().as_secs_f64();
            let preds = parallel_map(&prepared.test, |&i| {
                model.predict(&prepared.incidents[i].raw_diag)
            });
            (train_secs, preds)
        }
        Method::ZeroShot => {
            let model = ZeroShotBaseline::new(ModelProfile::Gpt4, seed);
            let preds = parallel_map(&prepared.test, |&i| {
                model.predict(&prepared.incidents[i].summary)
            });
            (0.0, preds)
        }
    };
    let total = started.elapsed().as_secs_f64();
    let infer_secs_avg = (total - train_secs).max(0.0) / prepared.test.len().max(1) as f64;
    MethodReport {
        name: method.name(),
        f1: f1_scores(&gold, &predictions),
        train_secs,
        infer_secs_avg,
        predictions,
    }
}

/// Executes `plan` over the test split against the pipeline's frozen
/// index — the batch plane's evaluation loop, expressed as a plan
/// execution. The memo caches are shared across the whole split, so
/// flapping storms (byte-identical diagnostics) summarize and embed once.
pub fn plan_predictions(
    prepared: &PreparedDataset,
    copilot: &RcaCopilot,
    plan: &InferencePlan,
) -> Vec<String> {
    let stage = CollectionStage::standard();
    let caches = PlanCaches::new(8);
    let executor = PlanExecutor::new(copilot, &stage, plan, &caches);
    parallel_map(&prepared.test, |&i| {
        executor
            .run_prepared(&prepared.incidents[i], copilot.index())
            .label
    })
}

/// Runs RCACopilot for several rounds with different LLM noise seeds —
/// the trustworthiness protocol of §5.6.
pub fn stability_rounds(
    prepared: &PreparedDataset,
    profile: ModelProfile,
    seeds: &[u64],
) -> Vec<F1Report> {
    seeds
        .iter()
        .map(|&s| evaluate_method(prepared, Method::RcaCopilot(profile), s).f1)
        .collect()
}

/// Parallel map preserving order, scoped threads, no unsafe.
pub fn parallel_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(items.len().max(1));
    if threads <= 1 || items.len() < 8 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut results: Vec<Option<Vec<R>>> = (0..threads).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (slot, piece) in results.iter_mut().zip(items.chunks(chunk)) {
            let f = &f;
            scope.spawn(move || {
                *slot = Some(piece.iter().map(f).collect());
            });
        }
    });
    results.into_iter().flatten().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcacopilot_simcloud::noise::NoiseProfile;
    use rcacopilot_simcloud::{generate_dataset, CampaignConfig, Topology};

    fn prepared() -> PreparedDataset {
        let ds = generate_dataset(&CampaignConfig {
            seed: 5,
            topology: Topology::new(2, 4, 2, 2),
            noise: NoiseProfile {
                routine_logs: 6,
                herring_logs: 2,
                healthy_traces: 2,
                unrelated_failure: true,
                bystander_anomalies: 2,
            },
        });
        let split = ds.split(1, 0.75);
        PreparedDataset::prepare(&ds, &split)
    }

    #[test]
    fn preparation_fills_all_fields() {
        let p = prepared();
        assert_eq!(p.incidents.len(), 653);
        assert_eq!(p.train.len() + p.test.len(), 653);
        for inc in p.incidents.iter().take(30) {
            assert!(!inc.raw_diag.is_empty());
            assert!(!inc.summary.is_empty(), "{} summary empty", inc.category);
            assert!(!inc.alert_info.is_empty());
            assert!(!inc.action_output.is_empty());
            // The summary is a genuine compression.
            assert!(inc.summary.len() < inc.raw_diag.len());
        }
    }

    #[test]
    fn some_test_categories_are_unseen_in_training() {
        let p = prepared();
        let unseen = p.unseen_test_count();
        // 163 categories, many singletons: the 25% test slice holds some.
        assert!(unseen > 3, "unseen test incidents: {unseen}");
        assert!(unseen < p.test.len() / 2);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        let small = parallel_map(&items[..3], |&x| x + 1);
        assert_eq!(small, vec![1, 2, 3]);
    }

    #[test]
    fn zero_shot_is_cheap_and_scores_low() {
        let p = prepared();
        let report = evaluate_method(&p, Method::ZeroShot, 1);
        assert_eq!(report.predictions.len(), p.test.len());
        assert!(
            report.f1.micro_f1 < 0.2,
            "zero-shot should be weak: {}",
            report.f1.micro_f1
        );
    }
}
