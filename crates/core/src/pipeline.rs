//! The end-to-end RCACopilot pipeline (paper Figure 4, right half).

use crate::retrieval::{HistoricalEntry, HistoricalIndex, HistoryView, RetrievalConfig};
use rcacopilot_embed::{FastTextConfig, FastTextModel};
use rcacopilot_handlers::RunDegradation;
use rcacopilot_llm::prompt::{PredictionPrompt, PromptOption, CONTEXT_TOKENS};
use rcacopilot_llm::{CotEngine, ModelProfile, Summarizer};
use rcacopilot_telemetry::time::SimTime;
use rcacopilot_textkit::bpe::BpeTokenizer;
use rcacopilot_textkit::ngram::hash_token;
use serde::{Deserialize, Serialize};

/// One training example for the prediction stage.
#[derive(Debug, Clone)]
pub struct TrainExample {
    /// Raw collected diagnostic text ("original incident information" —
    /// what the paper embeds for nearest-neighbor search).
    pub raw_diag: String,
    /// Demonstration text shown in prompts (normally the summary).
    pub demo_text: String,
    /// Ground-truth category.
    pub category: String,
    /// Occurrence time.
    pub at: SimTime,
}

/// Pipeline configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RcaCopilotConfig {
    /// Simulated LLM capability profile.
    pub profile: ModelProfile,
    /// Retrieval parameters (K, α).
    pub retrieval: RetrievalConfig,
    /// Embedding model hyperparameters.
    pub embedding: FastTextConfig,
    /// Seed of the LLM's noise stream (varied per round in §5.6).
    pub llm_seed: u64,
    /// Embeddings are L2-normalized and multiplied by this scale before
    /// entering the similarity formula. The scale balances the spatial
    /// term `1/(1+‖a−b‖)` against the temporal decay `e^(−α·Δt)`: unit
    /// vectors alone span distances of at most 2, which a few days of
    /// decay would always override.
    pub embedding_scale: f64,
}

impl Default for RcaCopilotConfig {
    fn default() -> Self {
        RcaCopilotConfig {
            profile: ModelProfile::Gpt4,
            retrieval: RetrievalConfig::default(),
            embedding: FastTextConfig {
                dim: 64,
                epochs: 30,
                lr: 0.35,
                ..FastTextConfig::default()
            },
            llm_seed: 1,
            embedding_scale: 12.0,
        }
    }
}

/// How the pipeline embeds incident text.
#[derive(Debug, Clone)]
pub enum Embedder {
    /// The trained FastText model (the paper's choice).
    FastText(Box<FastTextModel>),
    /// A generic, untrained LM-style embedding: hashed character trigrams
    /// pseudo-randomly projected to `dim` dimensions. This is the
    /// "GPT-4 Embed." baseline — plausible semantics, no domain training.
    GenericLm {
        /// Embedding dimension.
        dim: usize,
    },
}

impl Embedder {
    /// Embeds one text.
    pub fn embed(&self, text: &str) -> Vec<f32> {
        match self {
            Embedder::FastText(m) => m.embed(text),
            Embedder::GenericLm { dim } => generic_lm_embedding(text, *dim),
        }
    }
}

/// L2-normalizes a vector and multiplies it by `scale`; zero vectors pass
/// through unchanged.
fn scaled(mut v: Vec<f32>, scale: f64) -> Vec<f32> {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        let factor = scale as f32 / norm;
        for x in &mut v {
            *x *= factor;
        }
    }
    v
}

/// Hashed-trigram random-projection embedding (no training), with the
/// *anisotropy* of real general-purpose LM embeddings: a dominant shared
/// bias direction compresses pairwise distances between arbitrary
/// documents into a narrow band, so the spatial similarity term carries
/// little domain signal — exactly the failure mode behind the paper's
/// weak "GPT-4 Embed." row.
pub fn generic_lm_embedding(text: &str, dim: usize) -> Vec<f32> {
    /// Relative magnitude of the shared bias component.
    const ANISOTROPY: f32 = 60.0;
    let canon = rcacopilot_textkit::normalize::normalize(text);
    let chars: Vec<char> = canon.chars().collect();
    let mut v = vec![0.0f32; dim];
    if chars.len() < 3 {
        return v;
    }
    let mut count = 0f32;
    for w in chars.windows(3) {
        let g: String = w.iter().collect();
        let h = hash_token(&g);
        let d = (h % dim as u64) as usize;
        let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
        v[d] += sign;
        count += 1.0;
    }
    if count > 0.0 {
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm > 0.0 {
            for x in &mut v {
                *x /= norm;
            }
        }
        // Shared bias direction: alternating unit pattern common to all
        // documents.
        for (i, x) in v.iter_mut().enumerate() {
            let b = if i % 2 == 0 { 1.0 } else { -1.0 };
            *x += ANISOTROPY * b / (dim as f32).sqrt();
        }
    }
    v
}

/// The pipeline's answer for one incident.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RcaPrediction {
    /// Predicted category (or synthesized new-category label).
    pub label: String,
    /// True when the LLM chose "Unseen incident".
    pub unseen: bool,
    /// The LLM's confidence in the chosen option, downgraded in
    /// proportion to diagnostic completeness when collection degraded.
    pub confidence: f64,
    /// Natural-language explanation.
    pub explanation: String,
    /// Categories of the retrieved demonstrations, in prompt order.
    pub demo_categories: Vec<String>,
    /// Completeness of the diagnostics behind this prediction (`1.0`
    /// when collection saw no faults).
    pub completeness: f64,
}

/// The trained RCACopilot prediction stage.
#[derive(Debug, Clone)]
pub struct RcaCopilot {
    config: RcaCopilotConfig,
    embedder: Embedder,
    index: HistoricalIndex,
    summarizer: Summarizer,
    tokenizer: BpeTokenizer,
}

impl RcaCopilot {
    /// Trains the full stage: FastText embedder on the raw diagnostics,
    /// then the historical index over the training incidents.
    ///
    /// # Panics
    ///
    /// Panics if `examples` is empty.
    pub fn train(examples: &[TrainExample], config: RcaCopilotConfig) -> Self {
        assert!(!examples.is_empty(), "training set must not be empty");
        let pairs: Vec<(String, String)> = examples
            .iter()
            .map(|e| (e.raw_diag.clone(), e.category.clone()))
            .collect();
        let embedder = Embedder::FastText(Box::new(FastTextModel::train(
            &pairs,
            config.embedding.clone(),
        )));
        Self::train_with_embedder(examples, embedder, config)
    }

    /// Trains the stage around a caller-provided embedder (used by the
    /// GPT-4 Embed. baseline and by ablations that share one embedder).
    pub fn train_with_embedder(
        examples: &[TrainExample],
        embedder: Embedder,
        config: RcaCopilotConfig,
    ) -> Self {
        assert!(!examples.is_empty(), "training set must not be empty");
        let mut index = HistoricalIndex::new();
        for (i, e) in examples.iter().enumerate() {
            index.add(HistoricalEntry {
                id: i,
                category: e.category.clone(),
                summary: e.demo_text.clone(),
                at: e.at,
                embedding: scaled(embedder.embed(&e.raw_diag), config.embedding_scale),
            });
        }
        // Token accounting uses a BPE tokenizer fitted on the demo corpus.
        let corpus: Vec<String> = examples.iter().map(|e| e.demo_text.clone()).collect();
        let tokenizer = BpeTokenizer::train(&corpus, 800);
        RcaCopilot {
            config,
            embedder,
            index,
            summarizer: Summarizer::default(),
            tokenizer,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RcaCopilotConfig {
        &self.config
    }

    /// The summarizer used for diagnostic compression.
    pub fn summarizer(&self) -> &Summarizer {
        &self.summarizer
    }

    /// Number of indexed historical incidents.
    pub fn history_len(&self) -> usize {
        self.index.len()
    }

    /// The historical index (read access, e.g. for inspection tooling).
    pub fn index(&self) -> &HistoricalIndex {
        &self.index
    }

    /// Embeds text exactly as retrieval does (normalized and scaled).
    pub fn embed_scaled(&self, text: &str) -> Vec<f32> {
        scaled(self.embedder.embed(text), self.config.embedding_scale)
    }

    /// Predicts with the configured retrieval parameters.
    pub fn predict(&self, raw_diag: &str, input_text: &str, at: SimTime) -> RcaPrediction {
        self.predict_with(raw_diag, input_text, at, &self.config.retrieval)
    }

    /// Predicts with explicit retrieval parameters (Figure 12 sweeps).
    ///
    /// `raw_diag` drives the embedding/nearest-neighbor search (the
    /// paper's "original incident information"); `input_text` is the
    /// prompt input (normally the summarized diagnostics).
    pub fn predict_with(
        &self,
        raw_diag: &str,
        input_text: &str,
        at: SimTime,
        retrieval: &RetrievalConfig,
    ) -> RcaPrediction {
        self.predict_impl(
            raw_diag,
            input_text,
            at,
            retrieval,
            &RunDegradation::default(),
        )
    }

    /// Predicts from degraded diagnostics: when the collection stage ran
    /// under faults (`degradation.completeness() < 1.0`), the prompt is
    /// annotated with a data-completeness warning and the returned
    /// confidence is downgraded in proportion to completeness.
    ///
    /// With a fault-free degradation record this is exactly
    /// [`RcaCopilot::predict`] — same prompt bytes, same answer.
    pub fn predict_degraded(
        &self,
        raw_diag: &str,
        input_text: &str,
        at: SimTime,
        degradation: &RunDegradation,
    ) -> RcaPrediction {
        self.predict_impl(
            raw_diag,
            input_text,
            at,
            &self.config.retrieval,
            degradation,
        )
    }

    fn predict_impl(
        &self,
        raw_diag: &str,
        input_text: &str,
        at: SimTime,
        retrieval: &RetrievalConfig,
        degradation: &RunDegradation,
    ) -> RcaPrediction {
        let query = self.embed_scaled(raw_diag);
        self.predict_from_query(&self.index, &query, input_text, at, retrieval, degradation)
    }

    /// The retrieval + prompting + LLM stages, decoupled from embedding
    /// and from this pipeline's own frozen index.
    ///
    /// This is the per-incident stage surface the online serving engine
    /// composes: `query` is a scaled embedding (normally
    /// [`RcaCopilot::embed_scaled`] of the raw diagnostics, possibly
    /// memoized), and `history` is whichever [`HistoryView`] should
    /// answer retrieval — the trained index, or an epoch snapshot of an
    /// incrementally growing one. Calling this with `self.index()` and a
    /// freshly embedded query is exactly [`RcaCopilot::predict`].
    pub fn predict_from_query(
        &self,
        history: &dyn HistoryView,
        query: &[f32],
        input_text: &str,
        at: SimTime,
        retrieval: &RetrievalConfig,
        degradation: &RunDegradation,
    ) -> RcaPrediction {
        let neighbors = history.top_k_diverse(query, at, retrieval);
        let mut prompt = PredictionPrompt::new(
            input_text,
            neighbors
                .iter()
                .map(|n| PromptOption {
                    summary: n.entry.summary.as_str().into(),
                    category: n.entry.category.as_str().into(),
                })
                .collect(),
        );
        let completeness = degradation.completeness();
        if completeness < 1.0 {
            prompt.degradation_note = Some(format!(
                "{}; treat missing evidence as unknown rather than absent.",
                degradation.summary()
            ));
        }
        prompt.truncate_to_budget(&self.tokenizer, CONTEXT_TOKENS);
        let engine = CotEngine::new(self.config.profile, self.config.llm_seed);
        let pred = engine.predict(&prompt);
        let mut confidence = pred.confidence;
        let mut explanation = pred.explanation;
        if completeness < 1.0 {
            // Partial evidence cannot support full confidence: scale it
            // down and say so, mirroring how an OCE hedges a diagnosis
            // made from incomplete telemetry.
            confidence *= completeness;
            explanation.push_str(&format!(
                " Note: diagnostics were incomplete ({}); confidence downgraded to reflect \
                 completeness {:.0}%.",
                degradation.summary(),
                completeness * 100.0
            ));
        }
        RcaPrediction {
            label: pred.label,
            unseen: pred.unseen,
            confidence,
            explanation,
            demo_categories: prompt
                .options
                .into_iter()
                .map(|o| o.category.into_owned())
                .collect(),
            completeness,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example(cat: &str, day: u64, text: &str) -> TrainExample {
        TrainExample {
            raw_diag: format!("{text} with routine noise accepted connection heartbeat ok"),
            demo_text: text.to_string(),
            category: cat.to_string(),
            at: SimTime::from_days(day),
        }
    }

    fn training_set() -> Vec<TrainExample> {
        let mut out = Vec::new();
        for d in 0..6 {
            out.push(example(
                "HubPortExhaustion",
                40 + d,
                "DatacenterHubOutboundProxyProbe failed WinSock error 11001 Total UDP socket count 15276 Transport.exe",
            ));
            out.push(example(
                "FullDisk",
                60 + d,
                "System.IO.IOException not enough space on the disk processes crashed DiagnosticsLog",
            ));
            out.push(example(
                "InvalidJournaling",
                80 + d,
                "TenantSettingsNotFoundException JournalingReportNdrTo invalid submission queue over limit",
            ));
        }
        out
    }

    fn quick_config() -> RcaCopilotConfig {
        RcaCopilotConfig {
            embedding: FastTextConfig {
                dim: 24,
                epochs: 10,
                lr: 0.4,
                features: rcacopilot_embed::FeatureExtractor {
                    buckets: 1 << 12,
                    ..rcacopilot_embed::FeatureExtractor::default()
                },
                ..FastTextConfig::default()
            },
            ..RcaCopilotConfig::default()
        }
    }

    #[test]
    fn pipeline_predicts_recurring_category() {
        let copilot = RcaCopilot::train(&training_set(), quick_config());
        assert_eq!(copilot.history_len(), 18);
        let pred = copilot.predict(
            "DatacenterHubOutboundProxyProbe failed twice WinSock error 11001 UDP socket count 14800 Transport.exe noise here",
            "The DatacenterHubOutboundProxyProbe failed twice with WinSock error 11001; total UDP socket count 14800 mostly Transport.exe.",
            SimTime::from_days(47),
        );
        assert_eq!(pred.label, "HubPortExhaustion");
        assert!(!pred.unseen);
        assert!(pred
            .demo_categories
            .contains(&"HubPortExhaustion".to_string()));
        assert!(!pred.explanation.is_empty());
    }

    #[test]
    fn demonstrations_come_from_distinct_categories() {
        let copilot = RcaCopilot::train(&training_set(), quick_config());
        let pred = copilot.predict(
            "System.IO.IOException not enough space disk crash",
            "System.IO.IOException: not enough space on the disk; crashes observed.",
            SimTime::from_days(62),
        );
        let mut cats = pred.demo_categories.clone();
        cats.sort();
        cats.dedup();
        assert_eq!(cats.len(), pred.demo_categories.len());
    }

    #[test]
    fn unseen_incident_synthesizes_label() {
        let copilot = RcaCopilot::train(&training_set(), quick_config());
        let pred = copilot.predict(
            "KRB_AP_ERR_SKEW clock skew too great Kerberos authentication retries latency",
            "KRB_AP_ERR_SKEW: clock skew too great between client and KDC; retries inflate latency.",
            SimTime::from_days(100),
        );
        assert!(pred.unseen, "confidence {}", pred.confidence);
        assert!(!pred.label.is_empty());
        assert!(pred.explanation.contains("unseen"));
    }

    #[test]
    fn alpha_zero_vs_high_changes_recency_preference() {
        // Two categories with *identical* diagnostic text, one old, one
        // recent: only the temporal term can separate them.
        let examples = vec![
            example("OldCategory", 10, "IdenticalSignatureException replicated"),
            example("NewCategory", 99, "IdenticalSignatureException replicated"),
        ];
        let copilot = RcaCopilot::train(&examples, quick_config());
        let pred_decayed = copilot.predict_with(
            "IdenticalSignatureException replicated noise",
            "IdenticalSignatureException replicated.",
            SimTime::from_days(100),
            &RetrievalConfig {
                k: 1,
                alpha: 0.3,
                ..RetrievalConfig::default()
            },
        );
        assert_eq!(
            pred_decayed.demo_categories,
            vec!["NewCategory".to_string()]
        );
    }

    #[test]
    fn generic_lm_embedding_is_deterministic_and_normalized() {
        let a = generic_lm_embedding("udp socket exhausted", 32);
        let b = generic_lm_embedding("udp socket exhausted", 32);
        assert_eq!(a, b);
        assert_eq!(a.len(), 32);
        let norm: f32 = a.iter().map(|x| x * x).sum::<f32>();
        assert!(norm > 0.0);
        let short = generic_lm_embedding("ab", 32);
        assert!(short.iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_training_panics() {
        let _ = RcaCopilot::train(&[], quick_config());
    }
}
