//! The unified inference plan: one typed stage graph executed by both
//! the batch plane and the online serving plane.
//!
//! RCACopilot is one pipeline — collect → summarize → assemble-context →
//! embed → retrieve → predict — but it used to be executed from two
//! divergent code paths: the batch harness re-derived the chain around
//! `PreparedIncident` with no caching, while the serving engine
//! re-implemented it inline with memo caches and [`ContextSpec`] gating.
//! [`InferencePlan`] makes the chain a value:
//!
//! - the [`ContextSpec`] gates which stages run (no summarization when
//!   the context omits summarized diagnostics) and how the prompt input
//!   is assembled;
//! - the retrieval parameters are part of the plan, so ablations
//!   (Table 3 rows, Figure 12 cells) are plan *configurations* rather
//!   than forked evaluation loops;
//! - the [`MemoPolicy`] decides which stages are memoized and under what
//!   notion of text equivalence, through [`PlanCaches`] shared by every
//!   executor of the same run.
//!
//! [`PlanExecutor`] executes the plan for one incident at a time. It is
//! deliberately free of scheduling concerns: the serving engine wraps it
//! with virtual-time costs, admission, watermarks and fault attribution;
//! the batch harness maps it over a prepared dataset. Both produce the
//! same bytes for the same inputs — the parity the serving tests and the
//! batch≡serve proptest pin down.

use crate::collection::{CollectedIncident, CollectionError, CollectionStage};
use crate::context::ContextSpec;
use crate::eval::PreparedIncident;
use crate::memo::{ExactMemo, MemoCache, MemoPolicy, NamespacedMemo};
use crate::pipeline::{RcaCopilot, RcaPrediction};
use crate::retrieval::{HistoryView, RetrievalConfig};
use rcacopilot_handlers::RunDegradation;
use rcacopilot_llm::Summarizer;
use rcacopilot_simcloud::Incident;
use rcacopilot_telemetry::SimTime;
use std::sync::Arc;

/// A configured inference stage chain: context gating, retrieval
/// parameters, and the memoization policy.
#[derive(Debug, Clone)]
pub struct InferencePlan {
    /// Prompt-context configuration; gates the summarize stage and
    /// drives context assembly.
    pub spec: ContextSpec,
    /// Retrieval parameters, or `None` to use the pipeline's configured
    /// ones. Figure 12 sweep cells override this per plan.
    pub retrieval: Option<RetrievalConfig>,
    /// Which stages are memoized, and under what text equivalence.
    pub policy: Arc<dyn MemoPolicy>,
}

impl Default for InferencePlan {
    fn default() -> Self {
        InferencePlan::new(ContextSpec::default())
    }
}

impl InferencePlan {
    /// A plan for `spec` with the pipeline's retrieval parameters and the
    /// exact content-hash memo policy.
    pub fn new(spec: ContextSpec) -> Self {
        InferencePlan {
            spec,
            retrieval: None,
            policy: Arc::new(ExactMemo),
        }
    }

    /// Replaces the memo policy.
    pub fn with_policy(mut self, policy: Arc<dyn MemoPolicy>) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the retrieval parameters.
    pub fn with_retrieval(mut self, retrieval: RetrievalConfig) -> Self {
        self.retrieval = Some(retrieval);
        self
    }

    /// Scopes the plan's memo keys to a tenant namespace by wrapping the
    /// current policy in [`NamespacedMemo`]. Namespace `0` (the root) is
    /// a no-op, so single-tenant plans stay byte-identical.
    pub fn with_namespace(mut self, namespace: u64) -> Self {
        if namespace != 0 {
            self.policy = Arc::new(NamespacedMemo::new(self.policy, namespace));
        }
        self
    }

    /// The stages this plan executes, in order, after gating. The
    /// summarize stage drops out when the context spec never renders a
    /// summary.
    pub fn stages(&self) -> Vec<&'static str> {
        let mut stages = vec!["collect"];
        if self.summarize_gated() {
            stages.push("summarize");
        }
        stages.extend(["assemble", "embed", "retrieve", "predict"]);
        stages
    }

    /// True when the summarize stage runs under this plan's spec.
    pub fn summarize_gated(&self) -> bool {
        self.spec.diagnostic_info && self.spec.summarized
    }
}

/// Memoization caches shared by every executor of one run — the seam the
/// [`MemoPolicy`] keys into.
#[derive(Debug, Default)]
pub struct PlanCaches {
    /// Summarization results, keyed by [`MemoPolicy::summary_key`].
    pub summary: MemoCache<String>,
    /// Scaled embeddings, keyed by [`MemoPolicy::embed_key`].
    pub embed: MemoCache<Vec<f32>>,
}

impl PlanCaches {
    /// Caches with `shards` lock domains each (clamped to ≥ 1).
    pub fn new(shards: usize) -> Self {
        PlanCaches {
            summary: MemoCache::new(shards),
            embed: MemoCache::new(shards),
        }
    }

    /// Total poisoned-lock recoveries across both caches; the serving
    /// engine folds this into its fault counters at report time.
    pub fn poison_recoveries(&self) -> u64 {
        self.summary.poison_recoveries() + self.embed.poison_recoveries()
    }
}

/// How the summarize stage runs for one incident.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SummarizeMode {
    /// The full LLM summarization (memoized per the plan's policy).
    Full,
    /// The degraded-mode word-truncation substitute
    /// ([`truncated_summary`]), used by the serving engine under load
    /// shedding. Never cached: it is cheaper than a cache probe.
    TruncatedDegraded,
}

/// Cheap degraded-mode replacement for LLM summarization: the first 60
/// words of the raw diagnostics.
pub fn truncated_summary(raw_diag: &str) -> String {
    raw_diag
        .split_whitespace()
        .take(60)
        .collect::<Vec<_>>()
        .join(" ")
}

/// Runs the summarize stage through `cache` under `policy` — the one
/// definition both planes (and dataset preparation) share. A `None` key
/// bypasses the cache.
pub fn memoized_summary(
    summarizer: &Summarizer,
    raw_diag: &str,
    policy: &dyn MemoPolicy,
    cache: &MemoCache<String>,
) -> String {
    match policy.summary_key(raw_diag) {
        Some(key) => cache.get_or_insert_with(key, || summarizer.summarize(raw_diag)),
        None => summarizer.summarize(raw_diag),
    }
}

/// Observer of per-stage execution on the serving path.
///
/// [`PlanExecutor::run_incident`] reports each completed stage — by the
/// [`InferencePlan::stages`] names, with `retrieve` and `predict` fused
/// under `"predict"` — together with its measured wall-clock duration.
/// The serving engine's real-clock backend hangs stage sleeps, tracing
/// events and wall histograms off this seam; with no hook installed
/// (the default, and always the DES path) the executor takes no clock
/// readings at all, so batch and virtual-mode outputs are untouched.
pub trait StageHook: Sync {
    /// Called after `stage` completed, with its wall-clock duration.
    fn on_stage(&self, stage: &'static str, wall_nanos: u64);
}

/// Everything the plan produced for one incident: the per-stage outputs
/// the caller may need downstream (the serving engine turns `input_text`
/// and `query` into the online index entry).
#[derive(Debug, Clone)]
pub struct PlanOutcome {
    /// The collection stage's output.
    pub collected: CollectedIncident,
    /// Raw handler-collected diagnostic text.
    pub raw_diag: String,
    /// The (possibly gated-empty, possibly truncated) summary.
    pub summary: String,
    /// The assembled prompt-context text.
    pub input_text: String,
    /// The scaled embedding of the raw diagnostics.
    pub query: Vec<f32>,
    /// The pipeline's prediction.
    pub prediction: RcaPrediction,
}

/// Executes an [`InferencePlan`] over a trained pipeline, one incident at
/// a time. Pure in its inputs: worker identity, wall-clock time, and
/// cache hit/miss patterns never leak into the outputs (under an exact or
/// disabled memo policy — see [`crate::memo::ShingleMemo`] for the
/// near-dup caveat).
pub struct PlanExecutor<'a> {
    copilot: &'a RcaCopilot,
    stage: &'a CollectionStage,
    plan: &'a InferencePlan,
    caches: &'a PlanCaches,
    hook: Option<&'a dyn StageHook>,
}

impl std::fmt::Debug for PlanExecutor<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanExecutor")
            .field("plan", &self.plan)
            .field("hooked", &self.hook.is_some())
            .finish_non_exhaustive()
    }
}

impl<'a> PlanExecutor<'a> {
    /// Binds a plan to a trained pipeline, a collection stage, and the
    /// run's shared caches.
    pub fn new(
        copilot: &'a RcaCopilot,
        stage: &'a CollectionStage,
        plan: &'a InferencePlan,
        caches: &'a PlanCaches,
    ) -> Self {
        PlanExecutor {
            copilot,
            stage,
            plan,
            caches,
            hook: None,
        }
    }

    /// Installs a per-stage observer (see [`StageHook`]).
    pub fn with_hook(mut self, hook: &'a dyn StageHook) -> Self {
        self.hook = Some(hook);
        self
    }

    /// Runs one stage body, reporting its wall duration to the hook when
    /// one is installed; otherwise reads no clock at all.
    fn timed<T>(&self, stage: &'static str, body: impl FnOnce() -> T) -> T {
        match self.hook {
            None => body(),
            Some(hook) => {
                let t0 = std::time::Instant::now();
                let out = body();
                hook.on_stage(stage, t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
                out
            }
        }
    }

    /// The bound plan.
    pub fn plan(&self) -> &InferencePlan {
        self.plan
    }

    /// The run's shared caches.
    pub fn caches(&self) -> &PlanCaches {
        self.caches
    }

    /// Stage 1 — collection: the incident's handler gathers multi-source
    /// diagnostics.
    ///
    /// # Errors
    ///
    /// Returns the [`CollectionError`] when the handler chain failed
    /// terminally; the serving engine degrades such events to dead-letter
    /// records.
    pub fn collect(&self, incident: &Incident) -> Result<CollectedIncident, CollectionError> {
        self.stage.collect(incident)
    }

    /// Stage 2 — summarization, gated by the plan's context spec: an
    /// empty string when the spec never renders a summary, the truncation
    /// substitute in degraded mode, the (policy-memoized) LLM summary
    /// otherwise.
    pub fn summarize(&self, raw_diag: &str, mode: SummarizeMode) -> String {
        if !self.plan.summarize_gated() {
            return String::new();
        }
        match mode {
            SummarizeMode::TruncatedDegraded => truncated_summary(raw_diag),
            SummarizeMode::Full => memoized_summary(
                self.copilot.summarizer(),
                raw_diag,
                self.plan.policy.as_ref(),
                &self.caches.summary,
            ),
        }
    }

    /// Stage 3 — context assembly: renders the prompt input under the
    /// plan's spec.
    pub fn assemble(&self, collected: &CollectedIncident, raw_diag: &str, summary: &str) -> String {
        self.plan.spec.render_parts(
            &collected.alert_info,
            raw_diag,
            summary,
            &collected.run.action_output_text(),
        )
    }

    /// Stage 4 — embedding: the scaled retrieval embedding of `text`,
    /// memoized per the plan's policy.
    pub fn embed(&self, text: &str) -> Vec<f32> {
        match self.plan.policy.embed_key(text) {
            Some(key) => self
                .caches
                .embed
                .get_or_insert_with(key, || self.copilot.embed_scaled(text)),
            None => self.copilot.embed_scaled(text),
        }
    }

    /// Stages 4–6 — embed, retrieve, predict: embeds `embed_text`
    /// (memoized), retrieves from `history` at `at` with the plan's
    /// retrieval parameters, and predicts over `input_text`.
    pub fn predict_text(
        &self,
        history: &dyn HistoryView,
        embed_text: &str,
        input_text: &str,
        at: SimTime,
        degradation: &RunDegradation,
    ) -> RcaPrediction {
        let query = self.embed(embed_text);
        self.predict_query(history, &query, input_text, at, degradation)
    }

    /// Stages 5–6 over an already-embedded query.
    pub fn predict_query(
        &self,
        history: &dyn HistoryView,
        query: &[f32],
        input_text: &str,
        at: SimTime,
        degradation: &RunDegradation,
    ) -> RcaPrediction {
        let retrieval = self
            .plan
            .retrieval
            .as_ref()
            .unwrap_or(&self.copilot.config().retrieval);
        self.copilot
            .predict_from_query(history, query, input_text, at, retrieval, degradation)
    }

    /// The full stage chain for one raw incident: collect → summarize →
    /// assemble → embed → retrieve → predict against `history` at
    /// virtual instant `at`.
    ///
    /// # Errors
    ///
    /// Returns the [`CollectionError`] when collection failed terminally.
    pub fn run_incident(
        &self,
        incident: &Incident,
        at: SimTime,
        history: &dyn HistoryView,
        mode: SummarizeMode,
    ) -> Result<PlanOutcome, CollectionError> {
        let collected = self.timed("collect", || self.collect(incident))?;
        let raw_diag = collected.diagnostic_text();
        let summary = self.timed("summarize", || self.summarize(&raw_diag, mode));
        let input_text = self.timed("assemble", || {
            self.assemble(&collected, &raw_diag, &summary)
        });
        let query = self.timed("embed", || self.embed(&raw_diag));
        let prediction = self.timed("predict", || {
            self.predict_query(history, &query, &input_text, at, &collected.run.degradation)
        });
        Ok(PlanOutcome {
            collected,
            raw_diag,
            summary,
            input_text,
            query,
            prediction,
        })
    }

    /// The plan over an already-prepared incident (batch evaluation):
    /// collection and summarization were done at dataset preparation, so
    /// this runs assemble → embed → retrieve → predict. The embedding is
    /// of the raw diagnostics, exactly as [`run_incident`] embeds them.
    ///
    /// [`run_incident`]: PlanExecutor::run_incident
    pub fn run_prepared(&self, inc: &PreparedIncident, history: &dyn HistoryView) -> RcaPrediction {
        let input_text = self.plan.spec.render_parts(
            &inc.alert_info,
            &inc.raw_diag,
            &inc.summary,
            &inc.action_output,
        );
        self.predict_text(
            history,
            &inc.raw_diag,
            &input_text,
            inc.at,
            &inc.degradation,
        )
    }

    /// Executes the plan sequentially over a batch of arrival events —
    /// the batch plane's equivalent of a frozen-replay serving run.
    /// `arrivals` pairs an index into `incidents` with a virtual arrival
    /// instant; results come back in the same order.
    ///
    /// Sequential on purpose: with a near-duplicate memo policy the
    /// first-inserted summary wins, and a deterministic visit order keeps
    /// the outputs reproducible where a thread pool would not.
    pub fn run_batch(
        &self,
        incidents: &[Incident],
        arrivals: &[(usize, SimTime)],
        history: &dyn HistoryView,
    ) -> Vec<Result<PlanOutcome, CollectionError>> {
        arrivals
            .iter()
            .map(|&(idx, at)| self.run_incident(&incidents[idx], at, history, SummarizeMode::Full))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::PreparedDataset;
    use crate::memo::NoMemo;
    use crate::pipeline::RcaCopilotConfig;
    use rcacopilot_embed::{FastTextConfig, FeatureExtractor};
    use rcacopilot_simcloud::noise::NoiseProfile;
    use rcacopilot_simcloud::{generate_dataset, CampaignConfig, IncidentDataset, Topology};

    fn dataset() -> IncidentDataset {
        generate_dataset(&CampaignConfig {
            seed: 23,
            topology: Topology::new(2, 4, 2, 2),
            noise: NoiseProfile::default(),
        })
    }

    fn quick_config() -> RcaCopilotConfig {
        RcaCopilotConfig {
            embedding: FastTextConfig {
                dim: 16,
                epochs: 4,
                lr: 0.4,
                features: FeatureExtractor {
                    buckets: 1 << 10,
                    ..FeatureExtractor::default()
                },
                ..FastTextConfig::default()
            },
            ..RcaCopilotConfig::default()
        }
    }

    fn trained() -> (RcaCopilot, PreparedDataset, IncidentDataset) {
        let ds = dataset();
        let split = ds.split(3, 0.7);
        let prepared = PreparedDataset::prepare(&ds, &split);
        let copilot = RcaCopilot::train(
            &prepared.train_examples(&ContextSpec::default()),
            quick_config(),
        );
        (copilot, prepared, ds)
    }

    #[test]
    fn stage_listing_follows_spec_gating() {
        let full = InferencePlan::default();
        assert_eq!(
            full.stages(),
            vec![
                "collect",
                "summarize",
                "assemble",
                "embed",
                "retrieve",
                "predict"
            ]
        );
        let unsummarized = InferencePlan::new(ContextSpec {
            summarized: false,
            ..ContextSpec::default()
        });
        assert!(!unsummarized.stages().contains(&"summarize"));
    }

    #[test]
    fn run_prepared_matches_bespoke_predict_degraded() {
        let (copilot, prepared, _ds) = trained();
        let spec = ContextSpec::default();
        let plan = InferencePlan::new(spec);
        let caches = PlanCaches::new(1);
        let stage = CollectionStage::standard();
        let executor = PlanExecutor::new(&copilot, &stage, &plan, &caches);
        for &i in prepared.test.iter().take(8) {
            let inc = &prepared.incidents[i];
            let via_plan = executor.run_prepared(inc, copilot.index());
            let bespoke = copilot.predict_degraded(
                &inc.raw_diag,
                &prepared.context_text(i, &spec),
                inc.at,
                &inc.degradation,
            );
            assert_eq!(via_plan, bespoke, "incident {i} diverged");
        }
        let (hits, misses) = caches.embed.stats();
        assert_eq!(
            hits + misses,
            8,
            "every prediction embeds through the cache"
        );
    }

    #[test]
    fn run_incident_memoizes_repeats_without_changing_output() {
        let (copilot, _prepared, ds) = trained();
        let plan = InferencePlan::default();
        let caches = PlanCaches::new(2);
        let stage = CollectionStage::standard();
        let executor = PlanExecutor::new(&copilot, &stage, &plan, &caches);
        let inc = &ds.incidents()[0];
        let at = inc.occurred_at();
        let first = executor
            .run_incident(inc, at, copilot.index(), SummarizeMode::Full)
            .expect("handler registered");
        let second = executor
            .run_incident(inc, at, copilot.index(), SummarizeMode::Full)
            .expect("handler registered");
        assert_eq!(first.prediction, second.prediction);
        assert_eq!(first.summary, second.summary);
        assert_eq!(first.query, second.query);
        let (sum_hits, _) = caches.summary.stats();
        let (emb_hits, _) = caches.embed.stats();
        assert_eq!(sum_hits, 1, "second summarization must hit");
        assert_eq!(emb_hits, 1, "second embedding must hit");

        // NoMemo executes identically, just without cache traffic.
        let no_plan = InferencePlan::default().with_policy(Arc::new(NoMemo));
        let no_caches = PlanCaches::new(1);
        let no_exec = PlanExecutor::new(&copilot, &stage, &no_plan, &no_caches);
        let uncached = no_exec
            .run_incident(inc, at, copilot.index(), SummarizeMode::Full)
            .expect("handler registered");
        assert_eq!(uncached.prediction, first.prediction);
        assert!(no_caches.summary.is_empty());
        assert!(no_caches.embed.is_empty());
    }

    #[test]
    fn degraded_mode_truncates_instead_of_caching() {
        let (copilot, _prepared, ds) = trained();
        let plan = InferencePlan::default();
        let caches = PlanCaches::new(1);
        let stage = CollectionStage::standard();
        let executor = PlanExecutor::new(&copilot, &stage, &plan, &caches);
        let inc = &ds.incidents()[1];
        let out = executor
            .run_incident(
                inc,
                inc.occurred_at(),
                copilot.index(),
                SummarizeMode::TruncatedDegraded,
            )
            .expect("handler registered");
        assert_eq!(out.summary, truncated_summary(&out.raw_diag));
        assert!(
            caches.summary.is_empty(),
            "degraded summaries must not populate the cache"
        );
    }

    #[test]
    fn stage_hook_sees_every_stage_in_order_without_changing_output() {
        #[derive(Default)]
        struct Recorder(std::sync::Mutex<Vec<&'static str>>);
        impl StageHook for Recorder {
            fn on_stage(&self, stage: &'static str, _wall_nanos: u64) {
                self.0.lock().expect("test recorder lock").push(stage);
            }
        }
        let (copilot, _prepared, ds) = trained();
        let plan = InferencePlan::default();
        let stage = CollectionStage::standard();
        let inc = &ds.incidents()[0];
        let at = inc.occurred_at();

        let bare_caches = PlanCaches::new(1);
        let bare = PlanExecutor::new(&copilot, &stage, &plan, &bare_caches)
            .run_incident(inc, at, copilot.index(), SummarizeMode::Full)
            .expect("handler registered");

        let recorder = Recorder::default();
        let hooked_caches = PlanCaches::new(1);
        let hooked = PlanExecutor::new(&copilot, &stage, &plan, &hooked_caches)
            .with_hook(&recorder)
            .run_incident(inc, at, copilot.index(), SummarizeMode::Full)
            .expect("handler registered");

        assert_eq!(hooked.prediction, bare.prediction, "hook must be passive");
        assert_eq!(
            *recorder.0.lock().expect("test recorder lock"),
            vec!["collect", "summarize", "assemble", "embed", "predict"],
        );
    }

    #[test]
    fn retrieval_override_changes_the_plan_not_the_pipeline() {
        let (copilot, prepared, _ds) = trained();
        let caches = PlanCaches::new(1);
        let stage = CollectionStage::standard();
        let narrow = InferencePlan::default().with_retrieval(RetrievalConfig {
            k: 1,
            alpha: 0.3,
            ..RetrievalConfig::default()
        });
        let executor = PlanExecutor::new(&copilot, &stage, &narrow, &caches);
        let i = prepared.test[0];
        let pred = executor.run_prepared(&prepared.incidents[i], copilot.index());
        assert!(pred.demo_categories.len() <= 1, "k=1 caps demonstrations");
    }
}
