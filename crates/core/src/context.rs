//! Prompt-context construction — the Table 3 ablation surface.

use crate::collection::CollectedIncident;
use rcacopilot_llm::Summarizer;
use serde::{Deserialize, Serialize};

/// Which pieces of incident information go into the LLM context.
///
/// Paper Table 3 ablates AlertInfo / DiagnosticInfo (raw or summarized) /
/// ActionOutput. The default is the paper's best configuration:
/// summarized diagnostic information only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContextSpec {
    /// Include the alert type/scope/severity line.
    pub alert_info: bool,
    /// Include the handler-collected diagnostic information.
    pub diagnostic_info: bool,
    /// Summarize the diagnostic information first (only meaningful when
    /// `diagnostic_info` is set).
    pub summarized: bool,
    /// Include the per-action key-value outputs.
    pub action_output: bool,
}

impl Default for ContextSpec {
    fn default() -> Self {
        ContextSpec {
            alert_info: false,
            diagnostic_info: true,
            summarized: true,
            action_output: false,
        }
    }
}

impl ContextSpec {
    /// All seven Table 3 rows, in the table's order.
    pub fn table3_rows() -> Vec<(String, ContextSpec)> {
        let spec = |a: bool, d: bool, s: bool, o: bool| ContextSpec {
            alert_info: a,
            diagnostic_info: d,
            summarized: s,
            action_output: o,
        };
        vec![
            (
                "DiagnosticInfo".to_string(),
                spec(false, true, false, false),
            ),
            (
                "DiagnosticInfo (sum.)".to_string(),
                spec(false, true, true, false),
            ),
            ("AlertInfo".to_string(), spec(true, false, false, false)),
            (
                "AlertInfo + DiagnosticInfo".to_string(),
                spec(true, true, false, false),
            ),
            (
                "AlertInfo + ActionOutput".to_string(),
                spec(true, false, false, true),
            ),
            (
                "DiagnosticInfo + ActionOutput".to_string(),
                spec(false, true, false, true),
            ),
            (
                "AlertInfo + DiagnosticInfo + ActionOutput".to_string(),
                spec(true, true, false, true),
            ),
        ]
    }

    /// Renders the context text for one collected incident.
    pub fn render(&self, collected: &CollectedIncident, summarizer: &Summarizer) -> String {
        let diag = collected.diagnostic_text();
        let summary = if self.diagnostic_info && self.summarized {
            summarizer.summarize(&diag)
        } else {
            String::new()
        };
        self.render_parts(
            &collected.alert_info,
            &diag,
            &summary,
            &collected.run.action_output_text(),
        )
    }

    /// Renders the context text from precomputed parts. The batch
    /// evaluation harness and the online serving engine both go through
    /// this exact concatenation, so their prompt inputs are
    /// byte-identical for the same collected incident.
    pub fn render_parts(
        &self,
        alert_info: &str,
        raw_diag: &str,
        summary: &str,
        action_output: &str,
    ) -> String {
        let mut parts: Vec<&str> = Vec::new();
        if self.alert_info {
            parts.push(alert_info);
        }
        if self.diagnostic_info {
            if self.summarized {
                parts.push(summary);
            } else {
                parts.push(raw_diag);
            }
        }
        if self.action_output {
            parts.push(action_output);
        }
        parts.join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcacopilot_handlers::HandlerRun;
    use rcacopilot_telemetry::query::QueryResult;

    fn collected() -> CollectedIncident {
        let mut section = QueryResult::titled("Disk usage on forest NAMPR00");
        section.push_row("NAMPR00MB0001 C:", "99.6% used, 120 MB free");
        let mut run = HandlerRun::default();
        run.sections.push(section);
        run.action_outputs.push((
            "Check disk usage".into(),
            "NAMPR00MB0001 C:=99.6% used".into(),
        ));
        CollectedIncident {
            alert_info:
                "Alert type: ProcessCrashSpike. Alert scope: forest NAMPR00. Severity: Sev2.".into(),
            run,
            known_issue: None,
        }
    }

    #[test]
    fn default_is_summarized_diagnostics_only() {
        let spec = ContextSpec::default();
        let text = spec.render(&collected(), &Summarizer::default());
        assert!(text.contains("99.6%"));
        assert!(!text.contains("Alert type"));
        assert!(!text.contains("Check disk usage:"));
    }

    #[test]
    fn alert_only_context_has_no_diagnostics() {
        let spec = ContextSpec {
            alert_info: true,
            diagnostic_info: false,
            summarized: false,
            action_output: false,
        };
        let text = spec.render(&collected(), &Summarizer::default());
        assert!(text.contains("Alert type: ProcessCrashSpike"));
        assert!(!text.contains("99.6%"));
    }

    #[test]
    fn all_contexts_concatenate_in_order() {
        let spec = ContextSpec {
            alert_info: true,
            diagnostic_info: true,
            summarized: false,
            action_output: true,
        };
        let text = spec.render(&collected(), &Summarizer::default());
        let a = text.find("Alert type").unwrap();
        let d = text.find("Disk usage").unwrap();
        let o = text.find("Check disk usage:").unwrap();
        assert!(a < d && d < o);
    }

    #[test]
    fn table3_has_seven_distinct_rows() {
        let rows = ContextSpec::table3_rows();
        assert_eq!(rows.len(), 7);
        let mut specs: Vec<ContextSpec> = rows.iter().map(|(_, s)| *s).collect();
        specs.dedup();
        assert_eq!(specs.len(), 7);
        // The paper's winning row is the default.
        assert_eq!(rows[1].1, ContextSpec::default());
    }
}
