//! The diagnostic information collection stage (paper §4.1).

use rcacopilot_handlers::{Handler, HandlerError, HandlerRegistry, HandlerRun};
use rcacopilot_simcloud::Incident;
use serde::{Deserialize, Serialize};

/// A known-issue entry: alert-message pattern → category + mitigation
/// (the "Known issue?" node of the paper's Figure 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnownIssue {
    /// Substring matched against the alert message.
    pub pattern: String,
    /// Root-cause category of the known issue.
    pub category: String,
    /// Mitigation OCEs apply directly.
    pub mitigation: String,
}

/// The database of known issues OCEs have registered.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct KnownIssueDb {
    issues: Vec<KnownIssue>,
}

impl KnownIssueDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        KnownIssueDb::default()
    }

    /// Registers a known issue.
    pub fn register(
        &mut self,
        pattern: impl Into<String>,
        category: impl Into<String>,
        mitigation: impl Into<String>,
    ) {
        self.issues.push(KnownIssue {
            pattern: pattern.into(),
            category: category.into(),
            mitigation: mitigation.into(),
        });
    }

    /// Number of registered issues.
    pub fn len(&self) -> usize {
        self.issues.len()
    }

    /// True if no issues are registered.
    pub fn is_empty(&self) -> bool {
        self.issues.is_empty()
    }

    /// Looks an alert message up; returns the first matching issue.
    pub fn lookup(&self, alert_message: &str) -> Option<&KnownIssue> {
        self.issues
            .iter()
            .find(|i| alert_message.contains(i.pattern.as_str()))
    }
}

/// One incident after the collection stage ran.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectedIncident {
    /// Rendered alert info (Table 3's "AlertInfo").
    pub alert_info: String,
    /// Handler execution result (sections, path, outputs, mitigations).
    pub run: HandlerRun,
    /// Known issue hit, if the alert matched one.
    pub known_issue: Option<KnownIssue>,
}

impl CollectedIncident {
    /// The raw diagnostic text (Table 3's "DiagnosticInfo", unsummarized).
    pub fn diagnostic_text(&self) -> String {
        self.run.diagnostic_text()
    }
}

/// The collection stage: handler registry + known-issue database.
#[derive(Debug, Default)]
pub struct CollectionStage {
    registry: HandlerRegistry,
    known_issues: KnownIssueDb,
}

impl CollectionStage {
    /// Creates a collection stage around a handler registry.
    pub fn new(registry: HandlerRegistry) -> Self {
        CollectionStage {
            registry,
            known_issues: KnownIssueDb::new(),
        }
    }

    /// Creates the stage with the standard handler library.
    pub fn standard() -> Self {
        CollectionStage::new(rcacopilot_handlers::standard_handlers())
    }

    /// Mutable access to the known-issue database.
    pub fn known_issues_mut(&mut self) -> &mut KnownIssueDb {
        &mut self.known_issues
    }

    /// The handler registry.
    pub fn registry(&self) -> &HandlerRegistry {
        &self.registry
    }

    /// The current handler for an incident's alert type, if registered.
    pub fn handler_for(&self, incident: &Incident) -> Option<Handler> {
        self.registry.current(incident.alert.alert_type)
    }

    /// Runs the matching handler over the incident's snapshot, collecting
    /// the multi-source diagnostic information.
    ///
    /// Returns an error if no handler is registered for the alert type or
    /// the handler is malformed.
    pub fn collect(&self, incident: &Incident) -> Result<CollectedIncident, CollectionError> {
        let handler = self
            .handler_for(incident)
            .ok_or(CollectionError::NoHandler(incident.alert.alert_type.name()))?;
        let run = handler
            .execute(&incident.snapshot, incident.alert.scope)
            .map_err(CollectionError::Handler)?;
        Ok(CollectedIncident {
            alert_info: incident.alert_info(),
            known_issue: self.known_issues.lookup(&incident.alert.message).cloned(),
            run,
        })
    }
}

/// Errors from the collection stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CollectionError {
    /// No handler registered for the alert type.
    NoHandler(&'static str),
    /// The handler failed validation or execution.
    Handler(HandlerError),
}

impl std::fmt::Display for CollectionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CollectionError::NoHandler(at) => write!(f, "no handler registered for {at}"),
            CollectionError::Handler(e) => write!(f, "handler failed: {e}"),
        }
    }
}

impl std::error::Error for CollectionError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rcacopilot_simcloud::noise::NoiseProfile;
    use rcacopilot_simcloud::{generate_dataset, CampaignConfig, Topology};

    fn dataset() -> rcacopilot_simcloud::IncidentDataset {
        generate_dataset(&CampaignConfig {
            seed: 11,
            topology: Topology::new(2, 4, 2, 2),
            noise: NoiseProfile {
                routine_logs: 6,
                herring_logs: 2,
                healthy_traces: 2,
                unrelated_failure: true,
                bystander_anomalies: 2,
            },
        })
    }

    #[test]
    fn collection_produces_diagnostics_for_every_incident() {
        let ds = dataset();
        let stage = CollectionStage::standard();
        for inc in ds.incidents().iter().take(80) {
            let collected = stage.collect(inc).expect("handler exists");
            assert!(
                !collected.diagnostic_text().is_empty(),
                "{}: empty diagnostics",
                inc.category
            );
            assert!(!collected.run.path.is_empty());
            assert!(collected.alert_info.contains("Alert type"));
        }
    }

    #[test]
    fn hub_port_incident_diagnostics_contain_figure6_signal() {
        let ds = dataset();
        let stage = CollectionStage::standard();
        let inc = ds
            .incidents()
            .iter()
            .find(|i| i.category == "HubPortExhaustion")
            .expect("head category present");
        let collected = stage.collect(inc).unwrap();
        let text = collected.diagnostic_text();
        assert!(text.contains("WinSock error: 11001"), "text: {text}");
        assert!(text.contains("Total UDP socket count"));
    }

    #[test]
    fn known_issue_lookup_matches_patterns() {
        let mut db = KnownIssueDb::new();
        db.register(
            "front door server",
            "HubPortExhaustion",
            "Recycle the Transport service on the affected front door.",
        );
        assert_eq!(db.len(), 1);
        let hit = db
            .lookup("Detected failures when connecting to the front door server; outbound proxy connection requests failing.")
            .expect("pattern matches");
        assert_eq!(hit.category, "HubPortExhaustion");
        assert!(db.lookup("unrelated message").is_none());
    }

    #[test]
    fn collection_attaches_known_issue_when_registered() {
        let ds = dataset();
        let mut stage = CollectionStage::standard();
        stage.known_issues_mut().register(
            "front door server",
            "HubPortExhaustion",
            "Recycle transport.",
        );
        let inc = ds
            .incidents()
            .iter()
            .find(|i| i.category == "HubPortExhaustion")
            .unwrap();
        let collected = stage.collect(inc).unwrap();
        assert_eq!(
            collected.known_issue.as_ref().map(|k| k.category.as_str()),
            Some("HubPortExhaustion")
        );
    }

    #[test]
    fn missing_handler_is_reported() {
        let stage = CollectionStage::new(HandlerRegistry::new());
        let ds = dataset();
        let err = stage.collect(&ds.incidents()[0]).unwrap_err();
        assert!(matches!(err, CollectionError::NoHandler(_)));
        assert!(err.to_string().contains("no handler"));
    }
}
