//! The diagnostic information collection stage (paper §4.1).

use rcacopilot_handlers::{Handler, HandlerError, HandlerRegistry, HandlerRun, RetryPolicy};
use rcacopilot_simcloud::Incident;
use rcacopilot_telemetry::fault::{FaultInjector, NoFaults};
use serde::{Deserialize, Serialize};

/// A known-issue entry: alert-message pattern → category + mitigation
/// (the "Known issue?" node of the paper's Figure 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnownIssue {
    /// Substring matched against the alert message.
    pub pattern: String,
    /// Root-cause category of the known issue.
    pub category: String,
    /// Mitigation OCEs apply directly.
    pub mitigation: String,
}

/// The database of known issues OCEs have registered.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct KnownIssueDb {
    issues: Vec<KnownIssue>,
}

impl KnownIssueDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        KnownIssueDb::default()
    }

    /// Registers a known issue.
    pub fn register(
        &mut self,
        pattern: impl Into<String>,
        category: impl Into<String>,
        mitigation: impl Into<String>,
    ) {
        self.issues.push(KnownIssue {
            pattern: pattern.into(),
            category: category.into(),
            mitigation: mitigation.into(),
        });
    }

    /// Number of registered issues.
    pub fn len(&self) -> usize {
        self.issues.len()
    }

    /// True if no issues are registered.
    pub fn is_empty(&self) -> bool {
        self.issues.is_empty()
    }

    /// Looks an alert message up; returns the first matching issue.
    pub fn lookup(&self, alert_message: &str) -> Option<&KnownIssue> {
        self.issues
            .iter()
            .find(|i| alert_message.contains(i.pattern.as_str()))
    }
}

/// One incident after the collection stage ran.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectedIncident {
    /// Rendered alert info (Table 3's "AlertInfo").
    pub alert_info: String,
    /// Handler execution result (sections, path, outputs, mitigations).
    pub run: HandlerRun,
    /// Known issue hit, if the alert matched one.
    pub known_issue: Option<KnownIssue>,
}

impl CollectedIncident {
    /// The raw diagnostic text (Table 3's "DiagnosticInfo", unsummarized).
    pub fn diagnostic_text(&self) -> String {
        self.run.diagnostic_text()
    }

    /// Fraction of diagnostic sections that were collected intact
    /// (1.0 on the fault-free path).
    pub fn completeness(&self) -> f64 {
        self.run.degradation.completeness()
    }
}

/// The collection stage: handler registry + known-issue database, plus
/// the fault injector and retry policy its handler executions run under.
///
/// The default configuration ([`NoFaults`] + [`RetryPolicy::default`])
/// reproduces the fault-free pipeline exactly; [`with_faults`] turns the
/// same stage into a robustness harness without touching the handlers.
///
/// [`with_faults`]: CollectionStage::with_faults
#[derive(Debug)]
pub struct CollectionStage {
    registry: HandlerRegistry,
    known_issues: KnownIssueDb,
    faults: Box<dyn FaultInjector>,
    policy: RetryPolicy,
}

impl Default for CollectionStage {
    fn default() -> Self {
        CollectionStage::new(HandlerRegistry::default())
    }
}

impl CollectionStage {
    /// Creates a collection stage around a handler registry.
    pub fn new(registry: HandlerRegistry) -> Self {
        CollectionStage::with_faults(registry, Box::new(NoFaults))
    }

    /// Creates the stage with the standard handler library.
    pub fn standard() -> Self {
        CollectionStage::new(rcacopilot_handlers::standard_handlers())
    }

    /// Creates a collection stage whose handler executions run against
    /// `faults` (e.g. a seeded [`rcacopilot_simcloud::FaultPlan`]).
    pub fn with_faults(registry: HandlerRegistry, faults: Box<dyn FaultInjector>) -> Self {
        CollectionStage {
            registry,
            known_issues: KnownIssueDb::new(),
            faults,
            policy: RetryPolicy::default(),
        }
    }

    /// Standard handler library plus a fault injector.
    pub fn standard_with_faults(faults: Box<dyn FaultInjector>) -> Self {
        CollectionStage::with_faults(rcacopilot_handlers::standard_handlers(), faults)
    }

    /// Overrides the retry policy used for handler executions.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.policy = policy;
    }

    /// The retry policy handler executions run under.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Mutable access to the known-issue database.
    pub fn known_issues_mut(&mut self) -> &mut KnownIssueDb {
        &mut self.known_issues
    }

    /// The handler registry.
    pub fn registry(&self) -> &HandlerRegistry {
        &self.registry
    }

    /// The current handler for an incident's alert type, if registered.
    pub fn handler_for(&self, incident: &Incident) -> Option<Handler> {
        self.registry.current(incident.alert.alert_type)
    }

    /// Runs the matching handler over the incident's snapshot, collecting
    /// the multi-source diagnostic information.
    ///
    /// Returns an error if no handler is registered for the alert type or
    /// the handler is malformed.
    pub fn collect(&self, incident: &Incident) -> Result<CollectedIncident, CollectionError> {
        let handler = self
            .handler_for(incident)
            .ok_or(CollectionError::NoHandler(incident.alert.alert_type.name()))?;
        let run = handler
            .execute_resilient(
                &incident.snapshot,
                incident.alert.scope,
                self.faults.as_ref(),
                &self.policy,
            )
            .map_err(CollectionError::Handler)?;
        Ok(CollectedIncident {
            alert_info: incident.alert_info(),
            known_issue: self.known_issues.lookup(&incident.alert.message).cloned(),
            run,
        })
    }
}

/// Errors from the collection stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CollectionError {
    /// No handler registered for the alert type.
    NoHandler(&'static str),
    /// The handler failed validation or execution.
    Handler(HandlerError),
}

impl std::fmt::Display for CollectionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CollectionError::NoHandler(at) => write!(f, "no handler registered for {at}"),
            CollectionError::Handler(e) => write!(f, "handler failed: {e}"),
        }
    }
}

impl std::error::Error for CollectionError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rcacopilot_simcloud::noise::NoiseProfile;
    use rcacopilot_simcloud::{generate_dataset, CampaignConfig, Topology};

    fn dataset() -> rcacopilot_simcloud::IncidentDataset {
        generate_dataset(&CampaignConfig {
            seed: 11,
            topology: Topology::new(2, 4, 2, 2),
            noise: NoiseProfile {
                routine_logs: 6,
                herring_logs: 2,
                healthy_traces: 2,
                unrelated_failure: true,
                bystander_anomalies: 2,
            },
        })
    }

    #[test]
    fn collection_produces_diagnostics_for_every_incident() {
        let ds = dataset();
        let stage = CollectionStage::standard();
        for inc in ds.incidents().iter().take(80) {
            let collected = stage.collect(inc).expect("handler exists");
            assert!(
                !collected.diagnostic_text().is_empty(),
                "{}: empty diagnostics",
                inc.category
            );
            assert!(!collected.run.path.is_empty());
            assert!(collected.alert_info.contains("Alert type"));
        }
    }

    #[test]
    fn hub_port_incident_diagnostics_contain_figure6_signal() {
        let ds = dataset();
        let stage = CollectionStage::standard();
        let inc = ds
            .incidents()
            .iter()
            .find(|i| i.category == "HubPortExhaustion")
            .expect("head category present");
        let collected = stage.collect(inc).unwrap();
        let text = collected.diagnostic_text();
        assert!(text.contains("WinSock error: 11001"), "text: {text}");
        assert!(text.contains("Total UDP socket count"));
    }

    #[test]
    fn known_issue_lookup_matches_patterns() {
        let mut db = KnownIssueDb::new();
        db.register(
            "front door server",
            "HubPortExhaustion",
            "Recycle the Transport service on the affected front door.",
        );
        assert_eq!(db.len(), 1);
        let hit = db
            .lookup("Detected failures when connecting to the front door server; outbound proxy connection requests failing.")
            .expect("pattern matches");
        assert_eq!(hit.category, "HubPortExhaustion");
        assert!(db.lookup("unrelated message").is_none());
    }

    #[test]
    fn collection_attaches_known_issue_when_registered() {
        let ds = dataset();
        let mut stage = CollectionStage::standard();
        stage.known_issues_mut().register(
            "front door server",
            "HubPortExhaustion",
            "Recycle transport.",
        );
        let inc = ds
            .incidents()
            .iter()
            .find(|i| i.category == "HubPortExhaustion")
            .unwrap();
        let collected = stage.collect(inc).unwrap();
        assert_eq!(
            collected.known_issue.as_ref().map(|k| k.category.as_str()),
            Some("HubPortExhaustion")
        );
    }

    #[test]
    fn missing_handler_is_reported() {
        let stage = CollectionStage::new(HandlerRegistry::new());
        let ds = dataset();
        let err = stage.collect(&ds.incidents()[0]).unwrap_err();
        assert!(matches!(err, CollectionError::NoHandler(_)));
        assert!(err.to_string().contains("no handler"));
    }
}
