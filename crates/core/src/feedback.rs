//! OCE feedback on predictions — the paper's §5.5 improvement loop.
//!
//! Incident notification emails carry a feedback mechanism; collected
//! verdicts tell the team which categories the predictor struggles with
//! and which handlers need new actions. This store aggregates verdicts
//! and surfaces the categories whose precision has fallen below a review
//! threshold.

use crate::plan::{PlanExecutor, SummarizeMode};
use crate::report::OnCallReport;
use crate::retrieval::HistoryView;
use parking_lot::RwLock;
use rcacopilot_simcloud::Incident;
use rcacopilot_telemetry::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One OCE verdict on a prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// The prediction matched the post-investigation root cause.
    Correct,
    /// The prediction was wrong.
    Incorrect,
    /// Right failure mode, wrong taxonomy label (e.g. the paper's
    /// "I/O Bottleneck" vs "FullDisk").
    CloseEnough,
}

/// Aggregate feedback for one predicted category.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CategoryFeedback {
    /// Predictions confirmed correct.
    pub correct: usize,
    /// Predictions judged incorrect.
    pub incorrect: usize,
    /// Semantically-right, label-mismatched predictions.
    pub close_enough: usize,
}

impl CategoryFeedback {
    /// Total verdicts received.
    pub fn total(&self) -> usize {
        self.correct + self.incorrect + self.close_enough
    }

    /// Share of verdicts that were not `Incorrect`; `None` without data.
    pub fn satisfaction(&self) -> Option<f64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        Some((self.correct + self.close_enough) as f64 / total as f64)
    }
}

/// Thread-safe feedback store, aggregated per predicted category.
#[derive(Debug, Default)]
pub struct FeedbackStore {
    data: RwLock<BTreeMap<String, CategoryFeedback>>,
}

impl FeedbackStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        FeedbackStore::default()
    }

    /// Records a verdict for a predicted category.
    pub fn record(&self, predicted_category: &str, verdict: Verdict) {
        let mut data = self.data.write();
        let entry = data.entry(predicted_category.to_string()).or_default();
        match verdict {
            Verdict::Correct => entry.correct += 1,
            Verdict::Incorrect => entry.incorrect += 1,
            Verdict::CloseEnough => entry.close_enough += 1,
        }
    }

    /// Aggregate for one category.
    pub fn category(&self, category: &str) -> CategoryFeedback {
        self.data.read().get(category).copied().unwrap_or_default()
    }

    /// Overall satisfaction across all verdicts; `None` without data.
    pub fn overall_satisfaction(&self) -> Option<f64> {
        let data = self.data.read();
        let mut good = 0usize;
        let mut total = 0usize;
        for f in data.values() {
            good += f.correct + f.close_enough;
            total += f.total();
        }
        if total == 0 {
            None
        } else {
            Some(good as f64 / total as f64)
        }
    }

    /// Categories with at least `min_verdicts` verdicts whose satisfaction
    /// fell below `threshold` — the ones whose handlers or demonstrations
    /// an OCE should revisit.
    pub fn needs_review(&self, threshold: f64, min_verdicts: usize) -> Vec<String> {
        self.data
            .read()
            .iter()
            .filter(|(_, f)| {
                f.total() >= min_verdicts && f.satisfaction().is_some_and(|s| s < threshold)
            })
            .map(|(c, _)| c.clone())
            .collect()
    }

    /// Serializes all aggregates to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&*self.data.read()).expect("feedback serializes")
    }

    /// Restores a store from [`FeedbackStore::to_json`] output.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        Ok(FeedbackStore {
            data: RwLock::new(serde_json::from_str(json)?),
        })
    }
}

/// Outcome of one simulated on-call shift driven by a plan execution.
#[derive(Debug)]
pub struct ShiftOutcome {
    /// The aggregated OCE verdicts.
    pub store: FeedbackStore,
    /// Rendered notification reports, one per processed incident.
    pub reports: Vec<String>,
    /// Incidents whose collection failed and were skipped.
    pub skipped: usize,
}

/// Simulates an on-call shift over `picks` (indices into `incidents`):
/// each incident runs the full inference plan — collect → summarize →
/// assemble → embed → retrieve → predict — through `executor`, a
/// notification report is assembled, and an oracle OCE verdict (correct /
/// close-enough-on-unseen / incorrect against the ground-truth category)
/// is recorded. This replaces the bespoke per-incident loop the
/// `oncall_report` example used to carry.
pub fn run_shift(
    executor: &PlanExecutor<'_>,
    incidents: &[Incident],
    picks: &[usize],
    history: &dyn HistoryView,
) -> ShiftOutcome {
    let store = FeedbackStore::new();
    let mut reports = Vec::new();
    let mut skipped = 0usize;
    for &i in picks {
        let incident = &incidents[i];
        let at: SimTime = incident.occurred_at();
        let Ok(out) = executor.run_incident(incident, at, history, SummarizeMode::Full) else {
            skipped += 1;
            continue;
        };
        let report =
            OnCallReport::assemble(incident, &out.collected, &out.summary, &out.prediction);
        reports.push(report.render());
        let verdict = if out.prediction.label == incident.category {
            Verdict::Correct
        } else if out.prediction.unseen {
            Verdict::CloseEnough
        } else {
            Verdict::Incorrect
        };
        store.record(&out.prediction.label, verdict);
    }
    ShiftOutcome {
        store,
        reports,
        skipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdicts_aggregate_per_category() {
        let store = FeedbackStore::new();
        store.record("HubPortExhaustion", Verdict::Correct);
        store.record("HubPortExhaustion", Verdict::Correct);
        store.record("HubPortExhaustion", Verdict::Incorrect);
        store.record("I/O Bottleneck", Verdict::CloseEnough);
        let hub = store.category("HubPortExhaustion");
        assert_eq!(hub.total(), 3);
        assert!((hub.satisfaction().unwrap() - 2.0 / 3.0).abs() < 1e-12);
        let io = store.category("I/O Bottleneck");
        assert_eq!(io.satisfaction(), Some(1.0));
        assert_eq!(store.category("nope").satisfaction(), None);
    }

    #[test]
    fn review_list_respects_thresholds() {
        let store = FeedbackStore::new();
        for _ in 0..4 {
            store.record("BadCategory", Verdict::Incorrect);
        }
        store.record("BadCategory", Verdict::Correct);
        store.record("ThinData", Verdict::Incorrect);
        let review = store.needs_review(0.5, 3);
        assert_eq!(review, vec!["BadCategory".to_string()]);
        // ThinData has too few verdicts to conclude anything.
        assert!(store
            .needs_review(0.5, 2)
            .contains(&"BadCategory".to_string()));
    }

    #[test]
    fn overall_satisfaction_spans_categories() {
        let store = FeedbackStore::new();
        assert_eq!(store.overall_satisfaction(), None);
        store.record("A", Verdict::Correct);
        store.record("B", Verdict::Incorrect);
        assert_eq!(store.overall_satisfaction(), Some(0.5));
    }

    #[test]
    fn json_round_trip() {
        let store = FeedbackStore::new();
        store.record("A", Verdict::Correct);
        store.record("A", Verdict::CloseEnough);
        let restored = FeedbackStore::from_json(&store.to_json()).unwrap();
        assert_eq!(restored.category("A").total(), 2);
    }

    #[test]
    fn store_is_shareable_across_threads() {
        let store = std::sync::Arc::new(FeedbackStore::new());
        let mut joins = Vec::new();
        for _ in 0..8 {
            let store = store.clone();
            joins.push(std::thread::spawn(move || {
                store.record("X", Verdict::Correct);
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(store.category("X").correct, 8);
    }
}
