//! Ablation experiments: Table 3 (prompt context) and Figure 12 (K, α).

use crate::collection::CollectionStage;
use crate::context::ContextSpec;
use crate::eval::{parallel_map, PreparedDataset};
use crate::metrics::{f1_scores, F1Report};
use crate::pipeline::{Embedder, RcaCopilot, RcaCopilotConfig};
use crate::plan::{InferencePlan, PlanCaches, PlanExecutor};
use crate::retrieval::RetrievalConfig;
use rcacopilot_embed::FastTextModel;
use rcacopilot_handlers::RunDegradation;

/// Runs the Table 3 context ablation: one evaluation per context row,
/// sharing a single trained embedder (retrieval is identical across rows;
/// only the prompt text changes, as in the paper).
pub fn table3_context_ablation(
    prepared: &PreparedDataset,
    config: &RcaCopilotConfig,
) -> Vec<(String, F1Report)> {
    let gold = prepared.test_gold();

    ContextSpec::table3_rows()
        .into_iter()
        .map(|(name, spec)| {
            // Under each ablation row, the incident's *information* is the
            // selected context: the embedder trains on (and the index
            // embeds) its unsummarized form, while the prompt carries the
            // row's (possibly summarized) rendering.
            let embed_spec = ContextSpec {
                summarized: false,
                ..spec
            };
            let examples: Vec<crate::pipeline::TrainExample> = prepared
                .train
                .iter()
                .map(|&i| {
                    let inc = &prepared.incidents[i];
                    crate::pipeline::TrainExample {
                        raw_diag: prepared.context_text(i, &embed_spec),
                        demo_text: prepared.context_text(i, &spec),
                        category: inc.category.clone(),
                        at: inc.at,
                    }
                })
                .collect();
            let pairs: Vec<(String, String)> = examples
                .iter()
                .map(|e| (e.raw_diag.clone(), e.category.clone()))
                .collect();
            let embedder = FastTextModel::train(&pairs, config.embedding.clone());
            let copilot = RcaCopilot::train_with_embedder(
                &examples,
                Embedder::FastText(Box::new(embedder)),
                config.clone(),
            );
            // Each Table 3 row is a plan configuration, not a forked
            // evaluation loop: the row's spec gates context assembly,
            // while the embed text stays the unsummarized rendering.
            let plan = InferencePlan::new(spec);
            let stage = CollectionStage::standard();
            let caches = PlanCaches::new(8);
            let executor = PlanExecutor::new(&copilot, &stage, &plan, &caches);
            let preds = parallel_map(&prepared.test, |&i| {
                let inc = &prepared.incidents[i];
                executor
                    .predict_text(
                        copilot.index(),
                        &prepared.context_text(i, &embed_spec),
                        &prepared.context_text(i, &spec),
                        inc.at,
                        &RunDegradation::default(),
                    )
                    .label
            });
            (name, f1_scores(&gold, &preds))
        })
        .collect()
}

/// One cell of the Figure 12 sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Number of demonstrations.
    pub k: usize,
    /// Temporal decay per day.
    pub alpha: f64,
    /// Micro-F1 at this setting.
    pub micro_f1: f64,
    /// Macro-F1 at this setting.
    pub macro_f1: f64,
}

/// Runs the Figure 12 sweep over `ks × alphas`. The pipeline is trained
/// once; only retrieval parameters vary per cell.
pub fn fig12_sweep(
    prepared: &PreparedDataset,
    config: &RcaCopilotConfig,
    ks: &[usize],
    alphas: &[f64],
) -> Vec<SweepPoint> {
    let spec = ContextSpec::default();
    let copilot = RcaCopilot::train(&prepared.train_examples(&spec), config.clone());
    let gold = prepared.test_gold();
    let stage = CollectionStage::standard();
    // One cache pool for the whole sweep: the embedding of a test
    // incident is identical in every (K, α) cell, so all cells after the
    // first hit the embed cache instead of re-running FastText inference
    // per cell.
    let caches = PlanCaches::new(8);

    let mut out = Vec::with_capacity(ks.len() * alphas.len());
    for &alpha in alphas {
        for &k in ks {
            let plan = InferencePlan::new(spec).with_retrieval(RetrievalConfig {
                k,
                alpha,
                ..RetrievalConfig::default()
            });
            let executor = PlanExecutor::new(&copilot, &stage, &plan, &caches);
            let preds = parallel_map(&prepared.test, |&i| {
                let inc = &prepared.incidents[i];
                executor.run_prepared(inc, copilot.index()).label
            });
            let f1 = f1_scores(&gold, &preds);
            out.push(SweepPoint {
                k,
                alpha,
                micro_f1: f1.micro_f1,
                macro_f1: f1.macro_f1,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_point_is_plain_data() {
        let p = SweepPoint {
            k: 5,
            alpha: 0.3,
            micro_f1: 0.7,
            macro_f1: 0.5,
        };
        assert_eq!(p.clone(), p);
    }
}
