//! The comparison methods of the paper's Table 2.
//!
//! All baselines consume the incident's **raw** diagnostic text, exactly
//! as the paper describes ("directly predicts the category with the
//! original diagnosis information") — no entity masking, no
//! summarization, no prompt design. Their difficulty is real: 163
//! long-tailed classes, a handful of examples for most of them, and raw
//! text dominated by per-incident identifiers.

use rcacopilot_embed::{FastTextConfig, FastTextModel, FeatureExtractor};
use rcacopilot_gbdt::{Gbdt, GbdtConfig, TreeConfig};
use rcacopilot_llm::prompt::PredictionPrompt;
use rcacopilot_llm::{CotEngine, FineTunedLm, ModelProfile};
use rcacopilot_textkit::tfidf::TfIdfVectorizer;

/// The FastText classification baseline (Table 2 row 1).
#[derive(Debug, Clone)]
pub struct FastTextBaseline {
    model: FastTextModel,
}

impl FastTextBaseline {
    /// Trains on raw `(text, label)` pairs.
    pub fn train(examples: &[(String, String)]) -> Self {
        let config = FastTextConfig {
            dim: 48,
            epochs: 5,
            lr: 0.2,
            seed: 17,
            features: FeatureExtractor {
                mask: false,
                ..FeatureExtractor::default()
            },
        };
        FastTextBaseline {
            model: FastTextModel::train(examples, config),
        }
    }

    /// Predicts the label of raw diagnostic text.
    pub fn predict(&self, text: &str) -> String {
        self.model.predict(text).0.to_string()
    }
}

/// The XGBoost baseline (Table 2 row 2): TF-IDF features truncated to the
/// most frequent terms, fed to gradient-boosted trees.
#[derive(Debug, Clone)]
pub struct XgboostBaseline {
    vectorizer: TfIdfVectorizer,
    features: Vec<usize>,
    model: Gbdt,
}

impl XgboostBaseline {
    /// Number of dense features kept.
    pub const FEATURES: usize = 48;

    /// Trains on raw `(text, label)` pairs.
    pub fn train(examples: &[(String, String)]) -> Self {
        let corpus: Vec<String> = examples.iter().map(|(t, _)| t.clone()).collect();
        let labels: Vec<String> = examples.iter().map(|(_, l)| l.clone()).collect();
        // Tree models on a few hundred samples need aggressively pruned
        // vocabularies (rare tokens overfit instantly), so only features
        // with at least ~12% document support survive — which is also why
        // this baseline cannot tell long-tail categories apart.
        let min_df = (examples.len() / 8).max(2);
        let mut vectorizer = TfIdfVectorizer::new(min_df, false);
        let sparse = vectorizer.fit_transform(&corpus);
        let features = vectorizer.top_features_by_df(Self::FEATURES);
        let rows: Vec<Vec<f32>> = sparse
            .iter()
            .map(|v| TfIdfVectorizer::project_dense(v, &features))
            .collect();
        let config = GbdtConfig {
            rounds: 8,
            eta: 0.4,
            tree: TreeConfig {
                max_depth: 3,
                min_samples_split: 4,
                lambda: 1.0,
                min_gain: 1e-6,
            },
        };
        XgboostBaseline {
            model: Gbdt::train(&rows, &labels, config),
            vectorizer,
            features,
        }
    }

    /// Predicts the label of raw diagnostic text.
    pub fn predict(&self, text: &str) -> String {
        let sparse = self.vectorizer.transform(text);
        let row = TfIdfVectorizer::project_dense(&sparse, &self.features);
        self.model.predict(&row).0.to_string()
    }
}

/// The fine-tuned-LM baseline (Table 2 row 3).
#[derive(Debug, Clone)]
pub struct FineTuneBaseline {
    model: FineTunedLm,
}

impl FineTuneBaseline {
    /// "Fine-tunes" on raw `(text, label)` pairs.
    pub fn train(examples: &[(String, String)]) -> Self {
        FineTuneBaseline {
            model: FineTunedLm::train(examples, 700),
        }
    }

    /// Predicts the label of raw diagnostic text.
    pub fn predict(&self, text: &str) -> String {
        self.model.predict(text).0
    }
}

/// The zero-shot "GPT-4 Prompt" baseline (Table 2 row 4): the prompt
/// contains only the incident being predicted — no demonstrations — so
/// the model can only free-generate a category keyword.
#[derive(Debug, Clone, Copy)]
pub struct ZeroShotBaseline {
    engine: CotEngine,
}

impl ZeroShotBaseline {
    /// Creates the baseline with the given profile.
    pub fn new(profile: ModelProfile, seed: u64) -> Self {
        ZeroShotBaseline {
            engine: CotEngine::new(profile, seed),
        }
    }

    /// Predicts from the incident's summarized diagnostics alone.
    pub fn predict(&self, summary: &str) -> String {
        let prompt = PredictionPrompt::new(summary, Vec::new());
        self.engine.predict(&prompt).label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn examples() -> Vec<(String, String)> {
        let mut out = Vec::new();
        for i in 0..10 {
            out.push((
                format!(
                    "2022-03-01T00:0{i}:00Z ERROR [NAMPR0{i}FD000{i}] Transport.exe/SmtpOut: \
                     InformativeSocketException WinSock 11001 socket count 1500{i} (session {i:08x})"
                ),
                "HubPortExhaustion".to_string(),
            ));
            out.push((
                format!(
                    "2022-03-02T00:0{i}:00Z ERROR [EURPR0{i}MB000{i}] Transport.exe/DiagnosticsLog: \
                     System.IO.IOException not enough space on the disk (session {i:08x})"
                ),
                "FullDisk".to_string(),
            ));
        }
        out
    }

    #[test]
    fn fasttext_baseline_learns_two_classes() {
        let model = FastTextBaseline::train(&examples());
        assert_eq!(
            model.predict("InformativeSocketException WinSock 11001 socket count"),
            "HubPortExhaustion"
        );
        assert_eq!(
            model.predict("System.IO.IOException not enough space on the disk"),
            "FullDisk"
        );
    }

    #[test]
    fn xgboost_baseline_fits_its_training_set() {
        // A 20-document booster is too small to demand held-out
        // generalization; what must hold is that the TF-IDF → dense →
        // GBDT wiring separates the training classes.
        let examples = examples();
        let model = XgboostBaseline::train(&examples);
        let correct = examples
            .iter()
            .filter(|(t, l)| model.predict(t) == *l)
            .count();
        assert!(
            correct >= examples.len() * 9 / 10,
            "train accuracy {correct}/{}",
            examples.len()
        );
    }

    #[test]
    fn finetune_baseline_learns_two_classes() {
        let model = FineTuneBaseline::train(&examples());
        assert_eq!(
            model.predict("WinSock socket count 15000 InformativeSocketException"),
            "HubPortExhaustion"
        );
    }

    #[test]
    fn zero_shot_free_generates_labels() {
        let zs = ZeroShotBaseline::new(ModelProfile::Gpt4, 1);
        let label = zs.predict("System.IO.IOException: not enough space on the disk");
        // Free generation produces a descriptive keyword, not the OCE
        // taxonomy label — the reason this baseline scores so low.
        assert_eq!(label, "I/O Bottleneck");
        assert_ne!(label, "FullDisk");
    }
}
