//! Single regression trees grown on first/second-order gradients.

use serde::{Deserialize, Serialize};

/// Tree growth hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// L2 regularization on leaf weights (XGBoost's λ).
    pub lambda: f64,
    /// Minimum gain required to accept a split (XGBoost's γ).
    pub min_gain: f64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 4,
            min_samples_split: 4,
            lambda: 1.0,
            min_gain: 1e-6,
        }
    }
}

/// A node of the tree, stored in a flat arena.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    /// Internal split: `feature < threshold` goes left.
    Split {
        feature: usize,
        threshold: f32,
        left: usize,
        right: usize,
    },
    /// Leaf with an output weight.
    Leaf { weight: f64 },
}

/// A fitted regression tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

/// Leaf objective value `-G/(H+λ)` and its score `G²/(H+λ)`.
fn leaf_weight(g: f64, h: f64, lambda: f64) -> f64 {
    -g / (h + lambda)
}

fn score(g: f64, h: f64, lambda: f64) -> f64 {
    g * g / (h + lambda)
}

impl RegressionTree {
    /// Fits a tree to gradients/hessians over dense rows.
    ///
    /// `rows[i]` is the feature vector of sample `i`; `grad[i]`/`hess[i]`
    /// its first/second-order gradient statistics.
    ///
    /// # Panics
    ///
    /// Panics if inputs are empty or lengths disagree.
    pub fn fit(rows: &[Vec<f32>], grad: &[f64], hess: &[f64], config: &TreeConfig) -> Self {
        assert!(!rows.is_empty(), "cannot fit a tree on no samples");
        assert_eq!(rows.len(), grad.len(), "grad length mismatch");
        assert_eq!(rows.len(), hess.len(), "hess length mismatch");
        let mut tree = RegressionTree { nodes: Vec::new() };
        let indices: Vec<usize> = (0..rows.len()).collect();
        tree.build(rows, grad, hess, indices, 0, config);
        tree
    }

    /// Recursively builds the subtree for `indices`; returns its node id.
    fn build(
        &mut self,
        rows: &[Vec<f32>],
        grad: &[f64],
        hess: &[f64],
        indices: Vec<usize>,
        depth: usize,
        config: &TreeConfig,
    ) -> usize {
        let g: f64 = indices.iter().map(|&i| grad[i]).sum();
        let h: f64 = indices.iter().map(|&i| hess[i]).sum();

        let make_leaf = |tree: &mut RegressionTree| {
            let id = tree.nodes.len();
            tree.nodes.push(Node::Leaf {
                weight: leaf_weight(g, h, config.lambda),
            });
            id
        };

        if depth >= config.max_depth || indices.len() < config.min_samples_split {
            return make_leaf(self);
        }

        // Exact greedy split search.
        let nfeat = rows[0].len();
        let parent_score = score(g, h, config.lambda);
        let mut best: Option<(usize, f32, f64)> = None; // (feature, threshold, gain)
        let mut sorted = indices.clone();
        // `f` is a column index across many rows, not an index into one
        // iterable slice.
        #[allow(clippy::needless_range_loop)]
        for f in 0..nfeat {
            sorted.sort_by(|&a, &b| {
                rows[a][f]
                    .partial_cmp(&rows[b][f])
                    .expect("finite feature values")
            });
            let mut gl = 0.0;
            let mut hl = 0.0;
            for w in 0..sorted.len() - 1 {
                let i = sorted[w];
                gl += grad[i];
                hl += hess[i];
                let v = rows[i][f];
                let v_next = rows[sorted[w + 1]][f];
                if v == v_next {
                    continue; // Cannot split between equal values.
                }
                let gr = g - gl;
                let hr = h - hl;
                let gain = 0.5
                    * (score(gl, hl, config.lambda) + score(gr, hr, config.lambda) - parent_score);
                if gain > config.min_gain && best.is_none_or(|(_, _, bg)| gain > bg) {
                    best = Some((f, (v + v_next) / 2.0, gain));
                }
            }
        }

        let Some((feature, threshold, _)) = best else {
            return make_leaf(self);
        };
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
            .into_iter()
            .partition(|&i| rows[i][feature] < threshold);
        debug_assert!(!left_idx.is_empty() && !right_idx.is_empty());

        let id = self.nodes.len();
        self.nodes.push(Node::Leaf { weight: 0.0 }); // Placeholder.
        let left = self.build(rows, grad, hess, left_idx, depth + 1, config);
        let right = self.build(rows, grad, hess, right_idx, depth + 1, config);
        self.nodes[id] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        id
    }

    /// Predicts the output weight for one row.
    pub fn predict(&self, row: &[f32]) -> f64 {
        let mut id = 0;
        loop {
            match &self.nodes[id] {
                Node::Leaf { weight } => return *weight,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    id = if row.get(*feature).copied().unwrap_or(0.0) < *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes (splits + leaves).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the tree is a single leaf.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Number of leaves.
    pub fn leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Gradients for squared error toward targets: grad = pred - y with
    /// pred = 0, hess = 1. Leaf weight then approximates the mean target.
    fn fit_to_targets(rows: &[Vec<f32>], targets: &[f64], config: &TreeConfig) -> RegressionTree {
        let grad: Vec<f64> = targets.iter().map(|y| -y).collect();
        let hess = vec![1.0; targets.len()];
        RegressionTree::fit(rows, &grad, &hess, config)
    }

    #[test]
    fn splits_a_step_function() {
        let rows: Vec<Vec<f32>> = (0..20).map(|i| vec![i as f32]).collect();
        let targets: Vec<f64> = (0..20).map(|i| if i < 10 { 0.0 } else { 10.0 }).collect();
        let tree = fit_to_targets(&rows, &targets, &TreeConfig::default());
        assert!(tree.predict(&[3.0]) < 2.0);
        assert!(tree.predict(&[15.0]) > 8.0);
        assert!(tree.leaves() >= 2);
    }

    #[test]
    fn finds_the_informative_feature() {
        // Feature 1 is pure noise; feature 0 decides the target.
        let rows: Vec<Vec<f32>> = (0..40)
            .map(|i| vec![(i % 2) as f32, (i % 7) as f32])
            .collect();
        let targets: Vec<f64> = (0..40)
            .map(|i| if i % 2 == 0 { -5.0 } else { 5.0 })
            .collect();
        let tree = fit_to_targets(&rows, &targets, &TreeConfig::default());
        assert!(tree.predict(&[0.0, 3.0]) < -3.0);
        assert!(tree.predict(&[1.0, 3.0]) > 3.0);
    }

    #[test]
    fn depth_zero_yields_single_leaf_mean() {
        let rows: Vec<Vec<f32>> = (0..10).map(|i| vec![i as f32]).collect();
        let targets = vec![4.0; 10];
        let config = TreeConfig {
            max_depth: 0,
            ..TreeConfig::default()
        };
        let tree = fit_to_targets(&rows, &targets, &config);
        assert_eq!(tree.len(), 1);
        // With λ=1 the estimate shrinks slightly below the mean.
        let w = tree.predict(&[5.0]);
        assert!(w > 3.0 && w <= 4.0, "w = {w}");
    }

    #[test]
    fn constant_features_produce_no_split() {
        let rows: Vec<Vec<f32>> = (0..10).map(|_| vec![1.0, 1.0]).collect();
        let targets: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let tree = fit_to_targets(&rows, &targets, &TreeConfig::default());
        assert_eq!(tree.len(), 1, "no split possible on constant features");
    }

    #[test]
    fn lambda_shrinks_leaf_weights() {
        let rows = vec![vec![0.0f32]];
        let targets = vec![10.0];
        let small = fit_to_targets(
            &rows,
            &targets,
            &TreeConfig {
                lambda: 0.1,
                ..TreeConfig::default()
            },
        );
        let large = fit_to_targets(
            &rows,
            &targets,
            &TreeConfig {
                lambda: 10.0,
                ..TreeConfig::default()
            },
        );
        assert!(small.predict(&[0.0]) > large.predict(&[0.0]));
    }

    #[test]
    fn out_of_range_feature_index_defaults_right_branch_safely() {
        let rows: Vec<Vec<f32>> = (0..20).map(|i| vec![i as f32]).collect();
        let targets: Vec<f64> = (0..20).map(|i| if i < 10 { 0.0 } else { 10.0 }).collect();
        let tree = fit_to_targets(&rows, &targets, &TreeConfig::default());
        // Predicting with an empty row must not panic.
        let _ = tree.predict(&[]);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn empty_fit_panics() {
        let _ = RegressionTree::fit(&[], &[], &[], &TreeConfig::default());
    }
}
