//! Gradient-boosted decision trees with a multi-class softmax objective.
//!
//! The paper compares RCACopilot against XGBoost (Table 2). This crate is
//! a from-scratch reimplementation of the parts that baseline needs:
//!
//! - [`tree`]: single regression trees grown by exact greedy splitting on
//!   first/second-order gradients, with XGBoost's leaf weights
//!   `-G/(H+λ)` and gain formula.
//! - [`booster`]: multi-class boosting — one tree per class per round fit
//!   to softmax gradients, with shrinkage.
//!
//! Inputs are dense `f32` feature rows; the RCA pipeline feeds it
//! truncated TF-IDF vectors.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod booster;
pub mod tree;

pub use booster::{Gbdt, GbdtConfig};
pub use tree::{RegressionTree, TreeConfig};
