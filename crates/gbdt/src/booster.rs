//! Multi-class gradient boosting over regression trees.

use crate::tree::{RegressionTree, TreeConfig};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Boosting hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GbdtConfig {
    /// Boosting rounds (trees per class).
    pub rounds: usize,
    /// Shrinkage (learning rate) applied to each tree's output.
    pub eta: f64,
    /// Per-tree growth settings.
    pub tree: TreeConfig,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        GbdtConfig {
            rounds: 40,
            eta: 0.3,
            tree: TreeConfig::default(),
        }
    }
}

/// A fitted multi-class booster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Gbdt {
    config: GbdtConfig,
    /// `trees[round][class]`.
    trees: Vec<Vec<RegressionTree>>,
    /// Label names, index = class id.
    labels: Vec<String>,
}

impl Gbdt {
    /// Trains on dense rows and string labels.
    ///
    /// # Panics
    ///
    /// Panics if inputs are empty or lengths disagree.
    pub fn train(rows: &[Vec<f32>], labels: &[String], config: GbdtConfig) -> Self {
        assert!(!rows.is_empty(), "training set must not be empty");
        assert_eq!(rows.len(), labels.len(), "labels length mismatch");

        let mut label_ids: BTreeMap<&str, usize> = BTreeMap::new();
        for l in labels {
            let next = label_ids.len();
            label_ids.entry(l.as_str()).or_insert(next);
        }
        let label_names: Vec<String> = {
            let mut v = vec![String::new(); label_ids.len()];
            for (name, id) in &label_ids {
                v[*id] = (*name).to_string();
            }
            v
        };
        let k = label_names.len();
        let n = rows.len();
        let y: Vec<usize> = labels.iter().map(|l| label_ids[l.as_str()]).collect();

        // margins[i][c]
        let mut margins = vec![vec![0.0f64; k]; n];
        let mut trees: Vec<Vec<RegressionTree>> = Vec::with_capacity(config.rounds);

        for _ in 0..config.rounds {
            let mut round_trees = Vec::with_capacity(k);
            // Softmax probabilities per sample.
            let probs: Vec<Vec<f64>> = margins.iter().map(|m| softmax(m)).collect();
            for c in 0..k {
                let grad: Vec<f64> = (0..n)
                    .map(|i| probs[i][c] - if y[i] == c { 1.0 } else { 0.0 })
                    .collect();
                let hess: Vec<f64> = (0..n)
                    .map(|i| (probs[i][c] * (1.0 - probs[i][c])).max(1e-6))
                    .collect();
                let tree = RegressionTree::fit(rows, &grad, &hess, &config.tree);
                for (i, row) in rows.iter().enumerate() {
                    margins[i][c] += config.eta * tree.predict(row);
                }
                round_trees.push(tree);
            }
            trees.push(round_trees);
        }

        Gbdt {
            config,
            trees,
            labels: label_names,
        }
    }

    /// The label set, index = class id.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Raw per-class margins for one row.
    pub fn margins(&self, row: &[f32]) -> Vec<f64> {
        let mut m = vec![0.0f64; self.labels.len()];
        for round in &self.trees {
            for (c, tree) in round.iter().enumerate() {
                m[c] += self.config.eta * tree.predict(row);
            }
        }
        m
    }

    /// Class probabilities for one row.
    pub fn predict_proba(&self, row: &[f32]) -> Vec<f64> {
        softmax(&self.margins(row))
    }

    /// The most likely label and its probability.
    pub fn predict(&self, row: &[f32]) -> (&str, f64) {
        let probs = self.predict_proba(row);
        let (best, p) = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probabilities"))
            .expect("at least one class");
        (&self.labels[best], *p)
    }

    /// Total number of trees.
    pub fn tree_count(&self) -> usize {
        self.trees.iter().map(Vec::len).sum()
    }
}

fn softmax(scores: &[f64]) -> Vec<f64> {
    let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = scores.iter().map(|s| (s - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated Gaussian-ish blobs in 2D.
    fn blobs() -> (Vec<Vec<f32>>, Vec<String>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60 {
            let (cx, cy, label) = match i % 3 {
                0 => (0.0, 0.0, "a"),
                1 => (5.0, 0.0, "b"),
                _ => (0.0, 5.0, "c"),
            };
            // Deterministic jitter.
            let dx = ((i * 37) % 10) as f32 / 10.0 - 0.5;
            let dy = ((i * 53) % 10) as f32 / 10.0 - 0.5;
            rows.push(vec![cx + dx, cy + dy]);
            labels.push(label.to_string());
        }
        (rows, labels)
    }

    fn quick_config() -> GbdtConfig {
        GbdtConfig {
            rounds: 12,
            eta: 0.4,
            tree: TreeConfig {
                max_depth: 3,
                ..TreeConfig::default()
            },
        }
    }

    #[test]
    fn separable_blobs_are_classified() {
        let (rows, labels) = blobs();
        let model = Gbdt::train(&rows, &labels, quick_config());
        assert_eq!(model.labels().len(), 3);
        assert_eq!(model.predict(&[0.1, -0.1]).0, "a");
        assert_eq!(model.predict(&[5.2, 0.3]).0, "b");
        assert_eq!(model.predict(&[-0.2, 5.1]).0, "c");
        let (_, p) = model.predict(&[0.0, 0.0]);
        assert!(p > 0.7, "confidence {p}");
    }

    #[test]
    fn probabilities_are_normalized() {
        let (rows, labels) = blobs();
        let model = Gbdt::train(&rows, &labels, quick_config());
        let probs = model.predict_proba(&[2.5, 2.5]);
        let sum: f64 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn training_accuracy_is_high_on_train_set() {
        let (rows, labels) = blobs();
        let model = Gbdt::train(&rows, &labels, quick_config());
        let correct = rows
            .iter()
            .zip(&labels)
            .filter(|(r, l)| model.predict(r).0 == l.as_str())
            .count();
        assert!(correct >= 57, "train accuracy {correct}/60");
    }

    #[test]
    fn tree_count_matches_rounds_times_classes() {
        let (rows, labels) = blobs();
        let model = Gbdt::train(&rows, &labels, quick_config());
        assert_eq!(model.tree_count(), 12 * 3);
    }

    #[test]
    fn single_class_training_predicts_that_class() {
        let rows: Vec<Vec<f32>> = (0..5).map(|i| vec![i as f32]).collect();
        let labels = vec!["only".to_string(); 5];
        let model = Gbdt::train(&rows, &labels, quick_config());
        assert_eq!(model.predict(&[3.0]).0, "only");
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_training_panics() {
        let _ = Gbdt::train(&[], &[], quick_config());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn probabilities_normalized_on_arbitrary_inputs(
            rows in proptest::collection::vec(
                proptest::collection::vec(-10.0f32..10.0, 3..=3), 6..20),
            query in proptest::collection::vec(-10.0f32..10.0, 3..=3)
        ) {
            let labels: Vec<String> = (0..rows.len()).map(|i| format!("c{}", i % 3)).collect();
            let model = Gbdt::train(&rows, &labels, GbdtConfig {
                rounds: 3,
                eta: 0.3,
                tree: crate::tree::TreeConfig::default(),
            });
            let probs = model.predict_proba(&query);
            let sum: f64 = probs.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            prop_assert!(probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }
}
