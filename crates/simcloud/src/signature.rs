//! Telemetry signatures: what each root-cause category plants into an
//! incident's snapshot.
//!
//! Per the paper's Insight 1, "determining the root cause based on a
//! single data source can be challenging": every signature spreads its
//! evidence over at least two sources (e.g. hub-port exhaustion = failing
//! probe logs *plus* the UDP socket table), and the pieces reachable from
//! the alert alone are deliberately ambiguous between categories that
//! share an alert type.
//!
//! Handlers query *fixed* probe names, metric names, and queue names (they
//! are predefined workflows); signatures therefore plant into those fixed
//! names and differentiate categories through the text that survives
//! entity masking: exception types, component/service names, and setting
//! names.

use crate::catalog::{CategorySpec, Family};
use crate::topology::Topology;
use rand::rngs::SmallRng;
use rand::Rng;
use rcacopilot_telemetry::artifacts::{
    CertStatus, CertificateRecord, DiskUsage, ProbeResult, ProcessInfo, QueueStat, SocketStat,
    StackGroup, TenantConfigRecord,
};
use rcacopilot_telemetry::ids::{ForestId, MachineId, MachineRole, ProcessId, TenantId};
use rcacopilot_telemetry::log::{LogLevel, LogRecord};
use rcacopilot_telemetry::time::{SimDuration, SimTime};
use rcacopilot_telemetry::trace::{SpanStatus, Trace, TraceSpan};
use rcacopilot_telemetry::TelemetrySnapshot;

/// Fixed probe names handlers know how to query.
pub mod probes {
    /// Outbound hub proxy probe (paper Figure 6).
    pub const HUB_OUTBOUND: &str = "DatacenterHubOutboundProxyProbe";
    /// DNS resolution probe.
    pub const DNS: &str = "DnsResolutionProbe";
    /// Outbound SMTP TLS probe.
    pub const SMTP_TLS: &str = "SmtpTlsProbe";
    /// Authentication endpoint probe.
    pub const AUTH: &str = "AuthEndpointProbe";
    /// Cross-forest network reachability probe.
    pub const REACHABILITY: &str = "NetworkReachabilityProbe";
    /// Inbound SMTP acceptance probe.
    pub const SMTP_IN: &str = "SmtpInboundProbe";
}

/// Fixed metric names handlers know how to query.
pub mod metrics {
    /// Component availability percentage.
    pub const AVAILABILITY: &str = "availability";
    /// Concurrent inbound server connections.
    pub const CONCURRENT_CONNECTIONS: &str = "concurrent_connections";
    /// End-to-end delivery latency (ms).
    pub const DELIVERY_LATENCY: &str = "delivery_latency_ms";
    /// Poisoned-message detections per hour.
    pub const POISON_COUNT: &str = "poison_message_count";
    /// Authentication failures per minute.
    pub const AUTH_FAILURES: &str = "auth_failures";
    /// Dependency call latency (ms).
    pub const DEPENDENCY_LATENCY: &str = "dependency_latency_ms";
    /// Machine memory pressure percentage.
    pub const MEMORY_PRESSURE: &str = "memory_pressure";
    /// Machine CPU utilization percentage.
    pub const CPU_UTIL: &str = "cpu_util";
    /// UDP sockets in use on a machine.
    pub const UDP_SOCKETS: &str = "udp_socket_count";
}

/// Context handed to the planting engine for one incident.
pub struct PlantCtx<'a> {
    /// Deterministic RNG for jitter.
    pub rng: &'a mut SmallRng,
    /// Alert time; evidence is planted shortly before it.
    pub at: SimTime,
    /// Forest the incident strikes.
    pub forest: ForestId,
    /// Service topology (to pick plausible machines).
    pub topology: &'a Topology,
    /// First machine the signature touched — machine-scoped alerts point
    /// here so the handler's scope contains the planted evidence.
    pub primary: Option<MachineId>,
}

impl PlantCtx<'_> {
    fn t(&mut self, max_back_mins: u64) -> SimTime {
        let back = self.rng.gen_range(0..=max_back_mins);
        self.at.saturating_sub(SimDuration::from_mins(back))
    }

    fn machine(&mut self, role: MachineRole) -> MachineId {
        let m = self.topology.random_machine(self.rng, self.forest, role);
        if self.primary.is_none() {
            self.primary = Some(m);
        }
        m
    }

    fn machines(&mut self, role: MachineRole, n: usize) -> Vec<MachineId> {
        let ms = self
            .topology
            .random_machines(self.rng, self.forest, role, n);
        if self.primary.is_none() {
            self.primary = ms.first().copied();
        }
        ms
    }

    fn pid(&mut self) -> ProcessId {
        ProcessId(self.rng.gen_range(1000..400_000))
    }

    fn tenant(&mut self) -> TenantId {
        TenantId(self.rng.gen_range(1..1_000_000))
    }
}

fn log(
    snap: &mut TelemetrySnapshot,
    at: SimTime,
    machine: MachineId,
    process: &str,
    component: &str,
    level: LogLevel,
    message: String,
) {
    snap.logs.push(LogRecord {
        at,
        machine,
        process: process.to_string(),
        component: component.to_string(),
        level,
        message,
    });
}

fn probe_failures(
    snap: &mut TelemetrySnapshot,
    ctx: &mut PlantCtx<'_>,
    probe: &str,
    machine: MachineId,
    fails: usize,
    error: &str,
) {
    for _ in 0..fails {
        let at = ctx.t(30);
        snap.probes.push(ProbeResult {
            probe: probe.to_string(),
            machine,
            at,
            success: false,
            error: Some(error.to_string()),
        });
    }
}

fn queue(
    snap: &mut TelemetrySnapshot,
    machine: MachineId,
    name: &str,
    length: u64,
    limit: u64,
    oldest_secs: u64,
) {
    snap.queues.push(QueueStat {
        machine,
        queue: name.to_string(),
        length,
        limit,
        oldest_age_secs: oldest_secs,
    });
}

fn crashes(
    snap: &mut TelemetrySnapshot,
    ctx: &mut PlantCtx<'_>,
    machine: MachineId,
    process: &str,
    count: (u32, u32),
    exception: &str,
) {
    let pid = ctx.pid();
    let count = ctx.rng.gen_range(count.0..=count.1);
    snap.processes.push(ProcessInfo {
        machine,
        process: process.to_string(),
        pid,
        crash_count: count,
        memory_mb: ctx.rng.gen_range(400..2500),
        last_crash_exception: Some(exception.to_string()),
    });
}

fn stack(
    snap: &mut TelemetrySnapshot,
    machine: MachineId,
    process: &str,
    threads: usize,
    frames: &[&str],
    blocked: bool,
) {
    snap.stacks.push(StackGroup {
        machine,
        process: process.to_string(),
        thread_count: threads,
        frames: frames.iter().map(|f| f.to_string()).collect(),
        blocked,
    });
}

#[allow(clippy::too_many_arguments)]
fn trace_failures(
    snap: &mut TelemetrySnapshot,
    ctx: &mut PlantCtx<'_>,
    service: &str,
    operation: &str,
    status: SpanStatus,
    error: &str,
    machine: MachineId,
    count: (usize, usize),
) {
    let count = ctx.rng.gen_range(count.0..=count.1);
    for _ in 0..count {
        let trace_id = ctx.rng.gen::<u64>();
        let start = ctx.t(45);
        snap.traces.push(Trace {
            trace_id,
            spans: vec![
                TraceSpan {
                    trace_id,
                    span_id: 0,
                    parent: None,
                    service: "SmtpIn".to_string(),
                    operation: "AcceptMessage".to_string(),
                    machine,
                    start,
                    duration: SimDuration::from_secs(ctx.rng.gen_range(1..20)),
                    status: SpanStatus::Error,
                    error: Some("downstream failure".to_string()),
                },
                TraceSpan {
                    trace_id,
                    span_id: 1,
                    parent: Some(0),
                    service: service.to_string(),
                    operation: operation.to_string(),
                    machine,
                    start,
                    duration: SimDuration::from_secs(ctx.rng.gen_range(20..40)),
                    status,
                    error: Some(error.to_string()),
                },
            ],
        });
    }
}

fn metric_anomaly(
    snap: &mut TelemetrySnapshot,
    ctx: &mut PlantCtx<'_>,
    metric: &str,
    machine: MachineId,
    value: (f64, f64),
    samples: usize,
) {
    let value = if value.0 < value.1 {
        ctx.rng.gen_range(value.0..value.1)
    } else {
        value.0
    };
    for i in 0..samples {
        let jitter = 1.0 + ctx.rng.gen_range(-0.05..0.05);
        let at = ctx
            .at
            .saturating_sub(SimDuration::from_mins((samples - i) as u64 * 5));
        snap.metrics.record(metric, machine, at, value * jitter);
    }
}

/// Index of the phrasing variant used by `spec` around `at`.
///
/// Real recurrences inside one burst come from the *same* fault and log
/// identical text; a later episode of the same root cause often surfaces
/// through a different code path with different wording. Phrasing is
/// therefore stable within a ~12-day window and varies across bursts —
/// which is precisely what makes recency (the paper's temporal-decay
/// term) valuable for retrieval.
fn phrase_idx(spec: &CategorySpec, at: SimTime, n: usize) -> usize {
    let h = rcacopilot_telemetry::ids::ForestId(0); // Anchor type only.
    let _ = h;
    let key = format!("{}|{}", spec.name, at.days_since_epoch() / 12);
    (fnv(&key) % n as u64) as usize
}

/// Local FNV-1a (mirrors `rcacopilot_textkit::ngram::hash_token` without
/// adding a dependency edge).
fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Plants the telemetry signature of `spec` into `snap` and returns the
/// monitor's alert message.
/// Generic stand-in used when a burst's telemetry does not name the
/// culprit explicitly.
fn generic_anchor(family: Family) -> &'static str {
    match family {
        Family::CodeRegression | Family::BadPatchRollout => "PipelineComponent",
        Family::DependencyTimeout | Family::NetworkPartition => "InternalService",
        Family::MemoryLeak | Family::ThreadPoolStarvation => "ServiceHost",
        Family::ExpiredCertificate => "InternalEndpoint",
        Family::ConfigInvalid => "TenantTransportSetting",
        Family::QueueOverflow | Family::MessageLoop => "Secondary",
        Family::DnsMisconfig => "ZoneRecord",
        Family::DatabaseFailover => "MailboxDatabase",
        Family::QuotaExceeded => "ResourceBudget",
        Family::PoisonMessage => "ContentParser",
        _ => "InternalComponent",
    }
}

/// Families whose signature text can hide the culprit's name (their match
/// arms never dispatch on the variant string).
fn anchor_can_hide(family: Family) -> bool {
    matches!(
        family,
        Family::CodeRegression
            | Family::DependencyTimeout
            | Family::MemoryLeak
            | Family::ExpiredCertificate
            | Family::ConfigInvalid
            | Family::QueueOverflow
            | Family::NetworkPartition
            | Family::DnsMisconfig
            | Family::ThreadPoolStarvation
            | Family::BadPatchRollout
            | Family::DatabaseFailover
            | Family::QuotaExceeded
            | Family::MessageLoop
            | Family::PoisonMessage
    )
}

/// Plants the telemetry signature of `spec` into `snap` and returns the
/// monitor's alert message.
pub fn plant(spec: &CategorySpec, ctx: &mut PlantCtx<'_>, snap: &mut TelemetrySnapshot) -> String {
    let ph = phrase_idx(spec, ctx.at, 3);
    // Anchor dropout: in a burst-stable minority of episodes the telemetry is
    // generic about *which* component/setting/service is at fault — the
    // culprit was only identified during post-investigation. Such
    // incidents cannot be classified from text alone; recency against
    // labeled history can still resolve them (paper Insight 2).
    let hide = anchor_can_hide(spec.family)
        && fnv(&format!(
            "{}|{}|anchor",
            spec.name,
            ctx.at.days_since_epoch() / 12
        )) % 100
            < 10;
    let v: &str = if hide {
        generic_anchor(spec.family)
    } else {
        spec.variant.as_str()
    };
    match spec.family {
        Family::AuthCertIssue => {
            let fd = ctx.machine(MachineRole::FrontDoor);
            snap.certs.push(CertificateRecord {
                subject: "CN=auth.transport.local".into(),
                domain: "transport.local".into(),
                tenant: None,
                valid_from: ctx.at.saturating_sub(SimDuration::from_days(2)),
                valid_to: ctx.at + SimDuration::from_days(363),
                status: CertStatus::Invalid,
                overrides_existing: true,
            });
            let at = ctx.t(20);
            log(snap, at, fd, "Transport.exe", "AuthClient", LogLevel::Error,
                "TokenRequestFailedException: certificate validation failed for subject CN=auth.transport.local; token creation aborted".into());
            trace_failures(
                snap,
                ctx,
                "AuthService",
                "IssueToken",
                SpanStatus::Error,
                "certificate chain validation failed",
                fd,
                (6, 6),
            );
            metric_anomaly(snap, ctx, metrics::AUTH_FAILURES, fd, (420.0, 420.0), 6);
            "Token creation failures detected; multiple services report users experiencing outages."
                .into()
        }
        Family::HubPortExhaustion => {
            let fd = ctx.machine(MachineRole::FrontDoor);
            let total = ctx.rng.gen_range(14_000u64..16_500);
            snap.sockets.push(SocketStat {
                machine: fd,
                protocol: "udp".into(),
                process: "Transport.exe".into(),
                pid: ctx.pid(),
                count: total - ctx.rng.gen_range(200..400),
            });
            for proc_name in [
                "w3wp.exe",
                "svchost.exe",
                "Microsoft.Transport.Store.Worker.exe",
            ] {
                snap.sockets.push(SocketStat {
                    machine: fd,
                    protocol: "udp".into(),
                    process: proc_name.into(),
                    pid: ctx.pid(),
                    count: ctx.rng.gen_range(5..80),
                });
            }
            probe_failures(snap, ctx, probes::HUB_OUTBOUND, fd, 2,
                "InformativeSocketException: No such host is known. A WinSock error: 11001 encountered when connecting to host at TcpClientFactory.Create(...) at SimpleSmtpClient.Connect(...)");
            let at = ctx.t(25);
            let msg = [
                "InformativeSocketException: No such host is known. A WinSock error: 11001 encountered; DNS resolution failed for outbound connection",
                "SmtpConnectorException: outbound connect aborted, WinSock error: 11001 (host not found); name lookup could not be serviced",
                "ProxySessionSetupException: WinSock error: 11001 while opening proxy session; resolver request never left the machine",
            ][ph];
            log(
                snap,
                at,
                fd,
                "Transport.exe",
                "SmtpOut",
                LogLevel::Error,
                msg.into(),
            );
            metric_anomaly(
                snap,
                ctx,
                metrics::UDP_SOCKETS,
                fd,
                (total as f64, total as f64),
                5,
            );
            "Detected failures when connecting to the front door server; outbound proxy connection requests failing.".into()
        }
        Family::DeliveryHang => {
            let mb = ctx.machine(MachineRole::Mailbox);
            let limit = 1500;
            queue(
                snap,
                mb,
                "mailbox_delivery",
                ctx.rng.gen_range(9_000..14_000),
                limit,
                ctx.rng.gen_range(7_000..16_000),
            );
            stack(
                snap,
                mb,
                "TransportDelivery.exe",
                ctx.rng.gen_range(40..90),
                &[
                    "System.Threading.Monitor.Wait(Object, Int32)",
                    "DeliveryQueue.WaitForCapacity(...)",
                    "MailboxDeliveryService.DeliverNext(...)",
                ],
                true,
            );
            let at = ctx.t(40);
            let msg = [
                "mailbox delivery queue length exceeded configured limit; delivery service appears hung",
                "MailboxDeliveryStallWarning: queued message count above limit and drain rate near zero",
                "delivery worker heartbeat stale while mailbox_delivery backlog kept growing past its limit",
            ][ph];
            log(
                snap,
                at,
                mb,
                "TransportDelivery.exe",
                "MailboxDeliveryHealth",
                LogLevel::Warning,
                msg.into(),
            );
            "Too many messages stuck in the delivery queue; mailbox delivery latency rising.".into()
        }
        Family::CodeRegression => {
            let mb = ctx.machine(MachineRole::Mailbox);
            let build = format!(
                "15.20.{}.{}",
                ctx.rng.gen_range(6000..7000),
                ctx.rng.gen_range(2..30)
            );
            crashes(snap, ctx, mb, "Transport.exe", (4, 14),
                &format!("System.NullReferenceException at {v}.ProcessMessage: object reference not set to an instance of an object"));
            metric_anomaly(snap, ctx, metrics::AVAILABILITY, mb, (82.0, 93.0), 6);
            let at = ctx.t(30);
            let msg = [
                format!("{v}Exception: unhandled failure in {v} pipeline stage after deployment of build {build}"),
                format!("System.NullReferenceException at {v}.ProcessMessage after rollout of build {build}; failure rate correlates with the new binaries"),
                format!("regression suspected in {v}: availability fell immediately after build {build} reached the forest"),
            ][ph].clone();
            log(snap, at, mb, "Transport.exe", v, LogLevel::Error, msg);
            snap.provisioning
                .push(rcacopilot_telemetry::artifacts::ProvisioningRecord {
                    machine: mb,
                    state: "Active".into(),
                    build,
                    since: ctx
                        .at
                        .saturating_sub(SimDuration::from_hours(ctx.rng.gen_range(2..20))),
                });
            "A component's availability dropped below the SLO.".into()
        }
        Family::CertForBogusTenants => {
            let fd = ctx.machine(MachineRole::FrontDoor);
            let domain = "bulkmail-certs.com";
            for _ in 0..ctx.rng.gen_range(8..14) {
                let tenant = ctx.tenant();
                snap.certs.push(CertificateRecord {
                    subject: format!("CN={domain}"),
                    domain: domain.into(),
                    tenant: Some(tenant),
                    valid_from: ctx
                        .at
                        .saturating_sub(SimDuration::from_days(ctx.rng.gen_range(1..10))),
                    valid_to: ctx.at + SimDuration::from_days(90),
                    status: CertStatus::Valid,
                    overrides_existing: false,
                });
            }
            metric_anomaly(
                snap,
                ctx,
                metrics::CONCURRENT_CONNECTIONS,
                fd,
                (9_000.0, 12_000.0),
                6,
            );
            let at = ctx.t(15);
            let msg = [
                format!("connector authenticated with certificate domain {domain}; many newly created tenants share this connector certificate"),
                format!("spike of connector sessions presenting certificate domain {domain} across freshly provisioned tenants"),
                format!("abuse pattern: certificate domain {domain} reused by a swarm of new tenants to open connectors"),
            ][ph].clone();
            log(
                snap,
                at,
                fd,
                "Transport.exe",
                "SmtpIn",
                LogLevel::Warning,
                msg,
            );
            "The number of concurrent server connections exceeded the configured limit.".into()
        }
        Family::MaliciousAttack => {
            let mb = ctx.machine(MachineRole::Mailbox);
            let (exc, detail) = match v {
                "PowerShellBlob" => (
                    "SerializationException",
                    "malicious binary blob deserialization detected in remote PowerShell pipeline",
                ),
                "OAuthTokenReplay" => (
                    "SecurityTokenReplayDetectedException",
                    "OAuth token replay detected across tenants",
                ),
                "SmtpVerbAbuse" => (
                    "SmtpProtocolViolationException",
                    "unexpected SMTP verb sequence used to exploit state machine",
                ),
                _ => (
                    "DecompressionBombException",
                    "zip bomb attachment expanded beyond decompression limits",
                ),
            };
            crashes(
                snap,
                ctx,
                mb,
                "w3wp.exe",
                (8, 25),
                &format!("{exc}: {detail}"),
            );
            let at = ctx.t(10);
            log(
                snap,
                at,
                mb,
                "w3wp.exe",
                "SecurityAudit",
                LogLevel::Critical,
                format!("{exc}: {detail}; active exploit suspected"),
            );
            metric_anomaly(snap, ctx, metrics::CPU_UTIL, mb, (97.0, 97.0), 4);
            "Forest-wide process crashes exceeded threshold.".into()
        }
        Family::UseRouteResolution => {
            let mb = ctx.machine(MachineRole::Mailbox);
            metric_anomaly(snap, ctx, metrics::POISON_COUNT, mb, (40.0, 90.0), 5);
            let at = ctx.t(20);
            log(
                snap,
                at,
                mb,
                "EdgeTransport.exe",
                "Categorizer",
                LogLevel::Error,
                "PoisonMessageDetected: message crashed categorizer during route resolution".into(),
            );
            let at2 = ctx.t(25);
            log(snap, at2, mb, "EdgeTransport.exe", "ConfigService", LogLevel::Error,
                "ConfigServiceUpdateException: configuration service was unable to update routing settings; stale settings in use".into());
            trace_failures(
                snap,
                ctx,
                "ConfigService",
                "UpdateSettings",
                SpanStatus::Error,
                "settings update rejected",
                mb,
                (4, 4),
            );
            crashes(
                snap,
                ctx,
                mb,
                "EdgeTransport.exe",
                (3, 8),
                "ConfigServiceUpdateException: settings update failed during route resolution",
            );
            "Poisoned messages detected above threshold in the forest.".into()
        }
        Family::FullDisk => {
            let mb = ctx.machine(MachineRole::Mailbox);
            let vol = if ctx.rng.gen_bool(0.5) { "C:" } else { "E:" };
            snap.disks.push(DiskUsage {
                machine: mb,
                volume: vol.into(),
                used_pct: ctx.rng.gen_range(99.1..100.0),
                free_bytes: ctx.rng.gen_range(1..400) << 20,
            });
            for proc_name in ["Transport.exe", "Microsoft.Transport.Store.Worker.exe"] {
                crashes(
                    snap,
                    ctx,
                    mb,
                    proc_name,
                    (3, 9),
                    "System.IO.IOException: There is not enough space on the disk",
                );
            }
            let at = ctx.t(25);
            log(snap, at, mb, "Transport.exe", "DiagnosticsLog", LogLevel::Error,
                format!("System.IO.IOException: There is not enough space on the disk; failed writing to {vol}\\TransportRoles\\Logs"));
            "Multiple processes crashed throwing IO exceptions.".into()
        }
        Family::InvalidJournaling => {
            let mb = ctx.machine(MachineRole::Mailbox);
            let tenant = ctx.tenant();
            queue(
                snap,
                mb,
                "submission",
                ctx.rng.gen_range(6_000..12_000),
                2000,
                ctx.rng.gen_range(4_000..12_000),
            );
            snap.tenant_configs.push(TenantConfigRecord {
                tenant,
                setting: "JournalingReportNdrTo".into(),
                value: "<>".into(),
                valid: false,
                exception: Some("TenantSettingsNotFoundException".into()),
            });
            let at = ctx.t(30);
            let msg = [
                format!("TenantSettingsNotFoundException: transport config JournalingReportNdrTo invalid for {tenant}; submission processing suspended"),
                format!("journaling agent failed for {tenant}: TenantSettingsNotFoundException while reading JournalingReportNdrTo"),
                format!("submission worker deferred all messages of {tenant}: JournalingReportNdrTo rejected by validation (TenantSettingsNotFoundException)"),
            ][ph].clone();
            log(
                snap,
                at,
                mb,
                "EdgeTransport.exe",
                "Journaling",
                LogLevel::Error,
                msg,
            );
            "Messages stuck in submission queue for a long time.".into()
        }
        Family::DispatcherTaskCancelled => {
            let mb = ctx.machine(MachineRole::Mailbox);
            queue(
                snap,
                mb,
                "submission",
                ctx.rng.gen_range(5_000..11_000),
                2000,
                ctx.rng.gen_range(3_000..10_000),
            );
            let at = ctx.t(20);
            let msg = [
                "System.Threading.Tasks.TaskCanceledException at AuthClient.GetTokenAsync: dispatcher task cancelled waiting for authentication",
                "dispatcher worker aborted: token acquisition from AuthClient.GetTokenAsync never completed before the task deadline",
                "TaskCanceledException storm in Dispatcher: queued submissions waiting on authentication tokens that never arrive",
            ][ph];
            log(
                snap,
                at,
                mb,
                "EdgeTransport.exe",
                "Dispatcher",
                LogLevel::Error,
                msg.into(),
            );
            trace_failures(
                snap,
                ctx,
                "AuthService",
                "GetToken",
                SpanStatus::Timeout,
                "connection attempt failed: network unreachable",
                mb,
                (7, 7),
            );
            metric_anomaly(
                snap,
                ctx,
                metrics::DEPENDENCY_LATENCY,
                mb,
                (30_000.0, 30_000.0),
                5,
            );
            "Normal priority messages queued in submission queues for a long time.".into()
        }
        Family::DependencyTimeout => {
            let mb = ctx.machine(MachineRole::Mailbox);
            trace_failures(
                snap,
                ctx,
                v,
                "Call",
                SpanStatus::Timeout,
                &format!("deadline exceeded calling {v}"),
                mb,
                (5, 12),
            );
            let at = ctx.t(20);
            let msg = [
                format!("System.TimeoutException: request to {v} exceeded 30000ms deadline; retries exhausted"),
                format!("TaskCanceledException: call into {v} cancelled after missing its completion deadline"),
                format!("{v} request latency breached the client budget; circuit breaker falling back after repeated timeouts"),
            ][ph].clone();
            log(
                snap,
                at,
                mb,
                "Transport.exe",
                "ServiceClient",
                LogLevel::Error,
                msg,
            );
            metric_anomaly(
                snap,
                ctx,
                metrics::DEPENDENCY_LATENCY,
                mb,
                (30_000.0, 30_000.0),
                6,
            );
            "Calls to a dependency service are timing out across the forest.".into()
        }
        Family::MemoryLeak => {
            let mb = ctx.machine(MachineRole::Mailbox);
            let proc_name = format!("{v}.exe");
            snap.processes.push(ProcessInfo {
                machine: mb,
                process: proc_name.clone(),
                pid: ctx.pid(),
                crash_count: ctx.rng.gen_range(1..3),
                memory_mb: ctx.rng.gen_range(12_000..22_000),
                last_crash_exception: Some("System.OutOfMemoryException".into()),
            });
            metric_anomaly(snap, ctx, metrics::MEMORY_PRESSURE, mb, (93.0, 99.0), 8);
            let at = ctx.t(30);
            let msg = [
                format!("System.OutOfMemoryException in {v}: private bytes grew monotonically since last restart"),
                format!("working set of {v} climbed past the recycle threshold; allocations failing with OutOfMemoryException"),
                format!("{v} heap growth unbounded between restarts; garbage collection cannot reclaim the leaked graphs"),
            ][ph].clone();
            log(
                snap,
                at,
                mb,
                &proc_name,
                "ResourceMonitor",
                LogLevel::Error,
                msg,
            );
            "Machines report sustained memory pressure.".into()
        }
        Family::ExpiredCertificate => {
            let fd = ctx.machine(MachineRole::FrontDoor);
            snap.certs.push(CertificateRecord {
                subject: format!("CN={v}.transport.local"),
                domain: "transport.local".into(),
                tenant: None,
                valid_from: ctx.at.saturating_sub(SimDuration::from_days(365)),
                valid_to: ctx
                    .at
                    .saturating_sub(SimDuration::from_hours(ctx.rng.gen_range(1..72))),
                status: CertStatus::Expired,
                overrides_existing: false,
            });
            probe_failures(
                snap,
                ctx,
                probes::AUTH,
                fd,
                3,
                &format!("CertificateExpiredException: certificate for endpoint {v} has expired"),
            );
            let at = ctx.t(15);
            let msg = [
                format!("CertificateExpiredException: {v} endpoint certificate expired; authentication handshake rejected"),
                format!("authentication against {v} failing: presented certificate is past its NotAfter date"),
                format!("{v} endpoint rejecting sessions since certificate expiry; rotation job did not run"),
            ][ph].clone();
            log(
                snap,
                at,
                fd,
                "Transport.exe",
                "TlsAuth",
                LogLevel::Error,
                msg,
            );
            metric_anomaly(snap, ctx, metrics::AUTH_FAILURES, fd, (150.0, 400.0), 5);
            "Authentication against an internal endpoint is failing.".into()
        }
        Family::ConfigInvalid => {
            let mb = ctx.machine(MachineRole::Mailbox);
            let tenant = ctx.tenant();
            queue(
                snap,
                mb,
                "submission",
                ctx.rng.gen_range(3_000..7_000),
                2000,
                ctx.rng.gen_range(2_000..8_000),
            );
            snap.tenant_configs.push(TenantConfigRecord {
                tenant,
                setting: v.into(),
                value: "0xFFFF_invalid".into(),
                valid: false,
                exception: Some("InvalidConfigurationException".into()),
            });
            let at = ctx.t(25);
            let msg = [
                format!("InvalidConfigurationException: {v} value rejected for {tenant}; affected messages deferred"),
                format!("tenant {tenant} supplied an unusable {v} setting; pipeline defers every message touching it"),
                format!("configuration validation failed on {v} for {tenant}: value outside the accepted schema"),
            ][ph].clone();
            log(
                snap,
                at,
                mb,
                "EdgeTransport.exe",
                "ConfigValidation",
                LogLevel::Error,
                msg,
            );
            "Messages for affected tenants backed up in the submission queue.".into()
        }
        Family::QueueOverflow => {
            let mb = ctx.machine(MachineRole::Mailbox);
            let qname = v.to_lowercase();
            queue(
                snap,
                mb,
                &qname,
                ctx.rng.gen_range(4_000..9_000),
                1000,
                ctx.rng.gen_range(2_000..9_000),
            );
            let at = ctx.t(25);
            let msg = [
                format!("{v} queue length exceeded limit; drain rate below arrival rate"),
                format!("backlog alarm on the {v} queue: arrivals outpace the consumer and the limit is breached"),
                format!("{v} queue saturated; oldest entries aging while the drain path stays slow"),
            ][ph].clone();
            log(
                snap,
                at,
                mb,
                "EdgeTransport.exe",
                "QueueMonitor",
                LogLevel::Warning,
                msg,
            );
            metric_anomaly(
                snap,
                ctx,
                metrics::DELIVERY_LATENCY,
                mb,
                (2_000.0, 5_000.0),
                4,
            );
            "A secondary queue exceeded its configured limit.".into()
        }
        Family::NetworkPartition => {
            let hb = ctx.machine(MachineRole::Hub);
            probe_failures(
                snap,
                ctx,
                probes::REACHABILITY,
                hb,
                3,
                &format!("SocketException: no route to host via {v}"),
            );
            trace_failures(
                snap,
                ctx,
                "RemoteForestRelay",
                "Connect",
                SpanStatus::Error,
                &format!("connection reset by peer traversing {v}"),
                hb,
                (6, 6),
            );
            let at = ctx.t(15);
            log(snap, at, hb, "Transport.exe", "SmtpOut", LogLevel::Error,
                format!("System.Net.Sockets.SocketException: connection reset by peer; all paths via {v} affected"));
            "Cross-service calls are failing with connection resets.".into()
        }
        Family::DnsMisconfig => {
            let fd = ctx.machine(MachineRole::FrontDoor);
            probe_failures(
                snap,
                ctx,
                probes::DNS,
                fd,
                3,
                &format!("DnsRecordMissingException: {v} lookup returned NXDOMAIN"),
            );
            let at = ctx.t(20);
            log(snap, at, fd, "Transport.exe", "DnsResolver", LogLevel::Error,
                format!("DnsRecordMissingException: {v} resolution failed after zone update; NXDOMAIN for expected record"));
            trace_failures(
                snap,
                ctx,
                "DnsResolver",
                "Resolve",
                SpanStatus::Error,
                "NXDOMAIN",
                fd,
                (5, 5),
            );
            "Outbound SMTP connections failing to resolve destination hosts.".into()
        }
        Family::ThreadPoolStarvation => {
            let mb = ctx.machine(MachineRole::Mailbox);
            let proc_name = format!("{v}.exe");
            stack(
                snap,
                mb,
                &proc_name,
                ctx.rng.gen_range(60..120),
                &[
                    "System.Threading.Tasks.Task.Wait()",
                    "SyncOverAsyncBridge.BlockingGet(...)",
                    "WorkItemDispatcher.Dispatch(...)",
                ],
                true,
            );
            metric_anomaly(snap, ctx, metrics::CPU_UTIL, mb, (20.0, 35.0), 4);
            let at = ctx.t(20);
            log(snap, at, mb, &proc_name, "ThreadPoolMonitor", LogLevel::Warning,
                format!("thread pool starvation detected in {v}: all workers blocked on synchronous waits"));
            "A service component stopped making progress.".into()
        }
        Family::BadPatchRollout => {
            let machines = ctx.machines(MachineRole::Mailbox, 3);
            let build = format!(
                "15.20.{}.{}",
                ctx.rng.gen_range(7000..7500),
                ctx.rng.gen_range(1..9)
            );
            for m in &machines {
                snap.provisioning
                    .push(rcacopilot_telemetry::artifacts::ProvisioningRecord {
                        machine: *m,
                        state: "Active".into(),
                        build: build.clone(),
                        since: ctx
                            .at
                            .saturating_sub(SimDuration::from_hours(ctx.rng.gen_range(1..8))),
                    });
            }
            let m0 = machines[0];
            metric_anomaly(snap, ctx, metrics::AVAILABILITY, m0, (85.0, 94.0), 6);
            crashes(
                snap,
                ctx,
                m0,
                "Transport.exe",
                (2, 7),
                &format!("ModuleLoadException: {v} failed to initialize after patch"),
            );
            let at = ctx.t(20);
            log(snap, at, m0, "Transport.exe", "PatchRollout", LogLevel::Error,
                format!("ModuleLoadException: {v} failed after update to build {build}; machines receiving the rollout degrade immediately"));
            "Availability dropped on machines that received a new build.".into()
        }
        Family::SpamFlood => {
            let fd = ctx.machine(MachineRole::FrontDoor);
            metric_anomaly(
                snap,
                ctx,
                metrics::CONCURRENT_CONNECTIONS,
                fd,
                (12_000.0, 18_000.0),
                6,
            );
            let detail = match v {
                "InboundBotnet" => "RBL match rate spiked; inbound botnet campaign targeting the forest",
                "OutboundCompromised" => "compromised tenant accounts sending outbound burst; outbound reputation at risk",
                "NdrBackscatter" => "backscatter NDR volume surged from forged sender campaign",
                _ => "directory harvest attempt enumerating recipient addresses",
            };
            let at = ctx.t(10);
            log(
                snap,
                at,
                fd,
                "Transport.exe",
                "AntiSpam",
                LogLevel::Warning,
                detail.to_string(),
            );
            "Connection volume spiked far above normal levels.".into()
        }
        Family::DatabaseFailover => {
            let mb = ctx.machine(MachineRole::Mailbox);
            let at = ctx.t(15);
            log(
                snap,
                at,
                mb,
                "Microsoft.Transport.Store.Worker.exe",
                "Store",
                LogLevel::Error,
                format!("MapiExceptionDatabaseFailover: {v} dismounted; mounting passive copy"),
            );
            trace_failures(
                snap,
                ctx,
                "StoreService",
                "OpenMailbox",
                SpanStatus::Error,
                &format!("database {v} failed over"),
                mb,
                (6, 6),
            );
            metric_anomaly(snap, ctx, metrics::AVAILABILITY, mb, (90.0, 96.0), 5);
            "Requests against a mailbox database failed during an unplanned failover.".into()
        }
        Family::HardwareFault => {
            let mb = ctx.machine(MachineRole::Mailbox);
            let (component, msg, metric, value) = match v {
                "NicFlap" => (
                    "NicDriver",
                    "NIC link state flapped 14 times in 10 minutes; packets dropped",
                    metrics::DEPENDENCY_LATENCY,
                    8_000.0,
                ),
                "DiskLatency" => (
                    "Storport",
                    "storport reset issued; disk read latency above 2000ms",
                    metrics::DELIVERY_LATENCY,
                    6_000.0,
                ),
                "CpuThrottle" => (
                    "ThermalMonitor",
                    "CPU package thermally throttled to 1.1GHz",
                    metrics::CPU_UTIL,
                    99.0,
                ),
                _ => (
                    "MemoryDiagnostics",
                    "corrected ECC error rate exceeded threshold on DIMM bank 2",
                    metrics::MEMORY_PRESSURE,
                    97.0,
                ),
            };
            let at = ctx.t(20);
            log(
                snap,
                at,
                mb,
                "System",
                component,
                LogLevel::Error,
                msg.to_string(),
            );
            metric_anomaly(snap, ctx, metric, mb, (value, value), 6);
            "A machine shows degraded performance consistent with hardware trouble.".into()
        }
        Family::StoreWorkerCrash => {
            let mb = ctx.machine(MachineRole::Mailbox);
            let exc = match v {
                "AccessViolation" => "System.AccessViolationException: attempted to read protected memory in store worker",
                "CorruptIndex" => "CorruptIndexException: mailbox content index failed consistency check",
                "LogReplayStall" => "LogReplayStallException: transaction log replay stalled beyond watermark",
                _ => "PageChecksumMismatchException: database page checksum mismatch detected",
            };
            crashes(
                snap,
                ctx,
                mb,
                "Microsoft.Transport.Store.Worker.exe",
                (4, 12),
                exc,
            );
            let at = ctx.t(15);
            let msg = [
                exc.to_string(),
                format!("store worker recycled repeatedly; watchdog captured {exc}"),
                format!("crash loop in store worker: {exc}"),
            ][ph]
                .clone();
            log(
                snap,
                at,
                mb,
                "Microsoft.Transport.Store.Worker.exe",
                "Store",
                LogLevel::Error,
                msg,
            );
            "Store worker processes crashed repeatedly.".into()
        }
        Family::ThrottlingMisfire => {
            let mb = ctx.machine(MachineRole::Mailbox);
            metric_anomaly(
                snap,
                ctx,
                metrics::DELIVERY_LATENCY,
                mb,
                (3_000.0, 8_000.0),
                6,
            );
            let at = ctx.t(15);
            log(snap, at, mb, "EdgeTransport.exe", "Throttling", LogLevel::Warning,
                format!("ThrottlingPolicy {v} rejected requests from legitimate traffic; budget misconfigured after policy refresh"));
            "Legitimate traffic delayed by throttling.".into()
        }
        Family::MessageLoop => {
            let mb = ctx.machine(MachineRole::Mailbox);
            queue(
                snap,
                mb,
                "submission",
                ctx.rng.gen_range(3_000..6_000),
                2000,
                ctx.rng.gen_range(1_000..4_000),
            );
            let hops = ctx.rng.gen_range(40..120);
            let at = ctx.t(20);
            log(snap, at, mb, "EdgeTransport.exe", "RoutingAgent", LogLevel::Warning,
                format!("loop detected: message resubmitted {hops} times via {v}; hop count limit approaching"));
            metric_anomaly(
                snap,
                ctx,
                metrics::DELIVERY_LATENCY,
                mb,
                (4_000.0, 4_000.0),
                4,
            );
            "The same messages are cycling through the queues.".into()
        }
        Family::TlsHandshakeFailure => {
            let fd = ctx.machine(MachineRole::FrontDoor);
            let detail = match v {
                "ProtocolMismatch" => "remote host requires TLS 1.3; local policy caps at TLS 1.1",
                "CipherSuite" => {
                    "no mutually supported cipher suite after security baseline change"
                }
                _ => "certificate SNI name does not match requested host",
            };
            probe_failures(snap, ctx, probes::SMTP_TLS, fd, 3,
                &format!("System.Security.Authentication.AuthenticationException: TLS handshake failed ({detail})"));
            let at = ctx.t(15);
            log(
                snap,
                at,
                fd,
                "Transport.exe",
                "SmtpOut",
                LogLevel::Error,
                format!("AuthenticationException: TLS handshake failed: {detail}"),
            );
            "Outbound TLS sessions failing during handshake.".into()
        }
        Family::PoisonMessage => {
            let mb = ctx.machine(MachineRole::Mailbox);
            metric_anomaly(snap, ctx, metrics::POISON_COUNT, mb, (25.0, 70.0), 5);
            crashes(
                snap,
                ctx,
                mb,
                "EdgeTransport.exe",
                (3, 9),
                &format!("{v}Exception: malformed content crashed the {v}"),
            );
            let at = ctx.t(15);
            log(
                snap,
                at,
                mb,
                "EdgeTransport.exe",
                v,
                LogLevel::Error,
                format!("PoisonMessageDetected: message quarantined after crashing {v} repeatedly"),
            );
            "Poisoned messages detected above threshold.".into()
        }
        Family::QuotaExceeded => {
            let mb = ctx.machine(MachineRole::Mailbox);
            metric_anomaly(
                snap,
                ctx,
                metrics::DELIVERY_LATENCY,
                mb,
                (2_500.0, 6_000.0),
                5,
            );
            let tenant = ctx.tenant();
            let at = ctx.t(15);
            log(snap, at, mb, "EdgeTransport.exe", "QuotaManager", LogLevel::Warning,
                format!("QuotaExceededException: {v} exhausted for {tenant}; operations rejected until reset"));
            "Operations rejected once a resource quota was exhausted.".into()
        }
        Family::LatencyCulprit => {
            let mb = ctx.machine(MachineRole::Mailbox);
            metric_anomaly(
                snap,
                ctx,
                metrics::DELIVERY_LATENCY,
                mb,
                (3_000.0, 9_000.0),
                6,
            );
            let at = ctx.t(20);
            match v {
                "SearchIndexLag" => log(snap, at, mb, "Search.exe", "ContentIndex", LogLevel::Warning,
                    "search index lag exceeded 45 minutes; delivery waits on index availability".into()),
                "AntivirusStall" => {
                    stack(snap, mb, "Antimalware.exe", 30,
                        &["ScanEngine.WaitForScan(...)", "AttachmentPipeline.Process(...)"], true);
                    log(snap, at, mb, "Antimalware.exe", "ScanEngine", LogLevel::Warning,
                        "antivirus scan exceeded deadline; messages held in scanning stage".into());
                }
                "ClockSkew" => log(snap, at, mb, "Transport.exe", "KerberosAuth", LogLevel::Error,
                    "KRB_AP_ERR_SKEW: clock skew too great between client and KDC; retries inflate latency".into()),
                "GeoDnsFlap" => log(snap, at, mb, "Transport.exe", "GeoDns", LogLevel::Warning,
                    "geo-DNS answers flapping between regions; connections bouncing across datacenters".into()),
                _ => {
                    metric_anomaly(snap, ctx, metrics::CPU_UTIL, mb, (98.0, 98.0), 5);
                    log(snap, at, mb, "Transport.exe", "CapacityPlanner", LogLevel::Warning,
                        "capacity hotspot: traffic concentrated on a hot partition of machines".into());
                }
            }
            "End-to-end delivery latency rose above the SLO.".into()
        }
        Family::ResourceLeakKind => {
            let mb = ctx.machine(MachineRole::Mailbox);
            let at = ctx.t(20);
            match v {
                "KernelSocketLeak" => {
                    snap.sockets.push(SocketStat {
                        machine: mb,
                        protocol: "tcp".into(),
                        process: "svchost.exe".into(),
                        pid: ctx.pid(),
                        count: ctx.rng.gen_range(40_000..70_000),
                    });
                    log(snap, at, mb, "System", "Afd", LogLevel::Warning,
                        "kernel socket handles leaking in ancillary function driver; ephemeral range nearly exhausted".into());
                }
                "CacheEviction" => log(snap, at, mb, "Transport.exe", "SharedCache", LogLevel::Warning,
                    "shared cache hit ratio collapsed; eviction storm after working set overflow".into()),
                "AuditBacklog" => {
                    snap.disks.push(DiskUsage {
                        machine: mb,
                        volume: "E:".into(),
                        used_pct: ctx.rng.gen_range(90.0..96.0),
                        free_bytes: 3 << 30,
                    });
                    log(snap, at, mb, "AuditService.exe", "AuditWriter", LogLevel::Warning,
                        "audit log backlog growing; writer cannot keep pace with event volume".into());
                }
                "RetentionStorm" => log(snap, at, mb, "Store.Worker.exe", "Retention", LogLevel::Warning,
                    "retention policy batch processed entire forest at once; IO saturated by retention storm".into()),
                _ => log(snap, at, mb, "System", "Vss", LogLevel::Warning,
                    "VSS snapshot backup stalled holding copy-on-write space; volumes under pressure".into()),
            }
            metric_anomaly(snap, ctx, metrics::MEMORY_PRESSURE, mb, (88.0, 97.0), 5);
            "Machines came under resource pressure.".into()
        }
        Family::FloodKind => {
            let mb = ctx.machine(MachineRole::Mailbox);
            queue(
                snap,
                mb,
                "submission",
                ctx.rng.gen_range(4_000..9_000),
                2000,
                ctx.rng.gen_range(2_000..7_000),
            );
            let detail = match v {
                "OversizedAttachmentFlood" => "surge of messages with attachments exceeding size policy; pipeline spends time rejecting",
                "MalformedMimeFlood" => "flood of malformed MIME messages; each costs a full parser error path",
                "InboxRuleExplosion" => "tenant inbox rules auto-forwarding in a fan-out explosion",
                "DuplicateDeliveryStorm" => "duplicate delivery storm after dedup cache invalidation",
                "DistributionListCycle" => "nested distribution lists expanding in a cycle",
                _ => "NDR storm: bounce messages generating further bounces",
            };
            let at = ctx.t(15);
            log(
                snap,
                at,
                mb,
                "EdgeTransport.exe",
                "PipelineHealth",
                LogLevel::Warning,
                detail.to_string(),
            );
            "Queues filled with a surge of pathological messages.".into()
        }
        Family::MiscAuth => {
            let fd = ctx.machine(MachineRole::FrontDoor);
            let at = ctx.t(15);
            match v {
                "ServiceAccountLockout" => {
                    log(snap, at, fd, "Transport.exe", "AuthClient", LogLevel::Error,
                        "AccountLockedException: service account locked out after repeated failed logins; dependent calls denied".into());
                    metric_anomaly(snap, ctx, metrics::AUTH_FAILURES, fd, (800.0, 800.0), 5);
                }
                "IpBlocklistFalsePositive" => {
                    probe_failures(
                        snap,
                        ctx,
                        probes::SMTP_IN,
                        fd,
                        3,
                        "connection rejected: source IP present on internal blocklist",
                    );
                    log(snap, at, fd, "Transport.exe", "ConnectionFiltering", LogLevel::Error,
                        "legitimate partner IP range matched blocklist entry added by automation; false positive".into());
                }
                _ => {
                    log(snap, at, fd, "Transport.exe", "DkimVerifier", LogLevel::Error,
                        "DKIM signature validation failing after key rotation; selector record not propagated".into());
                    metric_anomaly(snap, ctx, metrics::AUTH_FAILURES, fd, (300.0, 300.0), 5);
                }
            }
            "Authentication-dependent operations failing.".into()
        }
        Family::MiscConn => {
            let fd = ctx.machine(MachineRole::FrontDoor);
            let at = ctx.t(15);
            match v {
                "FrontDoorOverload" => {
                    metric_anomaly(
                        snap,
                        ctx,
                        metrics::CONCURRENT_CONNECTIONS,
                        fd,
                        (15_000.0, 15_000.0),
                        6,
                    );
                    log(
                        snap,
                        at,
                        fd,
                        "Transport.exe",
                        "SmtpIn",
                        LogLevel::Warning,
                        "421 4.3.2 Service not available: front door at proxy connection capacity"
                            .into(),
                    );
                }
                "ProxyPoolImbalance" => {
                    metric_anomaly(
                        snap,
                        ctx,
                        metrics::CONCURRENT_CONNECTIONS,
                        fd,
                        (11_000.0, 11_000.0),
                        6,
                    );
                    log(snap, at, fd, "Transport.exe", "ProxyPool", LogLevel::Warning,
                        "proxy pool imbalance: two members receive most connections while others idle".into());
                }
                "CircuitBreakerStuck" => {
                    metric_anomaly(
                        snap,
                        ctx,
                        metrics::CONCURRENT_CONNECTIONS,
                        fd,
                        (50.0, 120.0),
                        6,
                    );
                    log(snap, at, fd, "Transport.exe", "CircuitBreaker", LogLevel::Error,
                        "circuit breaker stuck open for 45 minutes; probes green but breaker never half-opens".into());
                }
                _ => {
                    metric_anomaly(
                        snap,
                        ctx,
                        metrics::CONCURRENT_CONNECTIONS,
                        fd,
                        (6_000.0, 9_000.0),
                        6,
                    );
                    log(snap, at, fd, "Transport.exe", "Backpressure", LogLevel::Error,
                        "backpressure thresholds misconfigured; connections rejected while resources idle".into());
                }
            }
            "Connection handling degraded at the front door.".into()
        }
        Family::MiscCrash => {
            let mb = ctx.machine(MachineRole::Mailbox);
            let exc = match v {
                "RegistryCorruption" => "RegistryKeyCorruptException: transport configuration hive unreadable at startup",
                _ => "AddressBookCorruptionException: offline address book container failed checksum",
            };
            crashes(snap, ctx, mb, "Transport.exe", (3, 9), exc);
            let at = ctx.t(15);
            log(
                snap,
                at,
                mb,
                "Transport.exe",
                "Startup",
                LogLevel::Error,
                exc.to_string(),
            );
            "Processes crashed on startup or routine operations.".into()
        }
        Family::MiscTimeout => {
            let mb = ctx.machine(MachineRole::Mailbox);
            let at = ctx.t(15);
            match v {
                "LdapReferralStorm" => {
                    trace_failures(
                        snap,
                        ctx,
                        "LdapService",
                        "Search",
                        SpanStatus::Timeout,
                        "referral chase exceeded limit",
                        mb,
                        (6, 6),
                    );
                    log(snap, at, mb, "Transport.exe", "LdapClient", LogLevel::Error,
                        "LDAP referral chase storm: queries following referral chains across domain controllers".into());
                }
                "StaleRoutingTable" => {
                    trace_failures(
                        snap,
                        ctx,
                        "RoutingService",
                        "NextHop",
                        SpanStatus::Error,
                        "next hop not found in routing table",
                        mb,
                        (5, 5),
                    );
                    log(snap, at, mb, "EdgeTransport.exe", "Routing", LogLevel::Error,
                        "routing table stale: last successful topology refresh too old; next-hop lookups failing".into());
                }
                "TenantMigrationStall" => {
                    trace_failures(
                        snap,
                        ctx,
                        "MigrationService",
                        "MoveBatch",
                        SpanStatus::Timeout,
                        "migration batch stalled mid-move",
                        mb,
                        (4, 4),
                    );
                    log(snap, at, mb, "Migration.exe", "MoveEngine", LogLevel::Error,
                        "tenant migration batch stalled; mailboxes locked in transition hold messages".into());
                }
                _ => {
                    stack(
                        snap,
                        mb,
                        "TransportDelivery.exe",
                        45,
                        &["StoreRpcClient.Call(...)", "DeliveryWorker.DeliverOne(...)"],
                        true,
                    );
                    trace_failures(
                        snap,
                        ctx,
                        "StoreService",
                        "DeliverRpc",
                        SpanStatus::Timeout,
                        "RPC deadline exceeded",
                        mb,
                        (5, 5),
                    );
                    log(snap, at, mb, "TransportDelivery.exe", "StoreRpc", LogLevel::Error,
                        "RpcTimeoutException: delivery worker hung on store RPC; worker watchdog did not recycle".into());
                }
            }
            "Internal calls slowed down and began timing out.".into()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use rand::SeedableRng;
    use rcacopilot_telemetry::query::{Query, Scope, TimeWindow};

    fn plant_one(name: &str) -> (TelemetrySnapshot, String) {
        let cat = Catalog::standard();
        let spec = cat.by_name(name).expect("category exists");
        let topo = Topology::default();
        let mut rng = SmallRng::seed_from_u64(11);
        let mut snap = TelemetrySnapshot::new(SimTime::from_days(100));
        let mut ctx = PlantCtx {
            rng: &mut rng,
            at: SimTime::from_days(100),
            forest: ForestId(1),
            topology: &topo,
            primary: None,
        };
        let msg = plant(spec, &mut ctx, &mut snap);
        snap.logs.finish();
        (snap, msg)
    }

    fn window() -> TimeWindow {
        TimeWindow::new(SimTime::EPOCH, SimTime::from_days(400))
    }

    #[test]
    fn every_category_plants_some_evidence() {
        let cat = Catalog::standard();
        for spec in cat.categories() {
            let (snap, msg) = plant_one(&spec.name);
            assert!(!msg.is_empty(), "{} produced empty alert", spec.name);
            let evidence = snap.logs.len()
                + snap.probes.len()
                + snap.sockets.len()
                + snap.queues.len()
                + snap.stacks.len()
                + snap.certs.len()
                + snap.tenant_configs.len()
                + snap.processes.len()
                + snap.traces.len()
                + snap.disks.len()
                + snap.metrics.sample_count();
            assert!(evidence >= 2, "{} planted too little evidence", spec.name);
        }
    }

    #[test]
    fn hub_port_exhaustion_matches_figure6() {
        let (snap, _) = plant_one("HubPortExhaustion");
        let r = snap.execute(
            &Query::SocketsByProcess {
                protocol: "udp".into(),
                top: 5,
            },
            Scope::Service,
            window(),
        );
        let total: u64 = r.row("Total UDP socket count").unwrap().parse().unwrap();
        assert!(total > 10_000, "UDP sockets should be exhausted: {total}");
        assert!(r.text.contains("Transport.exe"));
        let probes_r = snap.execute(
            &Query::ProbeResults {
                probe: probes::HUB_OUTBOUND.into(),
            },
            Scope::Service,
            window(),
        );
        assert_eq!(probes_r.row("Failed Probes"), Some("2"));
        assert!(probes_r.text.contains("WinSock error: 11001"));
    }

    #[test]
    fn full_disk_spreads_signal_across_sources() {
        let (snap, _) = plant_one("FullDisk");
        // Disk usage shows a full volume.
        assert!(snap.disks.iter().any(|d| d.used_pct > 99.0));
        // Crash report shows IO exceptions.
        assert!(snap.processes.iter().any(|p| p
            .last_crash_exception
            .as_deref()
            .unwrap_or("")
            .contains("IOException")));
        // Logs mention the same exception.
        let r = snap.execute(
            &Query::Logs {
                level: LogLevel::Error,
                contains: Some("IOException".into()),
                limit: 5,
            },
            Scope::Service,
            window(),
        );
        assert_ne!(r.row("Matching records"), Some("0"));
    }

    #[test]
    fn variants_produce_distinguishable_text() {
        let (snap_a, _) = plant_one("DependencyTimeoutAuthService");
        let (snap_b, _) = plant_one("DependencyTimeoutLdapService");
        let text_a = snap_a
            .execute(&Query::TraceFailures { top: 5 }, Scope::Service, window())
            .render();
        let text_b = snap_b
            .execute(&Query::TraceFailures { top: 5 }, Scope::Service, window())
            .render();
        assert!(text_a.contains("AuthService"));
        assert!(text_b.contains("LdapService"));
        assert!(!text_a.contains("LdapService"));
    }

    #[test]
    fn invalid_journaling_plants_tenant_config_and_queue() {
        let (snap, _) = plant_one("InvalidJournaling");
        assert!(snap.tenant_configs.iter().any(|t| !t.valid));
        assert!(snap.queues.iter().any(|q| q.over_limit()));
    }

    #[test]
    fn planting_is_deterministic_for_fixed_seed() {
        let (a, msg_a) = plant_one("DeliveryHang");
        let (b, msg_b) = plant_one("DeliveryHang");
        assert_eq!(msg_a, msg_b);
        assert_eq!(a.queues, b.queues);
        assert_eq!(a.stacks, b.stacks);
    }
}
