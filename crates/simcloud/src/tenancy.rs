//! Per-tenant workload plans for the multi-tenant serving benchmarks.
//!
//! The paper's deployment serves 30+ OCE teams over one shared pipeline
//! (Table 4); [`teams`](crate::teams) simulates their collection-side
//! profiles. This module models the *serving-side* view of a team: a
//! [`TenantStormPlan`] is pure data describing one tenant's alert-stream
//! shape (arrival process, monitor flapping) and worker-fault climate
//! (per-mille panic/stall/error rates), plus its fair-share weight. The
//! serving crate turns a plan into its own stream and fault configs; this
//! crate stays dependency-free of the engine and only knows how to
//! describe and partition workloads.
//!
//! Determinism contract: a plan carries every seed it needs, so the same
//! plan over the same incident slice always yields the same tenant
//! workload — the precondition for the noisy-neighbor isolation proofs.

use crate::incident::Incident;
use rcacopilot_telemetry::ids::TenantId;

/// One tenant's workload description: stream shape, fault climate, and
/// scheduling weight. Pure data — no behavior beyond constructors — so
/// the serving plane can translate it into its own config types without
/// a dependency cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantStormPlan {
    /// The tenant this plan describes.
    pub tenant: TenantId,
    /// Fair-share weight (relative admission capacity and DRR quantum
    /// credit). Must be positive.
    pub weight: u32,
    /// Seed of the tenant's arrival process.
    pub stream_seed: u64,
    /// Mean background gap between arrivals, virtual seconds.
    pub mean_gap_secs: u64,
    /// Probability that an arrival opens an alert storm.
    pub burst_prob: f64,
    /// Events per storm (including the opener).
    pub burst_len: usize,
    /// Gap between storm events, virtual seconds.
    pub burst_gap_secs: u64,
    /// Monitor flap probability (duplicate re-raises).
    pub reraise_prob: f64,
    /// Seed of the tenant's worker-fault plan.
    pub fault_seed: u64,
    /// Per-mille worker-panic rate for this tenant's events.
    pub panic_per_mille: u16,
    /// Per-mille stall rate.
    pub stall_per_mille: u16,
    /// Per-mille transient-error rate.
    pub error_per_mille: u16,
    /// Bulkhead cap on this tenant's concurrently executing events in
    /// the shared pool (`None` = bounded only by the pool).
    pub in_flight_cap: Option<usize>,
}

impl TenantStormPlan {
    /// A well-behaved tenant: calm Poisson-ish arrivals, no storms, no
    /// injected worker faults.
    pub fn quiet(tenant: TenantId, seed: u64) -> Self {
        TenantStormPlan {
            tenant,
            weight: 1,
            stream_seed: seed,
            mean_gap_secs: 1_800,
            burst_prob: 0.0,
            burst_len: 1,
            burst_gap_secs: 1,
            reraise_prob: 0.05,
            fault_seed: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            panic_per_mille: 0,
            stall_per_mille: 0,
            error_per_mille: 0,
            in_flight_cap: None,
        }
    }

    /// The noisy neighbor: a flapping monitor storm (dense bursts, heavy
    /// re-raises) whose events also hit a ~30% worker-fault rate — the
    /// ISSUE's poison-pill climate that the bulkheads must contain.
    pub fn flapping_storm(tenant: TenantId, seed: u64) -> Self {
        TenantStormPlan {
            tenant,
            weight: 1,
            stream_seed: seed,
            mean_gap_secs: 120,
            burst_prob: 0.6,
            burst_len: 8,
            burst_gap_secs: 2,
            reraise_prob: 0.5,
            fault_seed: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            panic_per_mille: 120,
            stall_per_mille: 100,
            error_per_mille: 80,
            in_flight_cap: Some(2),
        }
    }

    /// Total injected fault probability per attempt, per mille.
    pub fn total_fault_per_mille(&self) -> u16 {
        (u32::from(self.panic_per_mille)
            + u32::from(self.stall_per_mille)
            + u32::from(self.error_per_mille))
        .min(1000) as u16
    }
}

/// Deals `incidents` round-robin across the tenant plans, re-tagging each
/// alert with its owner. Returns one incident slice per plan, aligned
/// with `plans` — the deterministic partition both the merged run and the
/// per-tenant solo baselines are built from.
pub fn partition_tenants(incidents: &[Incident], plans: &[TenantStormPlan]) -> Vec<Vec<Incident>> {
    assert!(!plans.is_empty(), "need at least one tenant plan");
    let mut parts: Vec<Vec<Incident>> = plans.iter().map(|_| Vec::new()).collect();
    for (i, incident) in incidents.iter().enumerate() {
        let slot = i % plans.len();
        let mut owned = incident.clone();
        owned.alert.tenant = plans[slot].tenant;
        parts[slot].push(owned);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_dataset, CampaignConfig};
    use crate::noise::NoiseProfile;
    use crate::topology::Topology;

    fn small_dataset() -> Vec<Incident> {
        generate_dataset(&CampaignConfig {
            seed: 5,
            topology: Topology::new(2, 3, 2, 2),
            noise: NoiseProfile {
                routine_logs: 1,
                herring_logs: 0,
                healthy_traces: 0,
                unrelated_failure: false,
                bystander_anomalies: 0,
            },
        })
        .incidents()
        .iter()
        .take(20)
        .cloned()
        .collect()
    }

    #[test]
    fn partition_deals_round_robin_and_tags_owners() {
        let incidents = small_dataset();
        let plans = [
            TenantStormPlan::quiet(TenantId(1), 10),
            TenantStormPlan::quiet(TenantId(2), 11),
            TenantStormPlan::flapping_storm(TenantId(3), 12),
        ];
        let parts = partition_tenants(&incidents, &plans);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), incidents.len());
        for (part, plan) in parts.iter().zip(&plans) {
            assert!(part.iter().all(|inc| inc.alert.tenant == plan.tenant));
        }
        // Round-robin: sizes differ by at most one and order is stable.
        let max = parts.iter().map(Vec::len).max().unwrap();
        let min = parts.iter().map(Vec::len).min().unwrap();
        assert!(max - min <= 1);
        assert_eq!(parts[0][0].alert.incident, incidents[0].alert.incident);
        assert_eq!(parts[1][0].alert.incident, incidents[1].alert.incident);
    }

    #[test]
    fn partition_is_deterministic() {
        let incidents = small_dataset();
        let plans = [
            TenantStormPlan::quiet(TenantId(1), 10),
            TenantStormPlan::flapping_storm(TenantId(2), 11),
        ];
        let key = |parts: &[Vec<Incident>]| -> Vec<Vec<_>> {
            parts
                .iter()
                .map(|p| {
                    p.iter()
                        .map(|i| (i.alert.incident, i.alert.tenant))
                        .collect()
                })
                .collect()
        };
        assert_eq!(
            key(&partition_tenants(&incidents, &plans)),
            key(&partition_tenants(&incidents, &plans))
        );
    }

    #[test]
    fn storm_plan_is_noisier_than_quiet() {
        let quiet = TenantStormPlan::quiet(TenantId(1), 1);
        let storm = TenantStormPlan::flapping_storm(TenantId(2), 1);
        assert_eq!(quiet.total_fault_per_mille(), 0);
        assert_eq!(storm.total_fault_per_mille(), 300);
        assert!(storm.burst_prob > quiet.burst_prob);
        assert!(storm.mean_gap_secs < quiet.mean_gap_secs);
        assert!(storm.in_flight_cap.is_some(), "the noisy tenant is capped");
    }

    #[test]
    #[should_panic(expected = "at least one tenant plan")]
    fn empty_plan_list_is_rejected() {
        let _ = partition_tenants(&[], &[]);
    }
}
