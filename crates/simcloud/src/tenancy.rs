//! Per-tenant workload plans for the multi-tenant serving benchmarks.
//!
//! The paper's deployment serves 30+ OCE teams over one shared pipeline
//! (Table 4); [`teams`](crate::teams) simulates their collection-side
//! profiles. This module models the *serving-side* view of a team: a
//! [`TenantStormPlan`] is pure data describing one tenant's alert-stream
//! shape (arrival process, monitor flapping) and worker-fault climate
//! (per-mille panic/stall/error rates), plus its fair-share weight. The
//! serving crate turns a plan into its own stream and fault configs; this
//! crate stays dependency-free of the engine and only knows how to
//! describe and partition workloads.
//!
//! Determinism contract: a plan carries every seed it needs, so the same
//! plan over the same incident slice always yields the same tenant
//! workload — the precondition for the noisy-neighbor isolation proofs.

use crate::incident::Incident;
use rcacopilot_telemetry::ids::TenantId;

/// One tenant's workload description: stream shape, fault climate, and
/// scheduling weight. Pure data — no behavior beyond constructors — so
/// the serving plane can translate it into its own config types without
/// a dependency cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantStormPlan {
    /// The tenant this plan describes.
    pub tenant: TenantId,
    /// Fair-share weight (relative admission capacity and DRR quantum
    /// credit). Must be positive.
    pub weight: u32,
    /// Seed of the tenant's arrival process.
    pub stream_seed: u64,
    /// Mean background gap between arrivals, virtual seconds.
    pub mean_gap_secs: u64,
    /// Probability that an arrival opens an alert storm.
    pub burst_prob: f64,
    /// Events per storm (including the opener).
    pub burst_len: usize,
    /// Gap between storm events, virtual seconds.
    pub burst_gap_secs: u64,
    /// Monitor flap probability (duplicate re-raises).
    pub reraise_prob: f64,
    /// Seed of the tenant's worker-fault plan.
    pub fault_seed: u64,
    /// Per-mille worker-panic rate for this tenant's events.
    pub panic_per_mille: u16,
    /// Per-mille stall rate.
    pub stall_per_mille: u16,
    /// Per-mille transient-error rate.
    pub error_per_mille: u16,
    /// Bulkhead cap on this tenant's concurrently executing events in
    /// the shared pool (`None` = bounded only by the pool).
    pub in_flight_cap: Option<usize>,
}

impl TenantStormPlan {
    /// A well-behaved tenant: calm Poisson-ish arrivals, no storms, no
    /// injected worker faults.
    pub fn quiet(tenant: TenantId, seed: u64) -> Self {
        TenantStormPlan {
            tenant,
            weight: 1,
            stream_seed: seed,
            mean_gap_secs: 1_800,
            burst_prob: 0.0,
            burst_len: 1,
            burst_gap_secs: 1,
            reraise_prob: 0.05,
            fault_seed: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            panic_per_mille: 0,
            stall_per_mille: 0,
            error_per_mille: 0,
            in_flight_cap: None,
        }
    }

    /// The noisy neighbor: a flapping monitor storm (dense bursts, heavy
    /// re-raises) whose events also hit a ~30% worker-fault rate — the
    /// ISSUE's poison-pill climate that the bulkheads must contain.
    pub fn flapping_storm(tenant: TenantId, seed: u64) -> Self {
        TenantStormPlan {
            tenant,
            weight: 1,
            stream_seed: seed,
            mean_gap_secs: 120,
            burst_prob: 0.6,
            burst_len: 8,
            burst_gap_secs: 2,
            reraise_prob: 0.5,
            fault_seed: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            panic_per_mille: 120,
            stall_per_mille: 100,
            error_per_mille: 80,
            in_flight_cap: Some(2),
        }
    }

    /// Total injected fault probability per attempt, per mille.
    pub fn total_fault_per_mille(&self) -> u16 {
        (u32::from(self.panic_per_mille)
            + u32::from(self.stall_per_mille)
            + u32::from(self.error_per_mille))
        .min(1000) as u16
    }
}

/// Parameters of a heavy-tailed tenant fleet — the thousand-stream
/// workload of the tenant-sharded runtime benchmarks. Tenant weights and
/// event volumes both follow a Zipf law over rank (`score(r) ∝ 1/(r+1)^s`,
/// rank 0 the heaviest), which is how per-team alert volume is
/// distributed in the paper's deployment: a few teams generate most of
/// the traffic, a long tail barely any.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantFleetConfig {
    /// Fleet size (tenant count). Must be positive.
    pub tenants: usize,
    /// Base seed; per-tenant stream/fault seeds derive from it.
    pub seed: u64,
    /// Zipf exponent `s` (1.0 = classic; larger = heavier head).
    pub zipf_exponent: f64,
    /// Total event volume distributed over the fleet.
    pub total_events: usize,
    /// Cap on any single tenant's share of `total_events` (e.g. 1/16).
    /// Keeps the head tenant from dominating a shard, which is what
    /// makes shard throughput monotone in the shard count.
    pub max_share: f64,
    /// Fraction of tenants (drawn deterministically from `seed`) that
    /// run the [`TenantStormPlan::flapping_storm`] climate.
    pub storm_fraction: f64,
    /// Weight of the rank-0 tenant; weights decay with the Zipf score
    /// down to a floor of 1.
    pub max_weight: u32,
}

impl Default for TenantFleetConfig {
    fn default() -> Self {
        TenantFleetConfig {
            tenants: 1024,
            seed: 7,
            zipf_exponent: 1.1,
            total_events: 1_000_000,
            max_share: 1.0 / 16.0,
            storm_fraction: 0.05,
            max_weight: 32,
        }
    }
}

/// SplitMix64 finalizer — the deterministic per-tenant draw.
fn mix(seed: u64, rank: u64) -> u64 {
    let mut z = seed ^ rank.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Builds the fleet's storm plans, rank order (heaviest first). Tenant
/// ids are `TenantId(rank + 1)`; weights follow the Zipf score scaled to
/// [`TenantFleetConfig::max_weight`]; a seeded
/// [`TenantFleetConfig::storm_fraction`] of tenants get the
/// flapping-storm climate, the rest stay quiet.
pub fn zipf_fleet(config: &TenantFleetConfig) -> Vec<TenantStormPlan> {
    assert!(config.tenants > 0, "need at least one tenant");
    (0..config.tenants)
        .map(|rank| {
            let tenant = TenantId(rank as u64 + 1);
            let seed = mix(config.seed, rank as u64);
            let storm_roll = mix(config.seed ^ 0x5bd1_e995, rank as u64) % 1000;
            let mut plan = if (storm_roll as f64) < config.storm_fraction * 1000.0 {
                TenantStormPlan::flapping_storm(tenant, seed)
            } else {
                TenantStormPlan::quiet(tenant, seed)
            };
            let score = 1.0 / ((rank + 1) as f64).powf(config.zipf_exponent);
            plan.weight = ((config.max_weight as f64 * score).round() as u32).max(1);
            plan
        })
        .collect()
}

/// Distributes [`TenantFleetConfig::total_events`] over the fleet by the
/// same Zipf law, clamping every tenant to
/// [`TenantFleetConfig::max_share`] of the total and renormalizing over
/// the tail. Every tenant gets at least one event; the remainder after
/// rounding lands on the head ranks, so the volumes sum to exactly
/// `total_events` (when `total_events ≥ tenants`).
pub fn zipf_volumes(config: &TenantFleetConfig) -> Vec<usize> {
    assert!(config.tenants > 0, "need at least one tenant");
    let n = config.tenants;
    let scores: Vec<f64> = (0..n)
        .map(|rank| 1.0 / ((rank + 1) as f64).powf(config.zipf_exponent))
        .collect();
    let total_score: f64 = scores.iter().sum();
    let cap = config.max_share.clamp(1.0 / n as f64, 1.0);
    // Clamp shares at the cap; surplus re-spreads over unclamped ranks
    // proportionally (one pass is enough for monotone scores).
    let raw: Vec<f64> = scores.iter().map(|s| s / total_score).collect();
    let clamped_surplus: f64 = raw.iter().filter(|&&s| s > cap).map(|s| s - cap).sum();
    let unclamped_score: f64 = raw.iter().filter(|&&s| s <= cap).sum();
    let shares: Vec<f64> = raw
        .iter()
        .map(|&s| {
            if s > cap {
                cap
            } else if unclamped_score > 0.0 {
                (s + clamped_surplus * s / unclamped_score).min(cap)
            } else {
                cap
            }
        })
        .collect();
    let mut volumes: Vec<usize> = shares
        .iter()
        .map(|share| ((config.total_events as f64 * share) as usize).max(1))
        .collect();
    // Settle rounding drift on the head ranks, never below 1.
    let mut diff = config.total_events as i64 - volumes.iter().sum::<usize>() as i64;
    let mut rank = 0usize;
    while diff != 0 && config.total_events >= n {
        if diff > 0 {
            volumes[rank] += 1;
            diff -= 1;
        } else if volumes[rank] > 1 {
            volumes[rank] -= 1;
            diff += 1;
        }
        rank = (rank + 1) % n;
    }
    volumes
}

/// Materializes per-tenant incident slices by cycling `base` to each
/// tenant's volume, re-tagging ownership. Tenant `r` starts its cycle at
/// a rank-dependent offset so neighboring tenants don't replay the base
/// set in lockstep. Aligned with `plans`; panics if `base` is empty or
/// the slices disagree in length.
pub fn replicate_partition(
    base: &[Incident],
    plans: &[TenantStormPlan],
    volumes: &[usize],
) -> Vec<Vec<Incident>> {
    assert!(!base.is_empty(), "need at least one base incident");
    assert_eq!(plans.len(), volumes.len(), "one volume per plan");
    plans
        .iter()
        .zip(volumes)
        .enumerate()
        .map(|(rank, (plan, &volume))| {
            (0..volume)
                .map(|i| {
                    let mut owned = base[(rank * 17 + i) % base.len()].clone();
                    owned.alert.tenant = plan.tenant;
                    owned
                })
                .collect()
        })
        .collect()
}

/// Deals `incidents` round-robin across the tenant plans, re-tagging each
/// alert with its owner. Returns one incident slice per plan, aligned
/// with `plans` — the deterministic partition both the merged run and the
/// per-tenant solo baselines are built from.
pub fn partition_tenants(incidents: &[Incident], plans: &[TenantStormPlan]) -> Vec<Vec<Incident>> {
    assert!(!plans.is_empty(), "need at least one tenant plan");
    let mut parts: Vec<Vec<Incident>> = plans.iter().map(|_| Vec::new()).collect();
    for (i, incident) in incidents.iter().enumerate() {
        let slot = i % plans.len();
        let mut owned = incident.clone();
        owned.alert.tenant = plans[slot].tenant;
        parts[slot].push(owned);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_dataset, CampaignConfig};
    use crate::noise::NoiseProfile;
    use crate::topology::Topology;

    fn small_dataset() -> Vec<Incident> {
        generate_dataset(&CampaignConfig {
            seed: 5,
            topology: Topology::new(2, 3, 2, 2),
            noise: NoiseProfile {
                routine_logs: 1,
                herring_logs: 0,
                healthy_traces: 0,
                unrelated_failure: false,
                bystander_anomalies: 0,
            },
        })
        .incidents()
        .iter()
        .take(20)
        .cloned()
        .collect()
    }

    #[test]
    fn partition_deals_round_robin_and_tags_owners() {
        let incidents = small_dataset();
        let plans = [
            TenantStormPlan::quiet(TenantId(1), 10),
            TenantStormPlan::quiet(TenantId(2), 11),
            TenantStormPlan::flapping_storm(TenantId(3), 12),
        ];
        let parts = partition_tenants(&incidents, &plans);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), incidents.len());
        for (part, plan) in parts.iter().zip(&plans) {
            assert!(part.iter().all(|inc| inc.alert.tenant == plan.tenant));
        }
        // Round-robin: sizes differ by at most one and order is stable.
        let max = parts.iter().map(Vec::len).max().unwrap();
        let min = parts.iter().map(Vec::len).min().unwrap();
        assert!(max - min <= 1);
        assert_eq!(parts[0][0].alert.incident, incidents[0].alert.incident);
        assert_eq!(parts[1][0].alert.incident, incidents[1].alert.incident);
    }

    #[test]
    fn partition_is_deterministic() {
        let incidents = small_dataset();
        let plans = [
            TenantStormPlan::quiet(TenantId(1), 10),
            TenantStormPlan::flapping_storm(TenantId(2), 11),
        ];
        let key = |parts: &[Vec<Incident>]| -> Vec<Vec<_>> {
            parts
                .iter()
                .map(|p| {
                    p.iter()
                        .map(|i| (i.alert.incident, i.alert.tenant))
                        .collect()
                })
                .collect()
        };
        assert_eq!(
            key(&partition_tenants(&incidents, &plans)),
            key(&partition_tenants(&incidents, &plans))
        );
    }

    #[test]
    fn storm_plan_is_noisier_than_quiet() {
        let quiet = TenantStormPlan::quiet(TenantId(1), 1);
        let storm = TenantStormPlan::flapping_storm(TenantId(2), 1);
        assert_eq!(quiet.total_fault_per_mille(), 0);
        assert_eq!(storm.total_fault_per_mille(), 300);
        assert!(storm.burst_prob > quiet.burst_prob);
        assert!(storm.mean_gap_secs < quiet.mean_gap_secs);
        assert!(storm.in_flight_cap.is_some(), "the noisy tenant is capped");
    }

    #[test]
    #[should_panic(expected = "at least one tenant plan")]
    fn empty_plan_list_is_rejected() {
        let _ = partition_tenants(&[], &[]);
    }

    #[test]
    fn zipf_fleet_is_heavy_tailed_and_deterministic() {
        let config = TenantFleetConfig {
            tenants: 256,
            total_events: 10_000,
            ..TenantFleetConfig::default()
        };
        let fleet = zipf_fleet(&config);
        assert_eq!(fleet.len(), 256);
        assert_eq!(fleet[0].tenant, TenantId(1));
        assert_eq!(fleet[0].weight, config.max_weight);
        assert!(fleet.windows(2).all(|w| w[0].weight >= w[1].weight));
        assert_eq!(fleet.last().unwrap().weight, 1, "tail hits the floor");
        let storms = fleet
            .iter()
            .filter(|p| p.total_fault_per_mille() > 0)
            .count();
        assert!(
            storms > 0 && storms < 40,
            "~5% of 256 tenants storm, got {storms}"
        );
        assert_eq!(fleet, zipf_fleet(&config), "same config, same fleet");
        // Distinct stream seeds: tenants must not replay each other.
        let mut seeds: Vec<u64> = fleet.iter().map(|p| p.stream_seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 256);
    }

    #[test]
    fn zipf_volumes_sum_exactly_and_respect_the_share_cap() {
        let config = TenantFleetConfig {
            tenants: 512,
            total_events: 100_000,
            max_share: 1.0 / 16.0,
            ..TenantFleetConfig::default()
        };
        let volumes = zipf_volumes(&config);
        assert_eq!(volumes.len(), 512);
        assert_eq!(volumes.iter().sum::<usize>(), 100_000);
        assert!(volumes.iter().all(|&v| v >= 1));
        assert!(volumes.windows(2).all(|w| w[0] >= w[1]), "rank-monotone");
        // The cap binds the head: without it rank 0 of a 1.1-exponent
        // Zipf takes ~14% of the volume.
        let head_share = volumes[0] as f64 / 100_000.0;
        assert!(
            head_share <= 1.0 / 16.0 + 0.001,
            "head share {head_share} exceeds the cap"
        );
    }

    #[test]
    fn replicate_partition_cycles_base_incidents_to_volume() {
        let base = small_dataset();
        let config = TenantFleetConfig {
            tenants: 8,
            total_events: 200,
            ..TenantFleetConfig::default()
        };
        let fleet = zipf_fleet(&config);
        let volumes = zipf_volumes(&config);
        let parts = replicate_partition(&base, &fleet, &volumes);
        assert_eq!(parts.len(), 8);
        for ((part, plan), &volume) in parts.iter().zip(&fleet).zip(&volumes) {
            assert_eq!(part.len(), volume);
            assert!(part.iter().all(|inc| inc.alert.tenant == plan.tenant));
        }
        // Neighboring tenants start their base cycle at different
        // offsets.
        assert_ne!(
            parts[0][0].alert.incident, parts[1][0].alert.incident,
            "cycles are decorrelated"
        );
    }
}
