//! Corpus scaling: stretching the one-year, 653-incident campaign to
//! million-incident retrieval corpora.
//!
//! The ANN tier (`rcacopilot_embed::ann`) only earns its complexity at
//! production scale, but the paper's dataset is one year of one service.
//! This module tiles the catalog's *measured structure* — the long-tail
//! category distribution of Figure 3 and the burst recurrence of
//! Figure 2 — across a multi-year horizon and a widened category
//! universe, producing a lightweight corpus (category + timestamp +
//! embedding, no telemetry snapshots) sized 100k–1M for index benchmarks:
//!
//! - **Long tail**: each *category universe* replays the standard
//!   catalog's per-category occurrence counts (geometric tail fit), so
//!   the head-category share shrinks as the universe count grows — no
//!   single category dominates, exactly like aggregating many services.
//! - **Recurrence**: occurrences of one category cluster into bursts
//!   with truncated-exponential gaps (mean 2 days, cap 15), placed in
//!   activity windows within one year, so the within-20-days recurrence
//!   share stays in the regime the paper reports (93.8%).
//! - **Embeddings**: each category gets a deterministic archetype vector
//!   plus small per-incident jitter — recurring incidents are near
//!   neighbors, distinct categories are separated, which is the geometry
//!   the retrieval plane sees after FastText embedding.
//!
//! Everything is a pure function of [`ScaleConfig`]; two calls with the
//! same config produce byte-identical corpora (benchmark requirement).

use crate::catalog::Catalog;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rcacopilot_telemetry::time::SimTime;

/// Days in one simulated year of scheduling.
const YEAR_DAYS: f64 = 364.0;
/// Mean within-burst recurrence gap, days (paper Figure 2 regime).
const BURST_GAP_MEAN_DAYS: f64 = 2.0;
/// Cap on within-burst gaps, days (safely under the 20-day threshold).
const BURST_GAP_CAP_DAYS: f64 = 15.0;
/// Length of one category activity window, days.
const WINDOW_LEN_DAYS: f64 = 14.0;

/// Parameters of a scaled corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleConfig {
    /// Master seed; the corpus is a pure function of this config.
    pub seed: u64,
    /// Horizon in simulated years (≥ 1). More years = longer history
    /// for temporal decay to discount.
    pub years: usize,
    /// Exact number of incidents to produce.
    pub incidents: usize,
    /// Embedding dimensionality.
    pub dim: usize,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            seed: 42,
            years: 3,
            incidents: 100_000,
            dim: 16,
        }
    }
}

/// One incident of a scaled corpus: just what the retrieval plane needs.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaledIncident {
    /// Category label, e.g. `MemoryLeakStoreWorker-u17`.
    pub category: String,
    /// Occurrence time.
    pub at: SimTime,
    /// Synthetic embedding (category archetype + jitter).
    pub embedding: Vec<f32>,
}

/// Structure report of a scaled corpus (the Figure 2/3 checks).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleStats {
    /// Total incidents.
    pub incidents: usize,
    /// Distinct categories.
    pub categories: usize,
    /// Share of incidents held by the single largest category.
    pub head_share: f64,
    /// Share of recurrence gaps (same category, consecutive
    /// occurrences) within 20 days.
    pub recurrence_within_20d: f64,
}

/// SplitMix64: cheap, high-quality seed derivation per (universe,
/// category), so corpora are stable under reordering of the generation
/// loops.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Samples a truncated exponential within-burst gap in days.
fn burst_gap(rng: &mut SmallRng) -> f64 {
    let u: f64 = rng.gen_range(1e-6..1.0);
    (-BURST_GAP_MEAN_DAYS * u.ln()).clamp(0.05, BURST_GAP_CAP_DAYS)
}

/// Schedules `count` occurrences of one category within one year
/// (fractional days in `[0, YEAR_DAYS]`): bursts with short internal
/// gaps, placed in well-separated activity windows.
fn schedule_in_year(rng: &mut SmallRng, count: u32) -> Vec<f64> {
    let count = count as usize;
    let bursts = (1 + count / 7).clamp(1, 6);
    let mut starts: Vec<f64> = (0..bursts)
        .map(|_| rng.gen_range(0.0..YEAR_DAYS - WINDOW_LEN_DAYS))
        .collect();
    starts.sort_by(|a, b| a.total_cmp(b));
    // Keep windows > 25 days apart so cross-burst recurrences register
    // as the long-gap minority (Figure 2's tail).
    for i in 1..starts.len() {
        if starts[i] - starts[i - 1] < 25.0 {
            starts[i] = (starts[i - 1] + rng.gen_range(25.0..55.0)).min(YEAR_DAYS_GUARD);
        }
    }
    let mut per_burst: Vec<usize> = vec![count / bursts; bursts];
    for slot in per_burst.iter_mut().take(count % bursts) {
        *slot += 1;
    }
    let mut times = Vec::with_capacity(count);
    for (b, &n) in per_burst.iter().enumerate() {
        let mut t = starts[b] + rng.gen_range(0.0..WINDOW_LEN_DAYS / 2.0);
        for _ in 0..n {
            times.push(t.min(YEAR_DAYS));
            t += burst_gap(rng);
        }
    }
    times
}

/// Last day a window may start (windows must fit in the year).
const YEAR_DAYS_GUARD: f64 = YEAR_DAYS - WINDOW_LEN_DAYS;

/// Deterministic archetype embedding for a category: unit-scale values
/// derived from the category seed, spread over `dim` dimensions.
fn archetype(seed: u64, dim: usize) -> Vec<f32> {
    (0..dim)
        .map(|d| {
            let h = splitmix64(seed ^ (d as u64).wrapping_mul(0x9e37_79b9));
            // Map to [-2, 2): wide enough to separate categories.
            ((h >> 11) as f64 / (1u64 << 53) as f64 * 4.0 - 2.0) as f32
        })
        .collect()
}

/// Generates a scaled corpus: exactly `config.incidents` incidents over
/// `config.years` years, sorted by `(time, category)`.
///
/// The category universe is sized so each universe × year contributes
/// the catalog's standard 653 incidents; the final stream is truncated
/// to the requested size after sorting, which trims uniformly across
/// categories (every category's occurrences span the whole horizon).
pub fn scaled_corpus(config: &ScaleConfig) -> Vec<ScaledIncident> {
    let catalog = Catalog::standard();
    let years = config.years.max(1);
    let per_universe: usize = catalog.total_incidents() as usize * years;
    let universes = config.incidents.div_ceil(per_universe.max(1)).max(1);
    let mut out: Vec<ScaledIncident> = Vec::with_capacity(universes * per_universe);
    for u in 0..universes {
        for spec in catalog.categories() {
            let cat_seed = splitmix64(
                config
                    .seed
                    .wrapping_add((u as u64).wrapping_mul(0x5851_f42d_4c95_7f2d))
                    ^ splitmix64(fxhash(&spec.name)),
            );
            let category = if universes == 1 {
                spec.name.clone()
            } else {
                format!("{}-u{u}", spec.name)
            };
            let arch = archetype(splitmix64(cat_seed ^ 0xa5a5_a5a5), config.dim);
            let mut rng = SmallRng::seed_from_u64(cat_seed);
            for year in 0..years {
                for day in schedule_in_year(&mut rng, spec.target_count) {
                    let at_days = year as f64 * YEAR_DAYS + day;
                    let jitter: Vec<f32> = arch
                        .iter()
                        .map(|&a| a + (rng.gen_range(-0.05f64..0.05)) as f32)
                        .collect();
                    out.push(ScaledIncident {
                        category: category.clone(),
                        at: SimTime::from_secs((at_days * 86_400.0) as u64),
                        embedding: jitter,
                    });
                }
            }
        }
    }
    out.sort_by(|a, b| a.at.cmp(&b.at).then_with(|| a.category.cmp(&b.category)));
    out.truncate(config.incidents);
    out
}

/// FNV-1a over the category name: stable across runs and platforms.
fn fxhash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Measures the structure of a corpus (must already be time-sorted, as
/// [`scaled_corpus`] returns it).
pub fn corpus_stats(corpus: &[ScaledIncident]) -> ScaleStats {
    use std::collections::BTreeMap;
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    let mut last_seen: BTreeMap<&str, SimTime> = BTreeMap::new();
    let (mut gaps, mut within) = (0usize, 0usize);
    for inc in corpus {
        *counts.entry(inc.category.as_str()).or_insert(0) += 1;
        if let Some(&prev) = last_seen.get(inc.category.as_str()) {
            gaps += 1;
            if inc.at.abs_diff(prev).as_days_f64() <= 20.0 {
                within += 1;
            }
        }
        last_seen.insert(inc.category.as_str(), inc.at);
    }
    let head = counts.values().copied().max().unwrap_or(0);
    ScaleStats {
        incidents: corpus.len(),
        categories: counts.len(),
        head_share: if corpus.is_empty() {
            0.0
        } else {
            head as f64 / corpus.len() as f64
        },
        recurrence_within_20d: if gaps == 0 {
            1.0
        } else {
            within as f64 / gaps as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_corpus_is_deterministic() {
        let cfg = ScaleConfig {
            incidents: 3_000,
            years: 2,
            ..ScaleConfig::default()
        };
        assert_eq!(scaled_corpus(&cfg), scaled_corpus(&cfg));
    }

    #[test]
    fn corpus_has_exact_size_and_sorted_times() {
        let cfg = ScaleConfig {
            incidents: 5_000,
            years: 2,
            ..ScaleConfig::default()
        };
        let corpus = scaled_corpus(&cfg);
        assert_eq!(corpus.len(), 5_000);
        for w in corpus.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        assert!(corpus.iter().all(|i| i.embedding.len() == cfg.dim));
    }

    #[test]
    fn long_tail_and_recurrence_structure_survive_scaling() {
        let cfg = ScaleConfig {
            incidents: 20_000,
            years: 3,
            ..ScaleConfig::default()
        };
        let stats = corpus_stats(&scaled_corpus(&cfg));
        assert_eq!(stats.incidents, 20_000);
        // Many universes: the head category cannot dominate.
        assert!(
            stats.head_share < 0.05,
            "head share {} too large",
            stats.head_share
        );
        // Plenty of distinct categories (long tail widened, not squashed).
        assert!(stats.categories > 500, "{} categories", stats.categories);
        // Burst recurrence survives: most gaps stay under 20 days even
        // across the multi-year horizon (the paper reports 93.8% within
        // one year; cross-year gaps dilute it but it must stay dominant).
        assert!(
            stats.recurrence_within_20d > 0.75,
            "recurrence-within-20d {}",
            stats.recurrence_within_20d
        );
    }

    #[test]
    fn same_category_embeddings_cluster_and_categories_separate() {
        let cfg = ScaleConfig {
            incidents: 2_000,
            years: 1,
            ..ScaleConfig::default()
        };
        let corpus = scaled_corpus(&cfg);
        // Two incidents of one category sit within jitter distance; two
        // of different categories are (almost always) far apart.
        let mut by_cat: std::collections::BTreeMap<&str, Vec<&ScaledIncident>> = Default::default();
        for inc in &corpus {
            by_cat.entry(inc.category.as_str()).or_default().push(inc);
        }
        let d2 =
            |a: &[f32], b: &[f32]| -> f32 { a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum() };
        let mut intra: f32 = 0.0;
        let mut pairs = 0u32;
        for list in by_cat.values().filter(|l| l.len() >= 2) {
            intra = intra.max(d2(&list[0].embedding, &list[1].embedding));
            pairs += 1;
        }
        assert!(pairs > 50, "expected many recurring categories");
        // Jitter is ±0.05 per dim → intra-category d² ≤ dim × 0.01.
        assert!(intra <= cfg.dim as f32 * 0.01 + 1e-6, "intra d² {intra}");
    }
}
