//! Seeded fault plans: the simulated cloud's telemetry-plane failures.
//!
//! A [`FaultPlan`] decides, deterministically, whether each telemetry
//! query attempt succeeds, times out, returns partial/stale data, or
//! finds its data source unavailable. Decisions are pure functions of
//! `(plan seed, data source, scope, window, attempt)` — no wall clock,
//! no shared mutable state — so a fixed plan replays the exact same
//! degraded campaign run after run, which is what makes the robustness
//! benchmarks and the executor's determinism proptests possible.
//!
//! Two fault mechanisms compose:
//!
//! 1. **Random per-attempt faults** at a configurable rate (a base rate
//!    plus per-source overrides). These are *transient*: each retry
//!    re-rolls, so the executor's backoff genuinely helps.
//! 2. **Outage intervals**: a data source (or every source) is marked
//!    unavailable for a sim-time interval, optionally only within one
//!    forest. These are *persistent*: retries cannot clear them, only
//!    the fallback edge can route around them.

use rcacopilot_telemetry::fault::{DataSource, FaultDecision, FaultInjector};
use rcacopilot_telemetry::ids::ForestId;
use rcacopilot_telemetry::query::{Scope, TimeWindow};
use rcacopilot_telemetry::time::SimTime;
use serde::{Deserialize, Serialize};

/// A scheduled unavailability interval for a data source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Outage {
    /// Source that is down; `None` means every source.
    pub source: Option<DataSource>,
    /// Forest the outage is confined to; `None` hits every scope.
    /// Service-wide queries (no forest) are only hit by forest-less
    /// outages.
    pub forest: Option<ForestId>,
    /// Start of the outage (inclusive).
    pub from: SimTime,
    /// End of the outage (exclusive).
    pub until: SimTime,
}

impl Outage {
    /// True when this outage covers a query for `source` at `scope`
    /// whose window ends at `at`.
    fn covers(&self, source: DataSource, scope: Scope, at: SimTime) -> bool {
        if let Some(s) = self.source {
            if s != source {
                return false;
            }
        }
        if let Some(f) = self.forest {
            if scope.forest() != Some(f) {
                return false;
            }
        }
        self.from <= at && at < self.until
    }
}

/// Relative weights of the four transient fault kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultMix {
    /// Weight of query timeouts.
    pub timeout: u32,
    /// Weight of truncated (partial-row) results.
    pub partial: u32,
    /// Weight of stale-replica windows.
    pub stale: u32,
    /// Weight of transient source unavailability.
    pub unavailable: u32,
}

impl Default for FaultMix {
    fn default() -> Self {
        // Timeouts and flaky unavailability dominate real collection
        // failures; silent truncation and stale replicas are rarer.
        FaultMix {
            timeout: 4,
            partial: 2,
            stale: 1,
            unavailable: 3,
        }
    }
}

impl FaultMix {
    fn total(&self) -> u64 {
        u64::from(self.timeout)
            + u64::from(self.partial)
            + u64::from(self.stale)
            + u64::from(self.unavailable)
    }
}

/// A deterministic, seeded fault plan for the telemetry plane.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of the decision stream.
    pub seed: u64,
    /// Probability (0..=1) that any single query attempt faults.
    pub base_rate: f64,
    /// Per-source rate overrides, replacing `base_rate` for that source.
    pub source_rates: Vec<(DataSource, f64)>,
    /// Scheduled unavailability intervals (persistent across retries).
    pub outages: Vec<Outage>,
    /// Mix of transient fault kinds.
    pub mix: FaultMix,
}

impl FaultPlan {
    /// The no-fault plan: every query answers normally. Running the
    /// pipeline under this plan is byte-identical to running it without
    /// fault injection at all.
    pub fn none() -> Self {
        FaultPlan::uniform(0, 0.0)
    }

    /// A plan faulting every source at `rate` per attempt.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seed,
            base_rate: rate.clamp(0.0, 1.0),
            source_rates: Vec::new(),
            outages: Vec::new(),
            mix: FaultMix::default(),
        }
    }

    /// Overrides the fault rate of one source; returns `self` for
    /// chaining.
    pub fn with_source_rate(mut self, source: DataSource, rate: f64) -> Self {
        self.source_rates.retain(|(s, _)| *s != source);
        self.source_rates.push((source, rate.clamp(0.0, 1.0)));
        self
    }

    /// Schedules an outage; returns `self` for chaining.
    pub fn with_outage(mut self, outage: Outage) -> Self {
        self.outages.push(outage);
        self
    }

    /// The effective per-attempt fault rate for `source`.
    pub fn rate_for(&self, source: DataSource) -> f64 {
        self.source_rates
            .iter()
            .find(|(s, _)| *s == source)
            .map(|(_, r)| *r)
            .unwrap_or(self.base_rate)
    }

    /// True when no mechanism can ever fire.
    pub fn is_inert(&self) -> bool {
        self.outages.is_empty()
            && self.base_rate == 0.0
            && self.source_rates.iter().all(|(_, r)| *r == 0.0)
    }
}

impl FaultInjector for FaultPlan {
    fn decide(
        &self,
        source: DataSource,
        scope: Scope,
        window: TimeWindow,
        attempt: u32,
    ) -> FaultDecision {
        // Outages are persistent: they hit every attempt.
        let at = window.end;
        if self.outages.iter().any(|o| o.covers(source, scope, at)) {
            return FaultDecision::Unavailable;
        }
        let rate = self.rate_for(source);
        if rate <= 0.0 {
            return FaultDecision::None;
        }
        // One 64-bit roll per (seed, source, scope, window, attempt).
        let mut h = self.seed ^ 0x9e37_79b9_7f4a_7c15;
        h = mix64(h ^ source.index() as u64);
        h = mix64(h ^ fnv1a(scope.label().as_bytes()));
        h = mix64(h ^ window.start.as_secs());
        h = mix64(h ^ window.end.as_secs());
        h = mix64(h ^ u64::from(attempt));
        let fires = ((h >> 11) as f64 / (1u64 << 53) as f64) < rate;
        if !fires {
            return FaultDecision::None;
        }
        // A second roll picks the fault kind and its parameters.
        let k = mix64(h ^ 0x5851_f42d_4c95_7f2d);
        let total = self.mix.total();
        if total == 0 {
            return FaultDecision::None;
        }
        let mut pick = k % total;
        if pick < u64::from(self.mix.timeout) {
            return FaultDecision::Timeout;
        }
        pick -= u64::from(self.mix.timeout);
        if pick < u64::from(self.mix.partial) {
            // Keep 25–75% of the result.
            let keep = 250 + (k >> 16) % 500;
            return FaultDecision::PartialRows {
                keep_per_mille: keep as u16,
            };
        }
        pick -= u64::from(self.mix.partial);
        if pick < u64::from(self.mix.stale) {
            // Replicas lag 10 minutes to 4 hours.
            let lag_secs = 600 + (k >> 16) % (4 * 3600 - 600);
            return FaultDecision::StaleWindow { lag_secs };
        }
        FaultDecision::Unavailable
    }
}

/// A deterministic, seeded fault plan for the *storage* plane under the
/// serving write-ahead log: how the disk misbehaves, as opposed to
/// [`FaultPlan`]'s telemetry-query misbehaviour.
///
/// The plan is pure data; `rcacopilot-serve`'s simulated disk
/// (`serve::storage::SimDisk`) interprets it. Every decision the disk
/// makes is a pure function of `(seed, byte offset / page index,
/// attempt)`, so a fixed plan replays the exact same injected write
/// errors, lost pages and flipped bits run after run — the property the
/// WAL crash-point torture fuzzer needs to enumerate failure points
/// instead of spot-checking them.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageFaultPlan {
    /// Seed of the decision stream.
    pub seed: u64,
    /// Persistence granule in bytes: at a crash, un-fsynced data is
    /// kept or lost per page, and bit rot strikes per page.
    pub page_size: u32,
    /// Byte budget before writes fail with `ENOSPC`; `None` is
    /// unbounded.
    pub capacity_bytes: Option<u64>,
    /// Per-mille chance each write attempt fails with a transient I/O
    /// error (retries re-roll).
    pub write_error_per_mille: u16,
    /// Per-mille chance each fsync attempt fails with a transient I/O
    /// error (retries re-roll).
    pub fsync_error_per_mille: u16,
    /// Per-mille chance an un-fsynced page is dropped (zeroed) by a
    /// crash.
    pub page_drop_per_mille: u16,
    /// Per-mille chance a page on media takes a single-bit flip by the
    /// time a crash image is read back.
    pub bit_flip_per_mille: u16,
}

impl StorageFaultPlan {
    /// Default persistence granule: small enough that a handful of WAL
    /// lines span several pages, so page-granular loss is observable at
    /// test scale.
    pub const DEFAULT_PAGE_SIZE: u32 = 256;

    /// A disk that never misbehaves beyond honest crash semantics:
    /// fsync'd bytes survive, un-fsynced bytes may be torn at any byte
    /// offset, nothing else fires.
    pub fn clean(seed: u64) -> Self {
        StorageFaultPlan {
            seed,
            page_size: Self::DEFAULT_PAGE_SIZE,
            capacity_bytes: None,
            write_error_per_mille: 0,
            fsync_error_per_mille: 0,
            page_drop_per_mille: 0,
            bit_flip_per_mille: 0,
        }
    }

    /// Flaky I/O: a few percent of write and fsync attempts fail
    /// transiently, exercising the WAL's retry-then-degrade path.
    pub fn flaky(seed: u64) -> Self {
        StorageFaultPlan {
            write_error_per_mille: 30,
            fsync_error_per_mille: 30,
            ..Self::clean(seed)
        }
    }

    /// Silent media decay: crash images come back with occasional
    /// single-bit flips, exercising CRC quarantine.
    pub fn bit_rot(seed: u64) -> Self {
        StorageFaultPlan {
            bit_flip_per_mille: 15,
            ..Self::clean(seed)
        }
    }

    /// Torn pages: a crash drops a sizeable fraction of the un-fsynced
    /// pages, exercising scan-forward resync over zeroed runs.
    pub fn torn_pages(seed: u64) -> Self {
        StorageFaultPlan {
            page_drop_per_mille: 250,
            ..Self::clean(seed)
        }
    }

    /// A disk with a hard byte budget: appends hit `ENOSPC`, exercising
    /// checkpoint-fold-and-retry and the durability-paused mode.
    pub fn tight_budget(seed: u64, capacity_bytes: u64) -> Self {
        StorageFaultPlan {
            capacity_bytes: Some(capacity_bytes),
            ..Self::clean(seed)
        }
    }

    /// True when no injected mechanism can ever fire (crash semantics
    /// themselves — losing un-fsynced bytes — are always in effect).
    pub fn is_inert(&self) -> bool {
        self.capacity_bytes.is_none()
            && self.write_error_per_mille == 0
            && self.fsync_error_per_mille == 0
            && self.page_drop_per_mille == 0
            && self.bit_flip_per_mille == 0
    }
}

/// SplitMix64 finalizer: a strong 64-bit mixer.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over bytes, for hashing scope labels.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(day: u64) -> TimeWindow {
        TimeWindow::new(SimTime::from_days(day), SimTime::from_days(day + 1))
    }

    #[test]
    fn none_plan_never_fires() {
        let plan = FaultPlan::none();
        assert!(plan.is_inert());
        for s in DataSource::ALL {
            for day in 0..20 {
                for attempt in 1..4 {
                    assert_eq!(
                        plan.decide(s, Scope::Service, window(day), attempt),
                        FaultDecision::None
                    );
                }
            }
        }
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let a = FaultPlan::uniform(42, 0.5);
        let b = FaultPlan::uniform(42, 0.5);
        let c = FaultPlan::uniform(43, 0.5);
        let mut differs = false;
        for s in DataSource::ALL {
            for day in 0..30 {
                for attempt in 1..4 {
                    let da = a.decide(s, Scope::Service, window(day), attempt);
                    assert_eq!(da, b.decide(s, Scope::Service, window(day), attempt));
                    if da != c.decide(s, Scope::Service, window(day), attempt) {
                        differs = true;
                    }
                }
            }
        }
        assert!(differs, "different seeds should produce different streams");
    }

    #[test]
    fn empirical_rate_tracks_configured_rate() {
        let plan = FaultPlan::uniform(7, 0.3);
        let mut fired = 0u32;
        let mut total = 0u32;
        for s in DataSource::ALL {
            for day in 0..200 {
                total += 1;
                if plan.decide(s, Scope::Service, window(day), 1) != FaultDecision::None {
                    fired += 1;
                }
            }
        }
        let observed = f64::from(fired) / f64::from(total);
        assert!(
            (observed - 0.3).abs() < 0.04,
            "observed fault rate {observed} far from 0.3"
        );
    }

    #[test]
    fn retries_reroll_but_outages_persist() {
        let plan = FaultPlan::uniform(3, 0.5);
        // With 50% per-attempt faults, across many windows some faulted
        // first attempts must clear on a later attempt.
        let mut cleared = false;
        for day in 0..50 {
            let w = window(day);
            if plan.decide(DataSource::Logs, Scope::Service, w, 1) != FaultDecision::None
                && plan.decide(DataSource::Logs, Scope::Service, w, 2) == FaultDecision::None
            {
                cleared = true;
                break;
            }
        }
        assert!(cleared, "transient faults should clear on retry");

        let outage = FaultPlan::none().with_outage(Outage {
            source: Some(DataSource::Probes),
            forest: None,
            from: SimTime::from_days(10),
            until: SimTime::from_days(12),
        });
        for attempt in 1..10 {
            assert_eq!(
                outage.decide(DataSource::Probes, Scope::Service, window(10), attempt),
                FaultDecision::Unavailable
            );
        }
        // Outside the interval, and for other sources, nothing fires.
        assert_eq!(
            outage.decide(DataSource::Probes, Scope::Service, window(13), 1),
            FaultDecision::None
        );
        assert_eq!(
            outage.decide(DataSource::Logs, Scope::Service, window(10), 1),
            FaultDecision::None
        );
    }

    #[test]
    fn forest_outage_spares_other_forests() {
        let outage = FaultPlan::none().with_outage(Outage {
            source: None,
            forest: Some(ForestId(2)),
            from: SimTime::EPOCH,
            until: SimTime::from_days(365),
        });
        assert_eq!(
            outage.decide(DataSource::Logs, Scope::Forest(ForestId(2)), window(5), 1),
            FaultDecision::Unavailable
        );
        assert_eq!(
            outage.decide(DataSource::Logs, Scope::Forest(ForestId(1)), window(5), 1),
            FaultDecision::None
        );
        // Service-wide queries have no forest: a forest-scoped outage
        // does not hit them.
        assert_eq!(
            outage.decide(DataSource::Logs, Scope::Service, window(5), 1),
            FaultDecision::None
        );
    }

    #[test]
    fn source_rate_overrides_base_rate() {
        let plan = FaultPlan::uniform(9, 0.0).with_source_rate(DataSource::Queues, 1.0);
        assert_eq!(plan.rate_for(DataSource::Logs), 0.0);
        assert_eq!(plan.rate_for(DataSource::Queues), 1.0);
        assert_ne!(
            plan.decide(DataSource::Queues, Scope::Service, window(1), 1),
            FaultDecision::None
        );
        assert_eq!(
            plan.decide(DataSource::Logs, Scope::Service, window(1), 1),
            FaultDecision::None
        );
    }

    #[test]
    fn storage_plan_presets_fire_exactly_their_mechanism() {
        assert!(StorageFaultPlan::clean(1).is_inert());
        assert!(!StorageFaultPlan::flaky(1).is_inert());
        assert!(!StorageFaultPlan::bit_rot(1).is_inert());
        assert!(!StorageFaultPlan::torn_pages(1).is_inert());
        let tight = StorageFaultPlan::tight_budget(1, 4096);
        assert_eq!(tight.capacity_bytes, Some(4096));
        assert!(!tight.is_inert());
        assert_eq!(tight.page_drop_per_mille, 0);
        // Plans are pure data and must survive a serde round trip, like
        // every other plan in this module.
        let json = serde_json::to_string(&StorageFaultPlan::flaky(9)).unwrap();
        let back: StorageFaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, StorageFaultPlan::flaky(9));
    }

    #[test]
    fn fault_kinds_cover_the_whole_mix() {
        let plan = FaultPlan::uniform(11, 1.0);
        let mut saw_timeout = false;
        let mut saw_partial = false;
        let mut saw_stale = false;
        let mut saw_unavailable = false;
        for s in DataSource::ALL {
            for day in 0..100 {
                match plan.decide(s, Scope::Service, window(day), 1) {
                    FaultDecision::Timeout => saw_timeout = true,
                    FaultDecision::PartialRows { keep_per_mille } => {
                        assert!((250..750).contains(&keep_per_mille));
                        saw_partial = true;
                    }
                    FaultDecision::StaleWindow { lag_secs } => {
                        assert!((600..4 * 3600).contains(&lag_secs));
                        saw_stale = true;
                    }
                    FaultDecision::Unavailable => saw_unavailable = true,
                    FaultDecision::None => panic!("rate 1.0 must always fire"),
                }
            }
        }
        assert!(saw_timeout && saw_partial && saw_stale && saw_unavailable);
    }
}
