//! The root-cause category catalog.
//!
//! The paper's dataset has 653 incidents in which "incidents with a new
//! root cause category account for 24.96% (163 among 653)" — i.e. there
//! are 163 distinct categories, heavily long-tailed (Figure 3), with the
//! ten exemplar categories of Table 1 at the head.
//!
//! Authoring 163 completely independent fault scenarios would be busywork;
//! instead the catalog expands ~37 fault *families* by variant parameters
//! (which component regressed, which dependency timed out, which tenant
//! setting is invalid, ...). Every variant is a genuine distinct category:
//! its planted telemetry differs in the strings that survive entity
//! masking (exception names, service names, queue names), so downstream
//! models must actually separate them.

use rcacopilot_telemetry::alert::{AlertType, Severity};
use serde::{Deserialize, Serialize};

/// Fault family: the signature template a category instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Family {
    // Head families (paper Table 1).
    /// Invalid certificate overrides the existing one (Table 1 #1).
    AuthCertIssue,
    /// UDP hub ports run out on a front-door machine (Table 1 #2).
    HubPortExhaustion,
    /// Mailbox delivery service hangs on a full queue (Table 1 #3).
    DeliveryHang,
    /// Bug shipped in a component (Table 1 #4); variant = component.
    CodeRegression,
    /// Spammers abuse connectors via a certificate domain (Table 1 #5).
    CertForBogusTenants,
    /// Active exploit (Table 1 #6); variant = attack vector.
    MaliciousAttack,
    /// Config service fails to update settings, poisoning routing (Table 1 #7).
    UseRouteResolution,
    /// A disk filled up; processes throw IO exceptions (Table 1 #8).
    FullDisk,
    /// Invalid customer transport config stalls submission (Table 1 #9).
    InvalidJournaling,
    /// Auth service unreachable; dispatcher tasks cancelled (Table 1 #10).
    DispatcherTaskCancelled,
    // Tail families.
    /// A dependency service times out; variant = service.
    DependencyTimeout,
    /// A process leaks memory; variant = process.
    MemoryLeak,
    /// A certificate expired; variant = endpoint.
    ExpiredCertificate,
    /// An operator/customer setting is invalid; variant = setting.
    ConfigInvalid,
    /// A secondary queue overflows; variant = queue.
    QueueOverflow,
    /// A network partition; variant = link.
    NetworkPartition,
    /// DNS record/zone misconfiguration; variant = record kind.
    DnsMisconfig,
    /// Thread pool starvation; variant = process.
    ThreadPoolStarvation,
    /// A bad patch rollout; variant = component.
    BadPatchRollout,
    /// Spam/abuse volume surge; variant = vector.
    SpamFlood,
    /// Database failover; variant = database.
    DatabaseFailover,
    /// Hardware fault on a machine; variant = fault kind.
    HardwareFault,
    /// Store worker process crash; variant = crash reason.
    StoreWorkerCrash,
    /// Throttling policy misfires; variant = budget kind.
    ThrottlingMisfire,
    /// Mail loops; variant = loop kind.
    MessageLoop,
    /// TLS handshake failures; variant = mismatch kind.
    TlsHandshakeFailure,
    /// Poisoned message crashes a parser; variant = parser.
    PoisonMessage,
    /// A quota is exhausted; variant = quota.
    QuotaExceeded,
    /// Delivery latency culprit; variant names the category directly.
    LatencyCulprit,
    /// Resource leak kinds; variant names the category directly.
    ResourceLeakKind,
    /// Message flood kinds; variant names the category directly.
    FloodKind,
    /// Miscellaneous auth incidents; variant names the category directly.
    MiscAuth,
    /// Miscellaneous connection incidents; variant names the category.
    MiscConn,
    /// Miscellaneous crash incidents; variant names the category.
    MiscCrash,
    /// Miscellaneous dependency incidents; variant names the category.
    MiscTimeout,
}

/// Static description of one family.
struct FamilySpec {
    family: Family,
    alert_type: AlertType,
    severity: Severity,
    machine_scoped: bool,
    /// Variant list; empty slice means a singleton family (one category,
    /// named after the family).
    variants: &'static [&'static str],
    /// True when category names are the bare variant string rather than
    /// `Family + Variant` (used by the grab-bag families).
    variant_is_name: bool,
    symptom: &'static str,
    cause: &'static str,
}

const FAMILIES: &[FamilySpec] = &[
    FamilySpec {
        family: Family::AuthCertIssue,
        alert_type: AlertType::AuthenticationFailure,
        severity: Severity::Sev1,
        machine_scoped: false,
        variants: &[],
        variant_is_name: false,
        symptom: "Tokens for requesting services were not able to be created. Several services reported users experiencing outages.",
        cause: "A previous invalid certificate overrode the existing one due to misconfiguration.",
    },
    FamilySpec {
        family: Family::HubPortExhaustion,
        alert_type: AlertType::OutboundConnectionFailure,
        severity: Severity::Sev2,
        machine_scoped: true,
        variants: &[],
        variant_is_name: false,
        symptom: "A single server failed to do DNS resolution for the incoming packages.",
        cause: "The UDP hub ports on the machine had been run out.",
    },
    FamilySpec {
        family: Family::DeliveryHang,
        alert_type: AlertType::DeliveryQueueBacklog,
        severity: Severity::Sev2,
        machine_scoped: false,
        variants: &[],
        variant_is_name: false,
        symptom: "Mailbox delivery service hang for a long time.",
        cause: "Number of messages queued for mailbox delivery exceeded the limit.",
    },
    FamilySpec {
        family: Family::CodeRegression,
        alert_type: AlertType::AvailabilityDrop,
        severity: Severity::Sev2,
        machine_scoped: false,
        variants: &[
            "SmtpAuth",
            "Categorizer",
            "DeliveryAgent",
            "MimeParser",
            "RoutingAgent",
            "DkimSigner",
            "ContentFilter",
            "AddressBook",
            "Dumpster",
            "StoreDriver",
            "Autodiscover",
            "EdgeSync",
            "PolicyEngine",
            "BounceGenerator",
        ],
        variant_is_name: false,
        symptom: "The {v} component's availability dropped.",
        cause: "Bug in the {v} component code introduced by a recent change.",
    },
    FamilySpec {
        family: Family::CertForBogusTenants,
        alert_type: AlertType::ConnectionLimitExceeded,
        severity: Severity::Sev2,
        machine_scoped: false,
        variants: &[],
        variant_is_name: false,
        symptom: "The number of concurrent server connections exceeded a limit.",
        cause: "Spammers abused the system by creating a lot of bogus tenants with connectors using a certificate domain.",
    },
    FamilySpec {
        family: Family::MaliciousAttack,
        alert_type: AlertType::ProcessCrashSpike,
        severity: Severity::Sev1,
        machine_scoped: false,
        variants: &["PowerShellBlob", "OAuthTokenReplay", "SmtpVerbAbuse", "ZipBombAttachment"],
        variant_is_name: false,
        symptom: "Forest-wide processes crashed over threshold.",
        cause: "Active exploit was launched via {v}.",
    },
    FamilySpec {
        family: Family::UseRouteResolution,
        alert_type: AlertType::PoisonedMessage,
        severity: Severity::Sev2,
        machine_scoped: false,
        variants: &[],
        variant_is_name: false,
        symptom: "Poisoned messages sent to the forest made the system unhealthy.",
        cause: "A configuration service was unable to update the settings leading to the crash.",
    },
    FamilySpec {
        family: Family::FullDisk,
        alert_type: AlertType::ProcessCrashSpike,
        severity: Severity::Sev2,
        machine_scoped: false,
        variants: &[],
        variant_is_name: false,
        symptom: "Many processes crashed and threw IO exceptions.",
        cause: "A specific disk was full.",
    },
    FamilySpec {
        family: Family::InvalidJournaling,
        alert_type: AlertType::DeliveryQueueBacklog,
        severity: Severity::Sev2,
        machine_scoped: false,
        variants: &[],
        variant_is_name: false,
        symptom: "Messages stuck in submission queue for a long time.",
        cause: "The customer set an invalid value for the Transport config and caused TenantSettingsNotFoundException.",
    },
    FamilySpec {
        family: Family::DispatcherTaskCancelled,
        alert_type: AlertType::DeliveryQueueBacklog,
        severity: Severity::Sev3,
        machine_scoped: false,
        variants: &[],
        variant_is_name: false,
        symptom: "Normal priority messages across a forest had been queued in submission queues for a long time.",
        cause: "Network problem caused the authentication service to be unreachable.",
    },
    FamilySpec {
        family: Family::DependencyTimeout,
        alert_type: AlertType::DependencyTimeout,
        severity: Severity::Sev3,
        machine_scoped: false,
        variants: &[
            "AuthService",
            "DirectoryService",
            "SettingsService",
            "DnsService",
            "LdapService",
            "AddressBookService",
            "QuarantineService",
            "ThrottlingService",
            "TelemetryService",
            "LicensingService",
            "ReputationService",
            "GeoIpService",
        ],
        variant_is_name: false,
        symptom: "Calls to {v} timed out across the forest.",
        cause: "{v} became unresponsive and requests exceeded their deadlines.",
    },
    FamilySpec {
        family: Family::MemoryLeak,
        alert_type: AlertType::ResourcePressure,
        severity: Severity::Sev3,
        machine_scoped: false,
        variants: &[
            "Transport",
            "W3wp",
            "StoreWorker",
            "ContentFilter",
            "EdgeTransport",
            "Monitoring",
            "Search",
            "Antimalware",
            "Journaling",
            "PopImap",
        ],
        variant_is_name: false,
        symptom: "Memory usage of the {v} process grew steadily until restarts.",
        cause: "A memory leak in the {v} process exhausted available memory.",
    },
    FamilySpec {
        family: Family::ExpiredCertificate,
        alert_type: AlertType::AuthenticationFailure,
        severity: Severity::Sev2,
        machine_scoped: false,
        variants: &[
            "SmtpInbound",
            "SmtpOutbound",
            "Federation",
            "OAuth",
            "InternalApi",
            "EdgeSync",
            "Webhooks",
            "Smime",
        ],
        variant_is_name: false,
        symptom: "Connections authenticating against the {v} endpoint started failing.",
        cause: "The {v} certificate expired and was not rotated in time.",
    },
    FamilySpec {
        family: Family::ConfigInvalid,
        alert_type: AlertType::DeliveryQueueBacklog,
        severity: Severity::Sev3,
        machine_scoped: false,
        variants: &[
            "MaxRecipientLimit",
            "AcceptedDomains",
            "RemoteDomains",
            "ConnectorAddressSpace",
            "RetryInterval",
            "MessageSizeLimit",
            "SafeSenderList",
            "DlpPolicy",
            "RoutingGroup",
            "SendConnectorFqdn",
            "ReceiveConnectorBindings",
            "ThrottlingPolicy",
            "MalwareFilterPolicy",
            "OutboundSpamPolicy",
            "HybridRouting",
            "ArchivePolicy",
            "InboundConnectorTls",
            "JournalRules",
            "MxFailover",
            "AddressRewrite",
        ],
        variant_is_name: false,
        symptom: "Messages for affected tenants backed up in the submission queue.",
        cause: "An invalid {v} setting made message processing fail for the tenant.",
    },
    FamilySpec {
        family: Family::QueueOverflow,
        alert_type: AlertType::DeliveryQueueBacklog,
        severity: Severity::Sev3,
        machine_scoped: false,
        variants: &[
            "Journaling",
            "Quarantine",
            "ShadowRedundancy",
            "Pickup",
            "Replay",
            "Poison",
            "Unreachable",
        ],
        variant_is_name: false,
        symptom: "The {v} queue exceeded its configured limit.",
        cause: "Drain rate of the {v} queue fell below its arrival rate.",
    },
    FamilySpec {
        family: Family::NetworkPartition,
        alert_type: AlertType::DependencyTimeout,
        severity: Severity::Sev2,
        machine_scoped: false,
        variants: &["InterForestLink", "DatacenterUplink", "LoadBalancerPool", "ManagementVlan"],
        variant_is_name: false,
        symptom: "Cross-service calls over the {v} failed with connection resets.",
        cause: "A network partition isolated the {v}.",
    },
    FamilySpec {
        family: Family::DnsMisconfig,
        alert_type: AlertType::OutboundConnectionFailure,
        severity: Severity::Sev2,
        machine_scoped: false,
        variants: &["MxRecord", "SpfRecord", "InternalZone", "ReverseDns"],
        variant_is_name: false,
        symptom: "Outbound SMTP connections failed to resolve destination hosts.",
        cause: "The {v} DNS configuration was wrong after a zone update.",
    },
    FamilySpec {
        family: Family::ThreadPoolStarvation,
        alert_type: AlertType::ResourcePressure,
        severity: Severity::Sev2,
        machine_scoped: false,
        variants: &["TransportDelivery", "SmtpIn", "Categorizer", "StoreRpc"],
        variant_is_name: false,
        symptom: "The {v} thread pool ran out of worker threads.",
        cause: "Blocking calls starved the {v} thread pool.",
    },
    FamilySpec {
        family: Family::BadPatchRollout,
        alert_type: AlertType::AvailabilityDrop,
        severity: Severity::Sev2,
        machine_scoped: false,
        variants: &["TransportCore", "StoreDriver", "FilteringStack", "OsSecurityPatch", "NicFirmware"],
        variant_is_name: false,
        symptom: "Availability dropped on machines that received the new {v} build.",
        cause: "The {v} patch rollout shipped a defective build.",
    },
    FamilySpec {
        family: Family::SpamFlood,
        alert_type: AlertType::ConnectionLimitExceeded,
        severity: Severity::Sev2,
        machine_scoped: false,
        variants: &["InboundBotnet", "OutboundCompromised", "NdrBackscatter", "DirectoryHarvest"],
        variant_is_name: false,
        symptom: "Connection volume spiked far above normal levels.",
        cause: "A {v} abuse campaign flooded the service.",
    },
    FamilySpec {
        family: Family::DatabaseFailover,
        alert_type: AlertType::AvailabilityDrop,
        severity: Severity::Sev2,
        machine_scoped: false,
        variants: &["MailboxDb01", "MailboxDb17", "RoutingDb", "ReputationDb"],
        variant_is_name: false,
        symptom: "Requests against {v} failed during an unplanned failover.",
        cause: "{v} failed over to a passive copy after the active copy faulted.",
    },
    FamilySpec {
        family: Family::HardwareFault,
        alert_type: AlertType::ResourcePressure,
        severity: Severity::Sev3,
        machine_scoped: true,
        variants: &["NicFlap", "DiskLatency", "CpuThrottle", "MemoryEcc"],
        variant_is_name: false,
        symptom: "A machine showed degraded performance consistent with hardware trouble.",
        cause: "A {v} hardware fault degraded the machine.",
    },
    FamilySpec {
        family: Family::StoreWorkerCrash,
        alert_type: AlertType::ProcessCrashSpike,
        severity: Severity::Sev2,
        machine_scoped: false,
        variants: &["AccessViolation", "CorruptIndex", "LogReplayStall", "PageChecksum"],
        variant_is_name: false,
        symptom: "Store worker processes crashed repeatedly.",
        cause: "Store workers hit a {v} fault.",
    },
    FamilySpec {
        family: Family::ThrottlingMisfire,
        alert_type: AlertType::DeliveryLatencyHigh,
        severity: Severity::Sev3,
        machine_scoped: false,
        variants: &["TenantBudget", "IpBudget", "ConnectionBudget", "RecipientRate"],
        variant_is_name: false,
        symptom: "Legitimate traffic was delayed by throttling.",
        cause: "The {v} throttling policy misfired on legitimate traffic.",
    },
    FamilySpec {
        family: Family::MessageLoop,
        alert_type: AlertType::DeliveryQueueBacklog,
        severity: Severity::Sev3,
        machine_scoped: false,
        variants: &["TransportRule", "JournalNdr", "ForwardingPair"],
        variant_is_name: false,
        symptom: "The same messages were observed cycling through the queues.",
        cause: "A {v} loop kept re-submitting the same messages.",
    },
    FamilySpec {
        family: Family::TlsHandshakeFailure,
        alert_type: AlertType::OutboundConnectionFailure,
        severity: Severity::Sev2,
        machine_scoped: false,
        variants: &["ProtocolMismatch", "CipherSuite", "SniMismatch"],
        variant_is_name: false,
        symptom: "Outbound TLS sessions failed during the handshake.",
        cause: "A {v} prevented TLS session establishment.",
    },
    FamilySpec {
        family: Family::PoisonMessage,
        alert_type: AlertType::PoisonedMessage,
        severity: Severity::Sev2,
        machine_scoped: false,
        variants: &["MimeParser", "TnefParser", "ICalParser", "AttachmentScanner"],
        variant_is_name: false,
        symptom: "Specific messages repeatedly crashed the pipeline and were marked poisoned.",
        cause: "A malformed message crashed the {v}.",
    },
    FamilySpec {
        family: Family::QuotaExceeded,
        alert_type: AlertType::DeliveryLatencyHigh,
        severity: Severity::Sev3,
        machine_scoped: false,
        variants: &["MailboxQuota", "TenantSendQuota", "HandleQuota", "ConnectionQuota"],
        variant_is_name: false,
        symptom: "Operations were rejected once the {v} was exhausted.",
        cause: "The {v} was exceeded.",
    },
    FamilySpec {
        family: Family::LatencyCulprit,
        alert_type: AlertType::DeliveryLatencyHigh,
        severity: Severity::Sev3,
        machine_scoped: false,
        variants: &["SearchIndexLag", "AntivirusStall", "ClockSkew", "GeoDnsFlap", "CapacityHotspot"],
        variant_is_name: true,
        symptom: "End-to-end delivery latency rose above the SLO.",
        cause: "Latency was traced to {v}.",
    },
    FamilySpec {
        family: Family::ResourceLeakKind,
        alert_type: AlertType::ResourcePressure,
        severity: Severity::Sev3,
        machine_scoped: false,
        variants: &["KernelSocketLeak", "CacheEviction", "AuditBacklog", "RetentionStorm", "SnapshotBackupStall"],
        variant_is_name: true,
        symptom: "Machines came under resource pressure.",
        cause: "{v} consumed the resource budget.",
    },
    FamilySpec {
        family: Family::FloodKind,
        alert_type: AlertType::DeliveryQueueBacklog,
        severity: Severity::Sev3,
        machine_scoped: false,
        variants: &[
            "OversizedAttachmentFlood",
            "MalformedMimeFlood",
            "InboxRuleExplosion",
            "DuplicateDeliveryStorm",
            "DistributionListCycle",
            "NdrStorm",
        ],
        variant_is_name: true,
        symptom: "Queues filled with a surge of pathological messages.",
        cause: "{v} flooded the pipeline.",
    },
    FamilySpec {
        family: Family::MiscAuth,
        alert_type: AlertType::AuthenticationFailure,
        severity: Severity::Sev2,
        machine_scoped: false,
        variants: &["ServiceAccountLockout", "IpBlocklistFalsePositive", "DkimRotationFailure"],
        variant_is_name: true,
        symptom: "Authentication-dependent operations started failing.",
        cause: "{v} broke the authentication path.",
    },
    FamilySpec {
        family: Family::MiscConn,
        alert_type: AlertType::ConnectionLimitExceeded,
        severity: Severity::Sev3,
        machine_scoped: false,
        variants: &["FrontDoorOverload", "ProxyPoolImbalance", "CircuitBreakerStuck", "BackpressureMisconfig"],
        variant_is_name: true,
        symptom: "Connection handling degraded at the front door.",
        cause: "{v} disturbed connection distribution.",
    },
    FamilySpec {
        family: Family::MiscCrash,
        alert_type: AlertType::ProcessCrashSpike,
        severity: Severity::Sev2,
        machine_scoped: false,
        variants: &["RegistryCorruption", "AddressBookCorruption"],
        variant_is_name: true,
        symptom: "Processes crashed on startup or during routine operations.",
        cause: "{v} made persistent state unreadable.",
    },
    FamilySpec {
        family: Family::MiscTimeout,
        alert_type: AlertType::DependencyTimeout,
        severity: Severity::Sev3,
        machine_scoped: false,
        variants: &["LdapReferralStorm", "StaleRoutingTable", "TenantMigrationStall", "HungDeliveryWorker"],
        variant_is_name: true,
        symptom: "Internal calls slowed down and began timing out.",
        cause: "{v} stalled the dependent calls.",
    },
];

/// Paper Table 1 occurrence counts for the head categories, in catalog
/// order (`AuthCertIssue` .. `DispatcherTaskCancelled`).
const HEAD_COUNTS: [(Family, &str, u32); 10] = [
    (Family::AuthCertIssue, "", 3),
    (Family::HubPortExhaustion, "", 27),
    (Family::DeliveryHang, "", 6),
    (Family::CodeRegression, "SmtpAuth", 15),
    (Family::CertForBogusTenants, "", 11),
    (Family::MaliciousAttack, "PowerShellBlob", 2),
    (Family::UseRouteResolution, "", 9),
    (Family::FullDisk, "", 2),
    (Family::InvalidJournaling, "", 11),
    (Family::DispatcherTaskCancelled, "", 22),
];

/// Total incidents in the simulated year (paper §5.1).
pub const TOTAL_INCIDENTS: u32 = 653;
/// Distinct root-cause categories (paper Figure 3: 163 of 653 are "new").
pub const TOTAL_CATEGORIES: usize = 163;

/// One root-cause category: a family instantiated with a variant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CategorySpec {
    /// Category label, e.g. `HubPortExhaustion` or `CodeRegressionCategorizer`.
    pub name: String,
    /// Signature template.
    pub family: Family,
    /// Variant parameter (empty for singleton families).
    pub variant: String,
    /// Alert type raised when this category strikes.
    pub alert_type: AlertType,
    /// Severity assigned at triage.
    pub severity: Severity,
    /// True when the alert scope is a single machine.
    pub machine_scoped: bool,
    /// Number of occurrences in the simulated year.
    pub target_count: u32,
    /// Human-readable symptom (Table 1 column).
    pub symptom: String,
    /// Human-readable cause (Table 1 column).
    pub cause: String,
}

/// The full category catalog.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Catalog {
    categories: Vec<CategorySpec>,
}

fn interpolate(template: &str, variant: &str) -> String {
    template.replace("{v}", variant)
}

fn category_name(spec: &FamilySpec, variant: &str) -> String {
    if variant.is_empty() {
        format!("{:?}", spec.family)
    } else if spec.variant_is_name {
        variant.to_string()
    } else {
        format!("{:?}{variant}", spec.family)
    }
}

/// Deterministically fits `n` positive counts summing to `total`,
/// geometrically decaying so the distribution is long-tailed.
fn fit_tail_counts(n: usize, total: u32) -> Vec<u32> {
    assert!(
        n > 0 && total as usize >= n,
        "need at least one incident per category"
    );
    let ratio: f64 = 0.966;
    let scale: f64 = 14.0;
    let mut counts: Vec<u32> = (0..n)
        .map(|i| (scale * ratio.powi(i as i32)).round().max(1.0) as u32)
        .collect();
    let mut sum: i64 = counts.iter().map(|&c| c as i64).sum();
    // Round-robin adjustment toward the target total.
    let mut i = 0;
    while sum != total as i64 {
        if sum < total as i64 {
            counts[i % n] += 1;
            sum += 1;
        } else if counts[i % n] > 1 {
            counts[i % n] -= 1;
            sum -= 1;
        }
        i += 1;
    }
    counts
}

impl Catalog {
    /// Builds the standard catalog: Table 1 heads with their paper counts
    /// plus a long tail summing to [`TOTAL_INCIDENTS`] across
    /// [`TOTAL_CATEGORIES`] categories.
    pub fn standard() -> Self {
        let mut categories: Vec<CategorySpec> = Vec::new();

        // Heads first, with their Table 1 occurrence counts.
        for (family, variant, count) in HEAD_COUNTS {
            let spec = FAMILIES
                .iter()
                .find(|f| f.family == family)
                .expect("head family present in FAMILIES");
            categories.push(CategorySpec {
                name: category_name(spec, variant),
                family,
                variant: variant.to_string(),
                alert_type: spec.alert_type,
                severity: spec.severity,
                machine_scoped: spec.machine_scoped,
                target_count: count,
                symptom: interpolate(spec.symptom, variant),
                cause: interpolate(spec.cause, variant),
            });
        }
        let head_total: u32 = categories.iter().map(|c| c.target_count).sum();

        // Tail categories: every family variant not already used as a head.
        let mut tail: Vec<(usize, &'static str)> = Vec::new(); // (family idx, variant)
        for (fi, spec) in FAMILIES.iter().enumerate() {
            if spec.variants.is_empty() {
                let is_head = HEAD_COUNTS.iter().any(|(f, _, _)| *f == spec.family);
                if !is_head {
                    tail.push((fi, ""));
                }
            } else {
                for v in spec.variants {
                    let is_head = HEAD_COUNTS
                        .iter()
                        .any(|(f, hv, _)| *f == spec.family && hv == v);
                    if !is_head {
                        tail.push((fi, v));
                    }
                }
            }
        }
        assert!(
            tail.len() >= TOTAL_CATEGORIES - HEAD_COUNTS.len(),
            "family variant lists must yield at least {} tail categories, got {}",
            TOTAL_CATEGORIES - HEAD_COUNTS.len(),
            tail.len()
        );
        // Interleave families so large tail counts spread across families:
        // stable sort by (variant index within family) keeps round-robin order.
        let n_tail = TOTAL_CATEGORIES - HEAD_COUNTS.len();
        let mut interleaved: Vec<(usize, &'static str)> = Vec::with_capacity(tail.len());
        let mut round = 0usize;
        loop {
            let mut any = false;
            for (fi, spec) in FAMILIES.iter().enumerate() {
                let variants_of_family: Vec<&(usize, &'static str)> =
                    tail.iter().filter(|(i, _)| *i == fi).collect();
                if let Some(&&(idx, v)) = variants_of_family.get(round) {
                    let _ = spec;
                    interleaved.push((idx, v));
                    any = true;
                }
            }
            if !any {
                break;
            }
            round += 1;
        }
        interleaved.truncate(n_tail);

        let tail_counts = fit_tail_counts(n_tail, TOTAL_INCIDENTS - head_total);
        for ((fi, variant), count) in interleaved.into_iter().zip(tail_counts) {
            let spec = &FAMILIES[fi];
            categories.push(CategorySpec {
                name: category_name(spec, variant),
                family: spec.family,
                variant: variant.to_string(),
                alert_type: spec.alert_type,
                severity: spec.severity,
                machine_scoped: spec.machine_scoped,
                target_count: count,
                symptom: interpolate(spec.symptom, variant),
                cause: interpolate(spec.cause, variant),
            });
        }

        Catalog { categories }
    }

    /// All categories, heads first.
    pub fn categories(&self) -> &[CategorySpec] {
        &self.categories
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.categories.len()
    }

    /// True if the catalog is empty (never for [`Catalog::standard`]).
    pub fn is_empty(&self) -> bool {
        self.categories.is_empty()
    }

    /// Total incidents across all categories.
    pub fn total_incidents(&self) -> u32 {
        self.categories.iter().map(|c| c.target_count).sum()
    }

    /// Looks a category up by name.
    pub fn by_name(&self, name: &str) -> Option<&CategorySpec> {
        self.categories.iter().find(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn standard_catalog_matches_paper_statistics() {
        let cat = Catalog::standard();
        assert_eq!(cat.len(), TOTAL_CATEGORIES);
        assert_eq!(cat.total_incidents(), TOTAL_INCIDENTS);
        // New-category share: 163/653 = 24.96%.
        let share = cat.len() as f64 / cat.total_incidents() as f64;
        assert!((share - 0.2496).abs() < 0.001, "share = {share}");
    }

    #[test]
    fn category_names_are_unique() {
        let cat = Catalog::standard();
        let names: BTreeSet<&str> = cat.categories().iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names.len(), cat.len());
    }

    #[test]
    fn head_categories_have_table1_counts() {
        let cat = Catalog::standard();
        assert_eq!(cat.by_name("HubPortExhaustion").unwrap().target_count, 27);
        assert_eq!(
            cat.by_name("DispatcherTaskCancelled").unwrap().target_count,
            22
        );
        assert_eq!(
            cat.by_name("CodeRegressionSmtpAuth").unwrap().target_count,
            15
        );
        assert_eq!(cat.by_name("AuthCertIssue").unwrap().target_count, 3);
        assert_eq!(cat.by_name("FullDisk").unwrap().target_count, 2);
    }

    #[test]
    fn every_category_has_positive_count_and_text() {
        let cat = Catalog::standard();
        for c in cat.categories() {
            assert!(c.target_count >= 1, "{} has zero count", c.name);
            assert!(!c.symptom.is_empty());
            assert!(!c.cause.is_empty());
            assert!(
                !c.symptom.contains("{v}"),
                "{}: uninterpolated symptom",
                c.name
            );
            assert!(!c.cause.contains("{v}"), "{}: uninterpolated cause", c.name);
        }
    }

    #[test]
    fn distribution_is_long_tailed() {
        let cat = Catalog::standard();
        let singles = cat
            .categories()
            .iter()
            .filter(|c| c.target_count == 1)
            .count();
        // A substantial share of categories occur exactly once.
        assert!(singles > 40, "only {singles} singleton categories");
        let max = cat
            .categories()
            .iter()
            .map(|c| c.target_count)
            .max()
            .unwrap();
        assert_eq!(max, 27, "head category dominates");
    }

    #[test]
    fn severity_and_scope_follow_table1() {
        let cat = Catalog::standard();
        let hub = cat.by_name("HubPortExhaustion").unwrap();
        assert!(hub.machine_scoped);
        assert_eq!(hub.severity, Severity::Sev2);
        let auth = cat.by_name("AuthCertIssue").unwrap();
        assert_eq!(auth.severity, Severity::Sev1);
        assert!(!auth.machine_scoped);
    }

    #[test]
    fn fit_tail_counts_hits_total_exactly() {
        for (n, total) in [(153usize, 545u32), (10, 50), (5, 5), (3, 100)] {
            let counts = fit_tail_counts(n, total);
            assert_eq!(counts.len(), n);
            assert_eq!(counts.iter().sum::<u32>(), total);
            assert!(counts.iter().all(|&c| c >= 1));
        }
    }

    #[test]
    fn alert_types_cover_multiple_categories() {
        // Incidents sharing an alert type may stem from different root
        // causes (paper §4.1): every alert type must host >= 2 categories.
        let cat = Catalog::standard();
        for at in AlertType::ALL {
            let n = cat
                .categories()
                .iter()
                .filter(|c| c.alert_type == at)
                .count();
            assert!(n >= 2, "{at} hosts only {n} categories");
        }
    }
}
