//! Topology of the simulated transport service.

use rand::rngs::SmallRng;
use rand::Rng;
use rcacopilot_telemetry::ids::{ForestId, MachineId, MachineRole};

/// Static topology: forests and the machines in each.
#[derive(Debug, Clone)]
pub struct Topology {
    forests: u32,
    mailbox_per_forest: u32,
    frontdoor_per_forest: u32,
    hub_per_forest: u32,
}

impl Default for Topology {
    fn default() -> Self {
        // A small but structurally faithful deployment: several forests,
        // each with mailbox servers, front doors, and hubs.
        Topology {
            forests: 8,
            mailbox_per_forest: 20,
            frontdoor_per_forest: 6,
            hub_per_forest: 6,
        }
    }
}

impl Topology {
    /// Creates a topology with explicit sizes.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(forests: u32, mailbox: u32, frontdoor: u32, hub: u32) -> Self {
        assert!(
            forests > 0 && mailbox > 0 && frontdoor > 0 && hub > 0,
            "topology dimensions must be positive"
        );
        Topology {
            forests,
            mailbox_per_forest: mailbox,
            frontdoor_per_forest: frontdoor,
            hub_per_forest: hub,
        }
    }

    /// Number of forests.
    pub fn forest_count(&self) -> u32 {
        self.forests
    }

    /// All forest ids.
    pub fn forests(&self) -> impl Iterator<Item = ForestId> {
        (0..self.forests).map(ForestId)
    }

    /// Number of machines of `role` per forest.
    pub fn machines_per_forest(&self, role: MachineRole) -> u32 {
        match role {
            MachineRole::Mailbox => self.mailbox_per_forest,
            MachineRole::FrontDoor => self.frontdoor_per_forest,
            MachineRole::Hub => self.hub_per_forest,
        }
    }

    /// Total machine count across the service.
    pub fn machine_count(&self) -> u32 {
        self.forests * (self.mailbox_per_forest + self.frontdoor_per_forest + self.hub_per_forest)
    }

    /// All machines in `forest`.
    pub fn machines_in(&self, forest: ForestId) -> Vec<MachineId> {
        let mut out = Vec::new();
        for role in [
            MachineRole::Mailbox,
            MachineRole::FrontDoor,
            MachineRole::Hub,
        ] {
            for i in 0..self.machines_per_forest(role) {
                out.push(MachineId::new(forest, role, i));
            }
        }
        out
    }

    /// A uniformly random forest.
    pub fn random_forest(&self, rng: &mut SmallRng) -> ForestId {
        ForestId(rng.gen_range(0..self.forests))
    }

    /// A uniformly random machine of `role` in `forest`.
    pub fn random_machine(
        &self,
        rng: &mut SmallRng,
        forest: ForestId,
        role: MachineRole,
    ) -> MachineId {
        let n = self.machines_per_forest(role);
        MachineId::new(forest, role, rng.gen_range(0..n))
    }

    /// `count` distinct random machines of `role` in `forest` (or all of
    /// them if fewer exist).
    pub fn random_machines(
        &self,
        rng: &mut SmallRng,
        forest: ForestId,
        role: MachineRole,
        count: usize,
    ) -> Vec<MachineId> {
        let n = self.machines_per_forest(role) as usize;
        let take = count.min(n);
        let mut indices: Vec<u32> = (0..n as u32).collect();
        // Partial Fisher-Yates shuffle.
        for i in 0..take {
            let j = rng.gen_range(i..n);
            indices.swap(i, j);
        }
        indices
            .into_iter()
            .take(take)
            .map(|i| MachineId::new(forest, role, i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn default_topology_has_expected_size() {
        let t = Topology::default();
        assert_eq!(t.forest_count(), 8);
        assert_eq!(t.machine_count(), 8 * 32);
        assert_eq!(t.machines_in(ForestId(0)).len(), 32);
    }

    #[test]
    fn random_machines_are_distinct_and_in_role() {
        let t = Topology::default();
        let mut rng = SmallRng::seed_from_u64(7);
        let ms = t.random_machines(&mut rng, ForestId(2), MachineRole::Hub, 4);
        assert_eq!(ms.len(), 4);
        let mut seen = std::collections::BTreeSet::new();
        for m in &ms {
            assert_eq!(m.forest, ForestId(2));
            assert_eq!(m.role, MachineRole::Hub);
            assert!(seen.insert(*m), "duplicate machine {m}");
        }
    }

    #[test]
    fn random_machines_caps_at_population() {
        let t = Topology::new(1, 2, 2, 2);
        let mut rng = SmallRng::seed_from_u64(1);
        let ms = t.random_machines(&mut rng, ForestId(0), MachineRole::Mailbox, 10);
        assert_eq!(ms.len(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_panics() {
        let _ = Topology::new(0, 1, 1, 1);
    }

    #[test]
    fn random_picks_are_in_range() {
        let t = Topology::default();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            let f = t.random_forest(&mut rng);
            assert!(f.0 < 8);
            let m = t.random_machine(&mut rng, f, MachineRole::FrontDoor);
            assert!(m.index < 6);
        }
    }
}
