//! The simulated multi-team deployment behind the paper's Table 4.
//!
//! The paper reports RCACopilot's collection module deployed across 30+
//! teams, with per-team handler counts and average handler execution times
//! (handlers call team-internal tools, so execution time reflects each
//! team's infrastructure scale, not handler count). We simulate 30 teams:
//! each has a handler library of a given size and an infrastructure
//! latency profile; executing a handler samples per-action latencies from
//! that profile.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One team's deployment report (a Table 4 row).
#[derive(Debug, Clone, PartialEq)]
pub struct TeamReport {
    /// Team label, e.g. `Team 1`.
    pub name: String,
    /// Number of enabled incident handlers.
    pub enabled_handlers: usize,
    /// Average wall-clock seconds per incident across simulated runs.
    pub avg_exec_time_secs: f64,
}

/// Per-team static profile: `(enabled handlers, mean action latency secs,
/// mean actions per handler path)`.
///
/// The top-10 handler counts follow the paper's Table 4; latency profiles
/// are chosen so execution time tracks infrastructure scale rather than
/// handler count (Team 1 runs a large, slow estate; Team 10 a small fast
/// one), reproducing the table's non-monotonic relationship.
const TEAM_PROFILES: [(usize, f64, f64); 30] = [
    (213, 70.0, 12.0),
    (204, 38.0, 10.0),
    (88, 13.0, 8.0),
    (42, 56.0, 8.0),
    (41, 17.0, 8.0),
    (34, 13.0, 7.0),
    (32, 56.0, 8.0),
    (32, 32.0, 8.0),
    (31, 40.0, 8.0),
    (18, 3.7, 6.0),
    (16, 9.0, 6.0),
    (15, 22.0, 7.0),
    (14, 6.0, 5.0),
    (12, 30.0, 6.0),
    (12, 11.0, 6.0),
    (11, 4.5, 5.0),
    (10, 14.0, 6.0),
    (9, 8.0, 5.0),
    (8, 26.0, 6.0),
    (8, 5.0, 4.0),
    (7, 12.0, 5.0),
    (6, 7.0, 4.0),
    (6, 18.0, 5.0),
    (5, 4.0, 4.0),
    (5, 9.0, 4.0),
    (4, 6.5, 4.0),
    (4, 3.0, 3.0),
    (3, 11.0, 4.0),
    (3, 5.0, 3.0),
    (2, 4.0, 3.0),
];

/// Simulates `incidents_per_team` handler executions for each of the 30
/// teams and returns reports ordered by enabled-handler count (descending),
/// i.e. the ordering of the paper's Table 4.
pub fn simulate_teams(seed: u64, incidents_per_team: usize) -> Vec<TeamReport> {
    assert!(
        incidents_per_team > 0,
        "need at least one incident per team"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut reports: Vec<TeamReport> = TEAM_PROFILES
        .iter()
        .enumerate()
        .map(|(i, &(handlers, mean_latency, mean_actions))| {
            let mut total = 0.0;
            for _ in 0..incidents_per_team {
                // Path length: actions actually executed for this incident.
                let actions = (mean_actions * rng.gen_range(0.6..1.4)).round().max(1.0) as usize;
                for _ in 0..actions {
                    // Log-normal-ish latency: mean * exp(noise).
                    let noise: f64 = rng.gen_range(-0.6..0.6);
                    total += mean_latency * noise.exp();
                }
            }
            TeamReport {
                name: format!("Team {}", i + 1),
                enabled_handlers: handlers,
                avg_exec_time_secs: total / incidents_per_team as f64,
            }
        })
        .collect();
    reports.sort_by_key(|r| std::cmp::Reverse(r.enabled_handlers));
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirty_teams_ordered_by_handler_count() {
        let reports = simulate_teams(1, 40);
        assert_eq!(reports.len(), 30);
        for w in reports.windows(2) {
            assert!(w[0].enabled_handlers >= w[1].enabled_handlers);
        }
        assert_eq!(reports[0].enabled_handlers, 213);
        assert_eq!(reports[9].enabled_handlers, 18);
    }

    #[test]
    fn exec_times_span_the_paper_range() {
        // Paper Table 4: 22s .. 841s for the top-10 teams.
        let reports = simulate_teams(7, 100);
        let top10 = &reports[..10];
        let min = top10
            .iter()
            .map(|r| r.avg_exec_time_secs)
            .fold(f64::MAX, f64::min);
        let max = top10
            .iter()
            .map(|r| r.avg_exec_time_secs)
            .fold(0.0, f64::max);
        assert!(min > 5.0 && min < 80.0, "min = {min}");
        assert!(max > 300.0 && max < 2000.0, "max = {max}");
        // Execution time is not monotone in handler count.
        let t3 = top10[2].avg_exec_time_secs; // 88 handlers, fast infra
        let t4 = top10[3].avg_exec_time_secs; // 42 handlers, slow infra
        assert!(t4 > t3, "Table 4 shape: Team 4 slower than Team 3");
    }

    #[test]
    fn simulation_is_deterministic_per_seed() {
        assert_eq!(simulate_teams(5, 20), simulate_teams(5, 20));
    }

    #[test]
    #[should_panic(expected = "at least one incident")]
    fn zero_incidents_rejected() {
        let _ = simulate_teams(1, 0);
    }
}
