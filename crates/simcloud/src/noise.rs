//! Background telemetry: the healthy hum of the service plus red herrings.
//!
//! Real diagnostic data is "noisy, incomplete and inconsistent" (paper §1).
//! Every incident snapshot therefore gets a bed of routine log lines,
//! normal metric samples, healthy traces, and mild red herrings (a 85%-full
//! disk, one unrelated failed trace) on top of which the root-cause
//! signature is planted. Raw collected text easily exceeds a thousand
//! tokens — which is exactly why the paper adds a summarization stage.

use crate::signature::metrics as metric_names;
use crate::topology::Topology;
use rand::rngs::SmallRng;
use rand::Rng;
use rcacopilot_telemetry::artifacts::{
    DiskUsage, ProcessInfo, ProvisioningRecord, QueueStat, SocketStat,
};
use rcacopilot_telemetry::ids::{ForestId, MachineRole, ProcessId};
use rcacopilot_telemetry::log::{LogLevel, LogRecord};
use rcacopilot_telemetry::time::{SimDuration, SimTime};
use rcacopilot_telemetry::trace::{SpanStatus, Trace, TraceSpan};
use rcacopilot_telemetry::TelemetrySnapshot;

/// Routine log templates sampled into every snapshot.
const ROUTINE_LOGS: &[(&str, &str, LogLevel, &str)] = &[
    (
        "Transport.exe",
        "SmtpIn",
        LogLevel::Info,
        "accepted connection from partner gateway",
    ),
    (
        "Transport.exe",
        "SmtpOut",
        LogLevel::Info,
        "outbound session established; STARTTLS negotiated",
    ),
    (
        "EdgeTransport.exe",
        "Categorizer",
        LogLevel::Info,
        "recipient resolution completed",
    ),
    (
        "TransportDelivery.exe",
        "Delivery",
        LogLevel::Info,
        "message delivered to mailbox store",
    ),
    (
        "Transport.exe",
        "HealthProbe",
        LogLevel::Info,
        "synthetic probe cycle completed",
    ),
    ("w3wp.exe", "Ews", LogLevel::Info, "mailbox session opened"),
    (
        "Transport.exe",
        "DnsResolver",
        LogLevel::Debug,
        "resolver cache refreshed",
    ),
    (
        "EdgeTransport.exe",
        "Pickup",
        LogLevel::Info,
        "pickup directory scan found no files",
    ),
    (
        "Transport.exe",
        "Throttling",
        LogLevel::Debug,
        "budget recalculated for tenant cohort",
    ),
    (
        "Microsoft.Transport.Store.Worker.exe",
        "Store",
        LogLevel::Info,
        "database checkpoint advanced",
    ),
    (
        "Transport.exe",
        "SmtpIn",
        LogLevel::Warning,
        "connection idle timeout; session recycled",
    ),
    (
        "EdgeTransport.exe",
        "ShadowRedundancy",
        LogLevel::Info,
        "shadow copy acknowledged",
    ),
    (
        "Transport.exe",
        "CertMonitor",
        LogLevel::Debug,
        "certificate inventory scan clean",
    ),
    (
        "Monitoring.exe",
        "Heartbeat",
        LogLevel::Info,
        "health manager heartbeat ok",
    ),
    (
        "Transport.exe",
        "Routing",
        LogLevel::Info,
        "routing table refresh committed",
    ),
    (
        "w3wp.exe",
        "AutoDiscover",
        LogLevel::Info,
        "autodiscover request served",
    ),
    (
        "EdgeTransport.exe",
        "Dumpster",
        LogLevel::Debug,
        "dumpster trimmed below quota",
    ),
    (
        "Transport.exe",
        "Backpressure",
        LogLevel::Debug,
        "resource pressure normal; no backpressure applied",
    ),
];

/// Bystander anomalies: genuine error-level lines from *unrelated*
/// ongoing trouble elsewhere in the forest. Real incident telemetry is
/// full of these — they overlap lexically with other categories'
/// signatures and are what makes raw-text classification hard.
const BYSTANDER_ANOMALIES: &[(&str, &str, LogLevel, &str)] = &[
    ("Transport.exe", "ServiceClient", LogLevel::Error, "System.TimeoutException: request to TelemetryService exceeded deadline once; transient, retried successfully"),
    ("w3wp.exe", "Ews", LogLevel::Error, "System.IO.IOException: transient write failure on temporary spool file; retried successfully"),
    ("Transport.exe", "CertMonitor", LogLevel::Warning, "certificate for internal test endpoint expires within 30 days"),
    ("Transport.exe", "SmtpOut", LogLevel::Error, "System.Net.Sockets.SocketException: connection reset by remote MTA during DATA; transient, session retried successfully"),
    ("EdgeTransport.exe", "Categorizer", LogLevel::Error, "TransientRoutingException: next hop briefly unavailable; message re-queued"),
    ("Microsoft.Transport.Store.Worker.exe", "Store", LogLevel::Error, "MapiExceptionTimeout: single mailbox operation timed out"),
    ("Transport.exe", "Throttling", LogLevel::Warning, "tenant exceeded burst budget momentarily; requests briefly deferred"),
    ("Monitoring.exe", "ProbeRunner", LogLevel::Error, "synthetic probe run skipped: dependency canary unavailable"),
    ("EdgeTransport.exe", "QueueMonitor", LogLevel::Warning, "submission queue briefly above watermark before draining"),
    ("Transport.exe", "DnsResolver", LogLevel::Error, "DNS server rotation: one resolver returned SERVFAIL; fell back"),
    ("AuditService.exe", "AuditWriter", LogLevel::Warning, "audit event batch flushed late"),
    ("Transport.exe", "AuthClient", LogLevel::Error, "token cache miss caused one synchronous token fetch"),
];

/// Benign warning templates that look scary but are routine.
const RED_HERRING_LOGS: &[(&str, &str, LogLevel, &str)] = &[
    (
        "Transport.exe",
        "SmtpOut",
        LogLevel::Warning,
        "transient 451 from remote host; message requeued for retry",
    ),
    (
        "w3wp.exe",
        "Ews",
        LogLevel::Warning,
        "slow mailbox logon exceeded 5s once",
    ),
    (
        "Monitoring.exe",
        "Heartbeat",
        LogLevel::Warning,
        "one heartbeat missed; next heartbeat on time",
    ),
    (
        "EdgeTransport.exe",
        "Categorizer",
        LogLevel::Warning,
        "recipient cache miss rate briefly elevated",
    ),
    (
        "Transport.exe",
        "DnsResolver",
        LogLevel::Warning,
        "single DNS query retried after UDP timeout",
    ),
];

/// Configuration for background noise volume.
#[derive(Debug, Clone, Copy)]
pub struct NoiseProfile {
    /// Routine log lines per snapshot.
    pub routine_logs: usize,
    /// Red-herring warning lines per snapshot.
    pub herring_logs: usize,
    /// Healthy traces per snapshot.
    pub healthy_traces: usize,
    /// Whether to add one unrelated failing trace.
    pub unrelated_failure: bool,
    /// Bystander anomaly lines per snapshot (error-level noise from
    /// unrelated trouble; see the `BYSTANDER_ANOMALIES` catalog).
    pub bystander_anomalies: usize,
}

impl Default for NoiseProfile {
    fn default() -> Self {
        NoiseProfile {
            routine_logs: 36,
            herring_logs: 5,
            healthy_traces: 12,
            unrelated_failure: true,
            bystander_anomalies: 3,
        }
    }
}

/// Fills `snap` with background noise for an incident in `forest` at `at`.
pub fn fill_background(
    snap: &mut TelemetrySnapshot,
    rng: &mut SmallRng,
    topology: &Topology,
    forest: ForestId,
    at: SimTime,
    profile: &NoiseProfile,
) {
    // Routine and red-herring logs from random machines of the forest.
    for _ in 0..profile.routine_logs {
        let (process, component, level, message) =
            ROUTINE_LOGS[rng.gen_range(0..ROUTINE_LOGS.len())];
        push_log(
            snap, rng, topology, forest, at, process, component, level, message,
        );
    }
    for _ in 0..profile.herring_logs {
        let (process, component, level, message) =
            RED_HERRING_LOGS[rng.gen_range(0..RED_HERRING_LOGS.len())];
        push_log(
            snap, rng, topology, forest, at, process, component, level, message,
        );
    }
    for _ in 0..profile.bystander_anomalies {
        let (process, component, level, message) =
            BYSTANDER_ANOMALIES[rng.gen_range(0..BYSTANDER_ANOMALIES.len())];
        push_log(
            snap, rng, topology, forest, at, process, component, level, message,
        );
    }

    // Healthy metric baselines on a handful of machines, so metric queries
    // always return something.
    for _ in 0..3 {
        let role = [
            MachineRole::Mailbox,
            MachineRole::FrontDoor,
            MachineRole::Hub,
        ][rng.gen_range(0..3)];
        let m = topology.random_machine(rng, forest, role);
        let baselines: [(&str, f64); 9] = [
            (metric_names::AVAILABILITY, rng.gen_range(99.5..99.99)),
            (
                metric_names::CONCURRENT_CONNECTIONS,
                rng.gen_range(800.0..2500.0),
            ),
            (metric_names::DELIVERY_LATENCY, rng.gen_range(180.0..450.0)),
            (metric_names::POISON_COUNT, rng.gen_range(0.0..2.0)),
            (metric_names::AUTH_FAILURES, rng.gen_range(0.0..5.0)),
            (metric_names::DEPENDENCY_LATENCY, rng.gen_range(20.0..120.0)),
            (metric_names::MEMORY_PRESSURE, rng.gen_range(35.0..70.0)),
            (metric_names::CPU_UTIL, rng.gen_range(20.0..65.0)),
            (metric_names::UDP_SOCKETS, rng.gen_range(1200.0..3800.0)),
        ];
        for (name, base) in baselines {
            for i in 0..3u64 {
                let t = at.saturating_sub(SimDuration::from_mins(60 - i * 15));
                snap.metrics
                    .record(name, m, t, base * (1.0 + rng.gen_range(-0.03..0.03)));
            }
        }
    }

    // Healthy traces.
    for _ in 0..profile.healthy_traces {
        let m = topology.random_machine(rng, forest, MachineRole::Mailbox);
        let trace_id = rng.gen::<u64>();
        let start = at.saturating_sub(SimDuration::from_mins(rng.gen_range(1..50)));
        snap.traces.push(Trace {
            trace_id,
            spans: vec![
                TraceSpan {
                    trace_id,
                    span_id: 0,
                    parent: None,
                    service: "SmtpIn".into(),
                    operation: "AcceptMessage".into(),
                    machine: m,
                    start,
                    duration: SimDuration::from_secs(rng.gen_range(1..5)),
                    status: SpanStatus::Ok,
                    error: None,
                },
                TraceSpan {
                    trace_id,
                    span_id: 1,
                    parent: Some(0),
                    service: "Categorizer".into(),
                    operation: "Resolve".into(),
                    machine: m,
                    start,
                    duration: SimDuration::from_secs(rng.gen_range(1..3)),
                    status: SpanStatus::Ok,
                    error: None,
                },
            ],
        });
    }
    if profile.unrelated_failure {
        let m = topology.random_machine(rng, forest, MachineRole::Mailbox);
        let trace_id = rng.gen::<u64>();
        let start = at.saturating_sub(SimDuration::from_mins(rng.gen_range(50..120)));
        snap.traces.push(Trace {
            trace_id,
            spans: vec![TraceSpan {
                trace_id,
                span_id: 0,
                parent: None,
                service: "TelemetryUploader".into(),
                operation: "Flush".into(),
                machine: m,
                start,
                duration: SimDuration::from_secs(30),
                status: SpanStatus::Error,
                error: Some("transient upload failure; retried successfully".into()),
            }],
        });
    }

    // Normal disks, sockets, queues, processes, provisioning.
    for _ in 0..4 {
        let m = topology.random_machine(rng, forest, MachineRole::Mailbox);
        snap.disks.push(DiskUsage {
            machine: m,
            volume: "C:".into(),
            used_pct: rng.gen_range(30.0..72.0),
            free_bytes: rng.gen_range(80u64..400) << 30,
        });
        snap.processes.push(ProcessInfo {
            machine: m,
            process: "Transport.exe".into(),
            pid: ProcessId(rng.gen_range(1000..60_000)),
            crash_count: 0,
            memory_mb: rng.gen_range(900..2400),
            last_crash_exception: None,
        });
        snap.provisioning.push(ProvisioningRecord {
            machine: m,
            state: "Active".into(),
            build: "15.20.5900.14".into(),
            since: at.saturating_sub(SimDuration::from_days(rng.gen_range(5..40))),
        });
        snap.queues.push(QueueStat {
            machine: m,
            queue: "submission".into(),
            length: rng.gen_range(5..300),
            limit: 2000,
            oldest_age_secs: rng.gen_range(1..90),
        });
        snap.sockets.push(SocketStat {
            machine: m,
            protocol: "udp".into(),
            process: "Transport.exe".into(),
            pid: ProcessId(rng.gen_range(1000..60_000)),
            count: rng.gen_range(800..3000),
        });
    }
    // One mildly full disk as a red herring.
    let m = topology.random_machine(rng, forest, MachineRole::Mailbox);
    snap.disks.push(DiskUsage {
        machine: m,
        volume: "D:".into(),
        used_pct: rng.gen_range(80.0..88.0),
        free_bytes: 20 << 30,
    });
}

#[allow(clippy::too_many_arguments)]
fn push_log(
    snap: &mut TelemetrySnapshot,
    rng: &mut SmallRng,
    topology: &Topology,
    forest: ForestId,
    at: SimTime,
    process: &str,
    component: &str,
    level: LogLevel,
    message: &str,
) {
    let role = [
        MachineRole::Mailbox,
        MachineRole::FrontDoor,
        MachineRole::Hub,
    ][rng.gen_range(0..3)];
    let machine = topology.random_machine(rng, forest, role);
    let t = at.saturating_sub(SimDuration::from_mins(rng.gen_range(0..90)));
    snap.logs.push(LogRecord {
        at: t,
        machine,
        process: process.to_string(),
        component: component.to_string(),
        level,
        message: format!("{message} (session {:08x})", rng.gen::<u32>()),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rcacopilot_telemetry::query::{Query, Scope, TimeWindow};

    fn noisy_snapshot() -> TelemetrySnapshot {
        let topo = Topology::default();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut snap = TelemetrySnapshot::new(SimTime::from_days(50));
        fill_background(
            &mut snap,
            &mut rng,
            &topo,
            ForestId(2),
            SimTime::from_days(50),
            &NoiseProfile::default(),
        );
        snap.logs.finish();
        snap
    }

    #[test]
    fn background_fills_every_store() {
        let snap = noisy_snapshot();
        assert!(snap.logs.len() >= 40);
        assert!(snap.metrics.sample_count() > 50);
        assert!(snap.traces.len() >= 12);
        assert!(!snap.disks.is_empty());
        assert!(!snap.queues.is_empty());
        assert!(!snap.processes.is_empty());
        assert!(!snap.provisioning.is_empty());
        assert!(!snap.sockets.is_empty());
    }

    #[test]
    fn background_contains_no_critical_errors() {
        let snap = noisy_snapshot();
        let w = TimeWindow::new(SimTime::EPOCH, SimTime::from_days(400));
        assert_eq!(snap.logs.count(Scope::Service, w, LogLevel::Critical), 0);
        // Bystander anomalies contribute a bounded number of error lines.
        let errors = snap.logs.count(Scope::Service, w, LogLevel::Error);
        assert!(
            errors <= NoiseProfile::default().bystander_anomalies,
            "too many background errors: {errors}"
        );
    }

    #[test]
    fn background_metrics_look_healthy() {
        let snap = noisy_snapshot();
        let w = TimeWindow::new(SimTime::EPOCH, SimTime::from_days(400));
        let r = snap.execute(
            &Query::MetricStats {
                metric: metric_names::AVAILABILITY.into(),
            },
            Scope::Service,
            w,
        );
        let mean: f64 = r.row("Mean").unwrap().parse().unwrap();
        assert!(
            mean > 99.0,
            "availability baseline should be healthy: {mean}"
        );
    }

    #[test]
    fn red_herring_disk_is_not_full() {
        let snap = noisy_snapshot();
        let max = snap.disks.iter().map(|d| d.used_pct).fold(0.0f64, f64::max);
        assert!(max < 90.0, "background disks must stay below alert level");
    }
}
