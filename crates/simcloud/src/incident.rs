//! The incident record produced by the fault-injection campaign.

use rcacopilot_telemetry::alert::Alert;
use rcacopilot_telemetry::time::SimTime;
use rcacopilot_telemetry::TelemetrySnapshot;
use serde::{Deserialize, Serialize};

/// One cloud incident: the alert, the telemetry around it, and the
/// ground-truth root-cause category assigned post-investigation by OCEs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Incident {
    /// The triggering alert (carries id, type, scope, severity, time).
    pub alert: Alert,
    /// Ground-truth root-cause category label.
    pub category: String,
    /// True if this is the first incident of its category in the year —
    /// a "new root cause" in the sense of the paper's Figure 3.
    pub first_of_category: bool,
    /// Telemetry visible to handlers for this incident.
    pub snapshot: TelemetrySnapshot,
}

impl Incident {
    /// When the incident occurred (the alert time).
    pub fn occurred_at(&self) -> SimTime {
        self.alert.raised_at
    }

    /// The "AlertInfo" context of the paper's Table 3: alert type + scope
    /// (+ severity), without any collected diagnostics.
    pub fn alert_info(&self) -> String {
        format!(
            "Alert type: {}. Alert scope: {}. Severity: {}. {}",
            self.alert.alert_type, self.alert.scope, self.alert.severity, self.alert.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcacopilot_telemetry::alert::{AlertType, Severity};
    use rcacopilot_telemetry::ids::{ForestId, IncidentId, TenantId};
    use rcacopilot_telemetry::query::Scope;

    #[test]
    fn alert_info_mentions_type_scope_severity() {
        let inc = Incident {
            alert: Alert {
                incident: IncidentId(1),
                alert_type: AlertType::ResourcePressure,
                scope: Scope::Forest(ForestId(0)),
                severity: Severity::Sev3,
                tenant: TenantId::default(),
                raised_at: SimTime::from_days(3),
                monitor: "ResourceMonitor".into(),
                message: "Memory pressure sustained.".into(),
            },
            category: "MemoryLeakTransport".into(),
            first_of_category: true,
            snapshot: TelemetrySnapshot::new(SimTime::from_days(3)),
        };
        let info = inc.alert_info();
        assert!(info.contains("ResourcePressure"));
        assert!(info.contains("forest NAMPR00"));
        assert!(info.contains("Sev3"));
        assert_eq!(inc.occurred_at(), SimTime::from_days(3));
    }
}
