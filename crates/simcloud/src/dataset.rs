//! Dataset container, train/test split, and the statistics behind the
//! paper's Figures 2 and 3.

use crate::catalog::Catalog;
use crate::incident::Incident;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// The incident dataset: chronologically ordered incidents plus the
/// catalog that generated them.
#[derive(Debug, Clone)]
pub struct IncidentDataset {
    incidents: Vec<Incident>,
    catalog: Catalog,
}

/// Index-based train/test split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrainTestSplit {
    /// Indices of training incidents.
    pub train: Vec<usize>,
    /// Indices of testing incidents.
    pub test: Vec<usize>,
}

/// Aggregate statistics of a dataset (Figures 2 and 3).
#[derive(Debug, Clone)]
pub struct DatasetStats {
    /// Total incidents.
    pub total: usize,
    /// Distinct categories.
    pub categories: usize,
    /// Incidents that were the first of their category ("new root cause").
    pub new_category_incidents: usize,
    /// Share of new-category incidents (paper: 24.96%).
    pub new_category_share: f64,
    /// All recurrence gaps in days (same-category successive incidents).
    pub recurrence_gaps_days: Vec<f64>,
    /// Per-category occurrence counts, descending (Figure 3's long tail).
    pub category_counts: Vec<(String, usize)>,
}

impl DatasetStats {
    /// Proportion of recurrence gaps at or below `days` (Figure 2's CDF).
    pub fn recurrence_share_within(&self, days: f64) -> f64 {
        if self.recurrence_gaps_days.is_empty() {
            return 0.0;
        }
        let n = self
            .recurrence_gaps_days
            .iter()
            .filter(|&&g| g <= days)
            .count();
        n as f64 / self.recurrence_gaps_days.len() as f64
    }

    /// `(interval_days, cumulative_share)` series for Figure 2.
    pub fn recurrence_cdf(&self, intervals: &[f64]) -> Vec<(f64, f64)> {
        intervals
            .iter()
            .map(|&d| (d, self.recurrence_share_within(d)))
            .collect()
    }
}

impl IncidentDataset {
    /// Wraps generated incidents (must already be chronological).
    pub fn new(incidents: Vec<Incident>, catalog: Catalog) -> Self {
        debug_assert!(incidents
            .windows(2)
            .all(|w| w[0].occurred_at() <= w[1].occurred_at()));
        IncidentDataset { incidents, catalog }
    }

    /// All incidents, chronological.
    pub fn incidents(&self) -> &[Incident] {
        &self.incidents
    }

    /// Number of incidents.
    pub fn len(&self) -> usize {
        self.incidents.len()
    }

    /// True if the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.incidents.is_empty()
    }

    /// The catalog the campaign ran against.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Seeded random split with `train_frac` of incidents in the training
    /// set (paper §5.1 uses 75%/25%).
    ///
    /// # Panics
    ///
    /// Panics if `train_frac` is outside `(0, 1)`.
    pub fn split(&self, seed: u64, train_frac: f64) -> TrainTestSplit {
        assert!(
            train_frac > 0.0 && train_frac < 1.0,
            "train_frac must be in (0, 1)"
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut indices: Vec<usize> = (0..self.incidents.len()).collect();
        // Fisher-Yates shuffle.
        for i in (1..indices.len()).rev() {
            let j = rng.gen_range(0..=i);
            indices.swap(i, j);
        }
        let n_train = ((self.incidents.len() as f64) * train_frac).round() as usize;
        let mut train = indices[..n_train].to_vec();
        let mut test = indices[n_train..].to_vec();
        train.sort_unstable();
        test.sort_unstable();
        TrainTestSplit { train, test }
    }

    /// Computes dataset statistics.
    pub fn stats(&self) -> DatasetStats {
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        let mut last_seen: BTreeMap<&str, f64> = BTreeMap::new();
        let mut gaps = Vec::new();
        let mut new_count = 0;
        for inc in &self.incidents {
            *counts.entry(inc.category.as_str()).or_insert(0) += 1;
            if inc.first_of_category {
                new_count += 1;
            }
            let day = inc.occurred_at().days_f64();
            if let Some(prev) = last_seen.insert(inc.category.as_str(), day) {
                gaps.push(day - prev);
            }
        }
        let mut category_counts: Vec<(String, usize)> = counts
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        category_counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let total = self.incidents.len();
        DatasetStats {
            total,
            categories: category_counts.len(),
            new_category_incidents: new_count,
            new_category_share: if total == 0 {
                0.0
            } else {
                new_count as f64 / total as f64
            },
            recurrence_gaps_days: gaps,
            category_counts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_dataset, CampaignConfig};
    use crate::noise::NoiseProfile;
    use crate::topology::Topology;

    fn small_dataset() -> IncidentDataset {
        generate_dataset(&CampaignConfig {
            seed: 42,
            topology: Topology::new(2, 4, 2, 2),
            noise: NoiseProfile {
                routine_logs: 2,
                herring_logs: 1,
                healthy_traces: 1,
                unrelated_failure: false,
                bystander_anomalies: 1,
            },
        })
    }

    #[test]
    fn stats_match_catalog_totals() {
        let ds = small_dataset();
        let stats = ds.stats();
        assert_eq!(stats.total, 653);
        assert_eq!(stats.categories, 163);
        assert_eq!(stats.new_category_incidents, 163);
        assert!((stats.new_category_share - 0.2496).abs() < 0.001);
    }

    #[test]
    fn recurrence_cdf_reproduces_figure2_shape() {
        let ds = small_dataset();
        let stats = ds.stats();
        // Paper: 93.80% of recurrences within 20 days. Accept a band.
        let within20 = stats.recurrence_share_within(20.0);
        assert!(
            (0.88..=0.98).contains(&within20),
            "share within 20 days = {within20}"
        );
        // CDF is monotone.
        let cdf = stats.recurrence_cdf(&[1.0, 5.0, 10.0, 20.0, 40.0, 120.0]);
        for w in cdf.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert!(stats.recurrence_share_within(365.0) > 0.999);
    }

    #[test]
    fn category_counts_are_long_tailed_descending() {
        let ds = small_dataset();
        let stats = ds.stats();
        assert_eq!(stats.category_counts[0].1, 27);
        for w in stats.category_counts.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        let singles = stats
            .category_counts
            .iter()
            .filter(|(_, c)| *c == 1)
            .count();
        assert!(singles > 40);
    }

    #[test]
    fn split_is_disjoint_exhaustive_and_seeded() {
        let ds = small_dataset();
        let s1 = ds.split(1, 0.75);
        let s2 = ds.split(1, 0.75);
        assert_eq!(s1, s2);
        assert_eq!(s1.train.len() + s1.test.len(), ds.len());
        assert_eq!(s1.train.len(), 490); // round(653 * 0.75)
        let mut all: Vec<usize> = s1.train.iter().chain(&s1.test).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), ds.len());
        let s3 = ds.split(2, 0.75);
        assert_ne!(s1, s3, "different seeds should shuffle differently");
    }

    #[test]
    #[should_panic(expected = "train_frac")]
    fn split_rejects_bad_fraction() {
        let ds = small_dataset();
        let _ = ds.split(1, 1.5);
    }
}
