//! A simulated email-transport cloud service with fault injection.
//!
//! The paper evaluates RCACopilot on one year of incidents from Microsoft's
//! proprietary *Transport* service. This crate is the substitution: a
//! synthetic transport service whose monitors raise the same alert types,
//! whose telemetry has the same shapes (probe logs, socket tables, queue
//! statistics, thread stacks, certificates, tenant settings, traces), and
//! whose fault-injection campaign reproduces the dataset's measurable
//! statistics — the long-tail category distribution of Figure 3 (24.96%
//! new-category incidents), the recurrence bursts of Figure 2 (93.8% of
//! recurrence gaps within 20 days), and the severity/scope mix of Table 1.
//!
//! Modules:
//!
//! - [`topology`]: forests, machines, processes of the simulated service.
//! - [`catalog`]: the root-cause category catalog — ~40 fault families
//!   expanded by variants into the full category set.
//! - [`signature`]: the declarative telemetry signature each category
//!   plants into an incident's snapshot, plus the planting engine.
//! - [`noise`]: background telemetry (healthy logs/metrics/traces and red
//!   herrings) mixed into every snapshot.
//! - [`incident`]: the [`incident::Incident`] record.
//! - [`generator`]: the year-long fault-injection campaign producing an
//!   [`dataset::IncidentDataset`].
//! - [`dataset`]: dataset container, train/test split, and the statistics
//!   behind Figures 2 and 3.
//! - [`scale`]: corpus scaling — tiling the catalog's long-tail and
//!   recurrence structure across multi-year, 100k–1M-incident corpora
//!   for ANN retrieval benchmarks.
//! - [`teams`]: the simulated 30-team deployment behind Table 4.
//! - [`tenancy`]: per-tenant serving workload plans — stream shape,
//!   fault climate, fair-share weight — and the deterministic
//!   round-robin partition of a dataset across tenants.
//! - [`faults`]: seeded telemetry-plane fault plans ([`faults::FaultPlan`])
//!   driving the resilient collection executor's robustness benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod dataset;
pub mod faults;
pub mod generator;
pub mod incident;
pub mod noise;
pub mod scale;
pub mod signature;
pub mod teams;
pub mod tenancy;
pub mod topology;

pub use catalog::{Catalog, CategorySpec, Family};
pub use dataset::{DatasetStats, IncidentDataset, TrainTestSplit};
pub use faults::{FaultMix, FaultPlan, Outage, StorageFaultPlan};
pub use generator::{generate_dataset, CampaignConfig};
pub use incident::Incident;
pub use scale::{corpus_stats, scaled_corpus, ScaleConfig, ScaleStats, ScaledIncident};
pub use teams::{simulate_teams, TeamReport};
pub use tenancy::{
    partition_tenants, replicate_partition, zipf_fleet, zipf_volumes, TenantFleetConfig,
    TenantStormPlan,
};
pub use topology::Topology;
