//! The year-long fault-injection campaign.
//!
//! Scheduling reproduces the paper's Insight 2: "most recurring incidents
//! (93.80%) tend to reappear within a brief span of 20 days". Each
//! category's occurrences are grouped into *bursts*: short exponential
//! gaps (a few days) inside a burst, long gaps between bursts. The number
//! of bursts grows with the category's occurrence count, which yields a
//! small minority of recurrence gaps above 20 days.

use crate::catalog::{Catalog, CategorySpec};
use crate::dataset::IncidentDataset;
use crate::incident::Incident;
use crate::noise::{fill_background, NoiseProfile};
use crate::signature::{plant, PlantCtx};
use crate::topology::Topology;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rcacopilot_telemetry::alert::{Alert, AlertType};
use rcacopilot_telemetry::ids::{IncidentId, MachineRole, TenantId};
use rcacopilot_telemetry::query::Scope;
use rcacopilot_telemetry::time::{SimDuration, SimTime};
use rcacopilot_telemetry::TelemetrySnapshot;
use std::collections::BTreeSet;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed; everything downstream is deterministic in it.
    pub seed: u64,
    /// Service topology.
    pub topology: Topology,
    /// Background-noise volume.
    pub noise: NoiseProfile,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 42,
            topology: Topology::default(),
            noise: NoiseProfile::default(),
        }
    }
}

/// Monitor name raising each alert type.
fn monitor_for(alert_type: AlertType) -> &'static str {
    match alert_type {
        AlertType::DeliveryQueueBacklog => "QueueLengthMonitor",
        AlertType::OutboundConnectionFailure => "OutboundProxyMonitor",
        AlertType::ProcessCrashSpike => "CrashRateWatchdog",
        AlertType::AuthenticationFailure => "AuthHealthMonitor",
        AlertType::ConnectionLimitExceeded => "ConnectionCountMonitor",
        AlertType::AvailabilityDrop => "AvailabilitySloMonitor",
        AlertType::PoisonedMessage => "PoisonMessageMonitor",
        AlertType::DeliveryLatencyHigh => "DeliveryLatencyMonitor",
        AlertType::ResourcePressure => "ResourcePressureMonitor",
        AlertType::DependencyTimeout => "DependencyHealthMonitor",
    }
}

/// Days in the simulated year available for scheduling.
const YEAR_DAYS: f64 = 364.0;
/// Mean within-burst recurrence gap, days.
const BURST_GAP_MEAN_DAYS: f64 = 2.0;
/// Cap on within-burst gaps, days (safely under the 20-day threshold).
const BURST_GAP_CAP_DAYS: f64 = 15.0;

/// Samples a truncated exponential gap in days.
fn burst_gap(rng: &mut SmallRng) -> f64 {
    let u: f64 = rng.gen_range(1e-6..1.0);
    (-BURST_GAP_MEAN_DAYS * u.ln()).clamp(0.05, BURST_GAP_CAP_DAYS)
}

/// Length of a family activity window, days.
const WINDOW_LEN_DAYS: f64 = 14.0;

/// Draws the activity windows of one fault family: periods during which
/// *any* of its variants may burst. Sibling variants bursting inside the
/// same window is what makes real incident streams temporally ambiguous —
/// recency alone cannot tell which family member struck.
fn family_windows(rng: &mut SmallRng, family_total: u32) -> Vec<f64> {
    let n = (2 + family_total as usize / 10).min(6);
    let mut starts: Vec<f64> = (0..n)
        .map(|_| rng.gen_range(0.0..YEAR_DAYS - WINDOW_LEN_DAYS - 5.0))
        .collect();
    starts.sort_by(|a, b| a.partial_cmp(b).expect("finite day values"));
    // Keep windows > 25 days apart so cross-window recurrences register
    // as "long" gaps (Figure 2's tail).
    for i in 1..starts.len() {
        if starts[i] - starts[i - 1] < 25.0 {
            starts[i] =
                (starts[i - 1] + rng.gen_range(25.0..55.0)).min(YEAR_DAYS - WINDOW_LEN_DAYS);
        }
    }
    starts
}

/// Schedules occurrence times (fractional days) for one category whose
/// family is active in `windows`.
fn schedule_category(rng: &mut SmallRng, count: u32, windows: &[f64]) -> Vec<f64> {
    let count = count as usize;
    if count == 1 {
        // Singletons land inside one of the family's windows.
        let w = windows[rng.gen_range(0..windows.len())];
        return vec![w + rng.gen_range(0.0..WINDOW_LEN_DAYS)];
    }
    // Number of bursts grows slowly with occurrence count; each burst is
    // placed in a (possibly shared) family window.
    let bursts = (1 + count / 7).min(windows.len().max(1));
    let mut chosen: Vec<f64> = Vec::with_capacity(bursts);
    let mut order: Vec<usize> = (0..windows.len()).collect();
    for i in 0..bursts.min(order.len()) {
        let j = rng.gen_range(i..order.len());
        order.swap(i, j);
        chosen.push(windows[order[i]]);
    }
    // Distribute occurrences round-robin over bursts, consecutive gaps
    // inside each burst.
    let mut per_burst: Vec<usize> = vec![count / bursts; bursts];
    for slot in per_burst.iter_mut().take(count % bursts) {
        *slot += 1;
    }
    let mut times = Vec::with_capacity(count);
    for (b, &n) in per_burst.iter().enumerate() {
        let mut t = chosen[b] + rng.gen_range(0.0..WINDOW_LEN_DAYS / 2.0);
        for _ in 0..n {
            times.push(t.min(YEAR_DAYS));
            t += burst_gap(rng);
        }
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite day values"));
    times
}

/// Runs the campaign and produces the dataset.
pub fn generate_dataset(config: &CampaignConfig) -> IncidentDataset {
    let catalog = Catalog::standard();
    let mut rng = SmallRng::seed_from_u64(config.seed);

    // Phase 1: schedule all occurrences (jitter included so the final
    // order is exactly the scheduled order). Scheduling is per *family*:
    // each family gets shared activity windows, and every variant's
    // bursts land inside them, so sibling categories collide in time.
    let mut family_totals: std::collections::BTreeMap<crate::catalog::Family, u32> =
        std::collections::BTreeMap::new();
    for spec in catalog.categories() {
        *family_totals.entry(spec.family).or_insert(0) += spec.target_count;
    }
    let windows: std::collections::BTreeMap<crate::catalog::Family, Vec<f64>> = family_totals
        .iter()
        .map(|(&family, &total)| (family, family_windows(&mut rng, total)))
        .collect();
    let mut events: Vec<(usize, SimTime)> = Vec::new(); // (category index, time)
    for (ci, spec) in catalog.categories().iter().enumerate() {
        for day in schedule_category(&mut rng, spec.target_count, &windows[&spec.family]) {
            let at = SimTime::from_secs((day * 86_400.0) as u64)
                + SimDuration::from_secs(rng.gen_range(0..3600));
            events.push((ci, at));
        }
    }
    events.sort_by_key(|&(_, at)| at);

    // Phase 2: materialize incidents chronologically.
    let mut incidents = Vec::with_capacity(events.len());
    let mut seen: BTreeSet<usize> = BTreeSet::new();
    for (seq, (ci, at)) in events.into_iter().enumerate() {
        let spec = &catalog.categories()[ci];
        let incident = build_incident(
            &mut rng,
            config,
            spec,
            IncidentId(1_000_000 + seq as u64),
            at,
            seen.insert(ci),
        );
        incidents.push(incident);
    }
    IncidentDataset::new(incidents, catalog)
}

/// Builds one incident of `spec` at `at`.
fn build_incident(
    rng: &mut SmallRng,
    config: &CampaignConfig,
    spec: &CategorySpec,
    id: IncidentId,
    at: SimTime,
    first_of_category: bool,
) -> Incident {
    let forest = config.topology.random_forest(rng);
    let mut snapshot = TelemetrySnapshot::new(at);
    fill_background(
        &mut snapshot,
        rng,
        &config.topology,
        forest,
        at,
        &config.noise,
    );
    let (message, primary) = {
        let mut ctx = PlantCtx {
            rng,
            at,
            forest,
            topology: &config.topology,
            primary: None,
        };
        let message = plant(spec, &mut ctx, &mut snapshot);
        (message, ctx.primary)
    };
    snapshot.logs.finish();

    let scope = if spec.machine_scoped {
        // Machine-scoped alerts point at the machine carrying the
        // evidence, as a real monitor would.
        let fallback = config
            .topology
            .random_machine(rng, forest, MachineRole::FrontDoor);
        Scope::Machine(primary.unwrap_or(fallback))
    } else {
        Scope::Forest(forest)
    };
    Incident {
        alert: Alert {
            incident: id,
            alert_type: spec.alert_type,
            scope,
            severity: spec.severity,
            tenant: TenantId::default(),
            raised_at: at,
            monitor: monitor_for(spec.alert_type).to_string(),
            message,
        },
        category: spec.name.clone(),
        first_of_category,
        snapshot,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_has_right_count_and_is_sorted() {
        let mut rng = SmallRng::seed_from_u64(5);
        let windows = family_windows(&mut rng, 27);
        for count in [1u32, 2, 7, 27] {
            let times = schedule_category(&mut rng, count, &windows);
            assert_eq!(times.len(), count as usize);
            assert!(times.windows(2).all(|w| w[0] <= w[1]));
            assert!(times.iter().all(|&t| (0.0..=YEAR_DAYS + 1.0).contains(&t)));
        }
    }

    #[test]
    fn bursts_scale_with_count() {
        // With 27 occurrences there are multiple bursts, so at least one
        // recurrence gap exceeds 20 days.
        let mut rng = SmallRng::seed_from_u64(9);
        let windows = family_windows(&mut rng, 27);
        assert!(windows.len() >= 2);
        let times = schedule_category(&mut rng, 27, &windows);
        let long_gaps = times.windows(2).filter(|w| w[1] - w[0] > 20.0).count();
        assert!(long_gaps >= 1, "expected at least one cross-burst gap");
        let short_gaps = times.windows(2).filter(|w| w[1] - w[0] <= 20.0).count();
        assert!(short_gaps > long_gaps * 2, "most gaps must stay short");
    }

    #[test]
    fn family_windows_are_spread_and_in_year() {
        let mut rng = SmallRng::seed_from_u64(2);
        let windows = family_windows(&mut rng, 40);
        assert!(windows.len() >= 2);
        for w in windows.windows(2) {
            assert!(w[1] - w[0] >= 20.0, "windows too close: {:?}", w);
        }
        assert!(windows.iter().all(|&w| (0.0..YEAR_DAYS).contains(&w)));
    }

    #[test]
    fn small_campaign_is_deterministic() {
        let config = CampaignConfig {
            seed: 7,
            topology: Topology::new(2, 4, 2, 2),
            noise: NoiseProfile {
                routine_logs: 4,
                herring_logs: 1,
                healthy_traces: 2,
                unrelated_failure: false,
                bystander_anomalies: 1,
            },
        };
        let a = generate_dataset(&config);
        let b = generate_dataset(&config);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.incidents().iter().zip(b.incidents()) {
            assert_eq!(x.category, y.category);
            assert_eq!(x.alert.raised_at, y.alert.raised_at);
            assert_eq!(x.alert.message, y.alert.message);
        }
    }

    #[test]
    fn incidents_are_chronological_with_unique_ids() {
        let config = CampaignConfig {
            seed: 3,
            topology: Topology::new(2, 4, 2, 2),
            noise: NoiseProfile {
                routine_logs: 2,
                herring_logs: 1,
                healthy_traces: 1,
                unrelated_failure: false,
                bystander_anomalies: 1,
            },
        };
        let ds = generate_dataset(&config);
        assert_eq!(ds.len(), crate::catalog::TOTAL_INCIDENTS as usize);
        let mut ids = BTreeSet::new();
        for w in ds.incidents().windows(2) {
            assert!(w[0].occurred_at() <= w[1].occurred_at());
        }
        for inc in ds.incidents() {
            assert!(ids.insert(inc.alert.incident));
        }
    }

    #[test]
    fn first_of_category_flags_match_category_count() {
        let config = CampaignConfig {
            seed: 3,
            topology: Topology::new(2, 4, 2, 2),
            noise: NoiseProfile {
                routine_logs: 2,
                herring_logs: 1,
                healthy_traces: 1,
                unrelated_failure: false,
                bystander_anomalies: 1,
            },
        };
        let ds = generate_dataset(&config);
        let firsts = ds
            .incidents()
            .iter()
            .filter(|i| i.first_of_category)
            .count();
        assert_eq!(firsts, crate::catalog::TOTAL_CATEGORIES);
    }
}
