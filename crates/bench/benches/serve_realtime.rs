//! Real-clock serving sweep: actual worker threads, wall-time latency.
//!
//! The virtual-time sweep (`serve_throughput`) models the worker pool as
//! a DES; this bench runs the *same engine* under
//! [`rcacopilot_serve::RealClock`] — workers are real `std::thread`s and
//! every modeled stage cost becomes a scaled wall-clock sleep (an LLM
//! call is latency-bound waiting on a remote service, so sleeping the
//! modeled duration is the honest single-machine stand-in, and it scales
//! with thread count even on a one-core CI runner). Recorded per worker
//! count: wall throughput (events/s), p50/p99 wall latency.
//!
//! Two invariants are asserted:
//!
//! - the real-clock prediction log is byte-identical to the DES log for
//!   every worker count (the dual-mode parity contract), and
//! - wall throughput increases monotonically from 1 through 4 workers
//!   (beyond that a single-core host may plateau; 8 is reported, not
//!   asserted).
//!
//! Results go to `BENCH_serve_realtime.json` at the repository root
//! (tracked). `--smoke` shrinks the campaign and sweep for CI.

use rcacopilot_bench::{banner, write_root_results, SPLIT_SEED, TRAIN_FRAC};
use rcacopilot_core::eval::PreparedDataset;
use rcacopilot_core::pipeline::{RcaCopilot, RcaCopilotConfig};
use rcacopilot_core::ContextSpec;
use rcacopilot_embed::{FastTextConfig, FeatureExtractor};
use rcacopilot_serve::{
    AdmissionConfig, ArrivalModel, ClockConfig, EngineConfig, IndexMode, RealClockConfig,
    ServeEngine, StreamConfig,
};
use rcacopilot_simcloud::noise::NoiseProfile;
use rcacopilot_simcloud::{generate_dataset, CampaignConfig, Incident, Topology};

fn smoke_dataset() -> rcacopilot_simcloud::IncidentDataset {
    generate_dataset(&CampaignConfig {
        seed: 5,
        topology: Topology::new(2, 4, 2, 2),
        noise: NoiseProfile {
            routine_logs: 2,
            herring_logs: 1,
            healthy_traces: 1,
            unrelated_failure: false,
            bystander_anomalies: 1,
        },
    })
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    banner(if smoke {
        "Real-clock serving: smoke sweep (workers 1, 2)"
    } else {
        "Real-clock serving: wall throughput, workers 1..8"
    });

    let dataset = if smoke {
        smoke_dataset()
    } else {
        rcacopilot_bench::standard_dataset()
    };
    let split = dataset.split(SPLIT_SEED, TRAIN_FRAC);
    let prepared = PreparedDataset::prepare(&dataset, &split);
    let spec = ContextSpec::default();
    let copilot_config = if smoke {
        RcaCopilotConfig {
            embedding: FastTextConfig {
                dim: 24,
                epochs: 8,
                lr: 0.4,
                features: FeatureExtractor {
                    buckets: 1 << 12,
                    ..FeatureExtractor::default()
                },
                ..FastTextConfig::default()
            },
            ..RcaCopilotConfig::default()
        }
    } else {
        RcaCopilotConfig::default()
    };
    let copilot = RcaCopilot::train(&prepared.train_examples(&spec), copilot_config);
    let test: Vec<Incident> = split
        .test
        .iter()
        .take(if smoke { 12 } else { 60 })
        .map(|&i| dataset.incidents()[i].clone())
        .collect();
    println!("train={} test={} (streamed)", split.train.len(), test.len());

    // The same saturating storm as the virtual sweep: arrivals land much
    // faster than one worker drains them, so extra threads always have
    // queued work to overlap.
    let stream = StreamConfig {
        seed: 17,
        arrivals: ArrivalModel::Bursty {
            mean_gap_secs: 10,
            burst_prob: 0.5,
            burst_len: 8,
            burst_gap_secs: 2,
        },
        reraise_prob: 0.05,
    };
    // ~250 modeled virtual seconds per event → a few ms of real sleep
    // each: long enough to dominate compute, short enough for CI.
    let real = RealClockConfig {
        nanos_per_virtual_sec: if smoke { 4_000 } else { 20_000 },
        pace_arrivals: false,
    };
    let config = |workers: usize, clock: ClockConfig| EngineConfig {
        workers,
        queue_capacity: 32,
        index_mode: IndexMode::Online,
        admission: AdmissionConfig::unbounded(),
        clock,
        ..EngineConfig::default()
    };

    // The DES baseline the real runs must reproduce byte for byte.
    let des =
        ServeEngine::new(copilot.clone(), config(1, ClockConfig::Virtual)).run(&test, &stream);

    let worker_counts: Vec<usize> = if smoke { vec![1, 2] } else { vec![1, 2, 4, 8] };
    let mut sweep_rows = Vec::new();
    let mut throughputs = Vec::new();
    println!(
        "\n{:>7} {:>12} {:>14} {:>10} {:>10}",
        "workers", "wall ms", "throughput/s", "p50 ms", "p99 ms"
    );
    for &workers in &worker_counts {
        let engine = ServeEngine::new(copilot.clone(), config(workers, ClockConfig::Real(real)));
        let out = engine.run(&test, &stream);
        assert_eq!(
            out.log, des.log,
            "real-clock log must be byte-identical to the DES log ({workers} workers)"
        );
        let wall = out.wall.expect("real runs measure wall time");
        println!(
            "{:>7} {:>12.1} {:>14.1} {:>10.2} {:>10.2}",
            workers,
            wall.wall_nanos as f64 / 1e6,
            wall.throughput_per_sec,
            wall.p50_ms,
            wall.p99_ms,
        );
        sweep_rows.push(serde_json::json!({
            "workers": workers,
            "wall_nanos": wall.wall_nanos,
            "throughput_per_sec": wall.throughput_per_sec,
            "latency_p50_ms": wall.p50_ms,
            "latency_p99_ms": wall.p99_ms,
            "completed": wall.completed,
        }));
        throughputs.push((workers, wall.throughput_per_sec));
    }
    println!("\nprediction log identical to the DES run for every worker count ✓");
    if !smoke {
        for pair in throughputs.windows(2) {
            let (lo_w, lo) = pair[0];
            let (hi_w, hi) = pair[1];
            if hi_w > 4 {
                continue; // beyond 4 threads a 1-core host may plateau
            }
            assert!(
                hi > lo,
                "wall throughput must increase {lo_w}->{hi_w} workers ({lo:.1} vs {hi:.1}/s)"
            );
        }
        println!("wall throughput increases monotonically from 1 to 4 workers ✓");
    }

    write_root_results(
        "BENCH_serve_realtime",
        &serde_json::json!({
            "stream": {
                "seed": stream.seed,
                "model": "bursty(mean_gap=10s, p=0.5, len=8, gap=2s)",
                "reraise_prob": stream.reraise_prob,
                "test_incidents": test.len(),
            },
            "clock": {
                "backend": "real",
                "nanos_per_virtual_sec": real.nanos_per_virtual_sec,
                "pace_arrivals": real.pace_arrivals,
            },
            "sweep": sweep_rows,
            "des_parity": "log byte-identical to virtual run for every worker count",
            "smoke": smoke,
        }),
    );
}
