//! Sharded retrieval-plane scaling sweep: index shards 1→8 under a
//! bursty alert storm.
//!
//! Two claims are benchmarked, both in deterministic virtual time:
//!
//! - **Correctness is free**: the engine's prediction log is
//!   byte-identical for every shard count (asserted by running the real
//!   engine at 1, 2 and 8 shards).
//! - **The lock split pays**: a discrete-event model of the *index
//!   plane* — every admitted event's retrieval op holding its category
//!   shard's lock, driven by a fixed requester pool — shows virtual
//!   throughput strictly increasing from 1 to 8 shards under the storm,
//!   because only same-shard operations serialize. The DES aggregates
//!   several tenant streams of the same storm onto the one shared index
//!   (a serving plane fronts many alert sources), which is exactly the
//!   regime where a single lock domain saturates.
//!
//! The DES deliberately isolates the index plane from the rest of the
//! pipeline: collection and summarization dominate end-to-end cost and
//! would mask lock contention entirely (which is also why the engine's
//! own worker sweep lives in `serve_throughput`, not here). Results go
//! to `BENCH_serve_shards.json` at the repository root (tracked).
//! `--smoke` runs a small campaign with a reduced matrix for CI.

use rcacopilot_bench::{banner, write_root_results, SPLIT_SEED, TRAIN_FRAC};
use rcacopilot_core::eval::PreparedDataset;
use rcacopilot_core::pipeline::{RcaCopilot, RcaCopilotConfig};
use rcacopilot_core::retrieval::shard_for_category;
use rcacopilot_core::ContextSpec;
use rcacopilot_embed::{FastTextConfig, FeatureExtractor};
use rcacopilot_serve::vmetrics::{simulate_shard_locks, ShardOp};
use rcacopilot_serve::{
    admission, cost, stream, AdmissionConfig, ArrivalModel, Disposition, EngineConfig, IndexMode,
    ServeEngine, StreamConfig,
};
use rcacopilot_simcloud::noise::NoiseProfile;
use rcacopilot_simcloud::{generate_dataset, CampaignConfig, Incident, Topology};

fn smoke_dataset() -> rcacopilot_simcloud::IncidentDataset {
    generate_dataset(&CampaignConfig {
        seed: 5,
        topology: Topology::new(2, 4, 2, 2),
        noise: NoiseProfile {
            routine_logs: 2,
            herring_logs: 1,
            healthy_traces: 1,
            unrelated_failure: false,
            bystander_anomalies: 1,
        },
    })
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    banner(if smoke {
        "Sharded retrieval plane: smoke run"
    } else {
        "Sharded retrieval plane: shards 1..8 under a bursty storm"
    });

    let dataset = if smoke {
        smoke_dataset()
    } else {
        rcacopilot_bench::standard_dataset()
    };
    let split = dataset.split(SPLIT_SEED, TRAIN_FRAC);
    let prepared = PreparedDataset::prepare(&dataset, &split);
    let spec = ContextSpec::default();
    let copilot_config = if smoke {
        RcaCopilotConfig {
            embedding: FastTextConfig {
                dim: 24,
                epochs: 8,
                lr: 0.4,
                features: FeatureExtractor {
                    buckets: 1 << 12,
                    ..FeatureExtractor::default()
                },
                ..FastTextConfig::default()
            },
            ..RcaCopilotConfig::default()
        }
    } else {
        RcaCopilotConfig::default()
    };
    let copilot = RcaCopilot::train(&prepared.train_examples(&spec), copilot_config);
    let test: Vec<Incident> = split
        .test
        .iter()
        .take(if smoke { 20 } else { usize::MAX })
        .map(|&i| dataset.incidents()[i].clone())
        .collect();
    println!("train={} test={} (streamed)", split.train.len(), test.len());

    // A dense storm: near-back-to-back bursts. (No monitor flapping —
    // re-raises advance the virtual clock between flaps, and this bench
    // wants the arrival window tight.)
    let storm = |seed: u64| StreamConfig {
        seed,
        arrivals: ArrivalModel::Bursty {
            mean_gap_secs: 2,
            burst_prob: 0.9,
            burst_len: 32,
            burst_gap_secs: 1,
        },
        reraise_prob: 0.0,
    };
    let stream_config = storm(23);

    // --- Claim 1: byte-identical logs across shard counts (real engine).
    let engine_shards: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 8] };
    let mut logs: Vec<String> = Vec::new();
    for &shards in engine_shards {
        let engine = ServeEngine::new(
            copilot.clone(),
            EngineConfig {
                workers: 4,
                queue_capacity: 32,
                shards,
                index_mode: IndexMode::Online,
                admission: AdmissionConfig::unbounded(),
                ..EngineConfig::default()
            },
        );
        logs.push(engine.run(&test, &stream_config).log);
    }
    for (i, log) in logs.iter().enumerate().skip(1) {
        assert_eq!(
            log, &logs[0],
            "{} shards diverged from the unsharded prediction log",
            engine_shards[i]
        );
    }
    println!(
        "prediction log identical across shard counts {engine_shards:?} ✓ ({} events)",
        logs[0].lines().count()
    );

    // --- Claim 2: shard-lock DES sweep, aggregating several tenant
    // streams of the same storm onto the one shared index plane. Each
    // tenant's stream is planned exactly like the engine plans it
    // (schedule → ex-ante costs → admission); the admitted retrieval
    // ops then contend on the shard locks together.
    const TENANTS: u64 = 8;
    let cost_seed = EngineConfig::default().cost_seed;
    // (arrival, retrieval cost, incident) per admitted event; stable
    // sort by arrival keeps tenant-order ties deterministic.
    let mut admitted: Vec<(u64, u64, usize)> = Vec::new();
    for tenant in 0..TENANTS {
        let events = stream::schedule(&test, &storm(23 + tenant));
        let costs: Vec<cost::StageCosts> = events
            .iter()
            .map(|e| cost::estimate(&test[e.incident_idx].alert, cost_seed))
            .collect();
        let inputs: Vec<admission::AdmissionInput> = events
            .iter()
            .zip(&costs)
            .map(|(e, c)| admission::AdmissionInput {
                at: e.at,
                severity: test[e.incident_idx].alert.severity,
                full_cost_secs: c.total(),
                degraded_cost_secs: c.degraded_total(),
            })
            .collect();
        let plan = admission::plan(&inputs, &AdmissionConfig::unbounded());
        for (i, (e, c)) in events.iter().zip(&costs).enumerate() {
            if plan.dispositions[i] != Disposition::Shed {
                admitted.push((e.at.as_secs(), c.retrieve_secs, e.incident_idx));
            }
        }
    }
    admitted.sort_by_key(|&(at, _, _)| at);

    const REQUESTERS: usize = 12;
    let shard_counts = [1usize, 2, 4, 8];
    let mut sweep_rows = Vec::new();
    println!(
        "\n{:>7} {:>16} {:>10} {:>10} {:>12} {:>11}",
        "shards", "throughput/h", "wait p50", "wait p99", "makespan s", "peak queue"
    );
    for &shards in &shard_counts {
        // One op per admitted event: the retrieval stage's virtual cost,
        // holding the lock of the shard its category routes to.
        let ops: Vec<ShardOp> = admitted
            .iter()
            .map(|&(at, retrieve_secs, incident_idx)| ShardOp {
                arrival_secs: at,
                service_secs: retrieve_secs,
                shard: shard_for_category(&test[incident_idx].category, shards),
            })
            .collect();
        let stats = simulate_shard_locks(&ops, REQUESTERS, shards);
        println!(
            "{:>7} {:>16.2} {:>10} {:>10} {:>12} {:>11}",
            shards,
            stats.throughput_per_hour(),
            stats.waits.percentile(0.50),
            stats.waits.percentile(0.99),
            stats.makespan_secs,
            stats.peak_queue_depth,
        );
        sweep_rows.push(serde_json::json!({
            "shards": shards,
            "requesters": REQUESTERS,
            "throughput_per_hour": stats.throughput_per_hour(),
            "wait_p50_secs": stats.waits.percentile(0.50),
            "wait_p99_secs": stats.waits.percentile(0.99),
            "makespan_secs": stats.makespan_secs,
            "peak_queue_depth": stats.peak_queue_depth,
            "completed": stats.completed,
        }));
    }
    let tp = |row: &serde_json::Value| match row
        .as_map()
        .unwrap()
        .iter()
        .find(|(k, _)| k == "throughput_per_hour")
        .map(|(_, v)| v)
    {
        Some(serde_json::Value::F64(f)) => *f,
        other => panic!("throughput field missing: {other:?}"),
    };
    for pair in sweep_rows.windows(2) {
        if smoke {
            assert!(
                tp(&pair[1]) >= tp(&pair[0]),
                "more shards must never lower index-plane throughput"
            );
        } else {
            assert!(
                tp(&pair[1]) > tp(&pair[0]),
                "index-plane throughput must increase strictly from 1 to 8 shards"
            );
        }
    }
    println!(
        "\nindex-plane throughput {} from 1 to 8 shards ✓",
        if smoke {
            "is monotone"
        } else {
            "increases strictly"
        }
    );

    write_root_results(
        "BENCH_serve_shards",
        &serde_json::json!({
            "stream": {
                "seed": stream_config.seed,
                "model": "bursty(mean_gap=2s, p=0.9, len=32, gap=1s), no re-raises",
                "reraise_prob": stream_config.reraise_prob,
                "tenant_streams": TENANTS,
                "test_incidents": test.len(),
                "aggregated_ops": admitted.len(),
            },
            "engine_log_identical_across_shards": engine_shards,
            "sweep": sweep_rows,
            "smoke": smoke,
        }),
    );
}
