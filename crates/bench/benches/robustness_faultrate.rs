//! Robustness sweep — pipeline accuracy under fault-injected telemetry.
//!
//! Not a paper table: this experiment measures how gracefully the
//! reproduction degrades when the collection stage runs against a
//! faulty telemetry plane. For each per-query fault rate from 0% to
//! 50%, the standard campaign is re-collected under a seeded
//! [`FaultPlan`], re-summarized, and re-evaluated end to end. Reported
//! per rate: micro/macro F1, mean collection completeness over the test
//! split, and how many test incidents carried at least one
//! `[data unavailable]` section. The 0% row doubles as a regression
//! check — it must match the fault-free pipeline exactly.

use rcacopilot_bench::{banner, standard_dataset, write_results, SPLIT_SEED, TRAIN_FRAC};
use rcacopilot_core::collection::CollectionStage;
use rcacopilot_core::eval::{evaluate_method, Method, PreparedDataset};
use rcacopilot_llm::ModelProfile;
use rcacopilot_simcloud::FaultPlan;

/// Seed of the fault-decision stream (independent of the campaign seed).
const FAULT_SEED: u64 = 97;

fn main() {
    banner("Robustness: accuracy under telemetry fault injection");
    println!("Generating the standard campaign once, then re-collecting it");
    println!("under per-query fault rates 0%..50% (fault seed {FAULT_SEED}).");
    let dataset = standard_dataset();
    let split = dataset.split(SPLIT_SEED, TRAIN_FRAC);

    println!(
        "\n{:<10} | {:>8} {:>8} | {:>12} | {:>14}",
        "FaultRate", "Micro", "Macro", "Completeness", "DegradedTests"
    );
    println!("{}", "-".repeat(64));
    let mut rows = Vec::new();
    for rate_pct in [0u32, 10, 20, 30, 40, 50] {
        let rate = f64::from(rate_pct) / 100.0;
        let stage =
            CollectionStage::standard_with_faults(Box::new(FaultPlan::uniform(FAULT_SEED, rate)));
        let prepared = PreparedDataset::prepare_with(&dataset, &split, &stage);
        let report = evaluate_method(&prepared, Method::RcaCopilot(ModelProfile::Gpt4), 1);
        let completeness = prepared.mean_test_completeness();
        let degraded_tests = prepared
            .test
            .iter()
            .filter(|&&i| prepared.incidents[i].completeness() < 1.0)
            .count();
        println!(
            "{:>9}% | {:>8.3} {:>8.3} | {:>12.3} | {:>8}/{:<5}",
            rate_pct,
            report.f1.micro_f1,
            report.f1.macro_f1,
            completeness,
            degraded_tests,
            prepared.test.len(),
        );
        rows.push(serde_json::json!({
            "fault_rate": rate,
            "micro_f1": report.f1.micro_f1,
            "macro_f1": report.f1.macro_f1,
            "mean_test_completeness": completeness,
            "degraded_test_incidents": degraded_tests,
            "test_incidents": prepared.test.len(),
        }));
    }
    write_results(
        "robustness_faultrate",
        &serde_json::json!({ "fault_seed": FAULT_SEED, "rows": rows }),
    );
}
