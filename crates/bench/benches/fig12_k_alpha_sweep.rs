//! Figure 12 — effectiveness of different K and alpha.
//!
//! Sweeps the number of CoT demonstrations (K) and the temporal decay
//! rate (alpha); the paper finds the best combination at K = 5, α = 0.3.

use rcacopilot_bench::{banner, standard_prepared, write_results};
use rcacopilot_core::ablation::fig12_sweep;
use rcacopilot_core::pipeline::RcaCopilotConfig;

fn main() {
    banner("Figure 12: Effectiveness of different K and alpha");
    let prepared = standard_prepared();
    let ks: Vec<usize> = (1..=10).collect();
    let alphas = [0.0, 0.1, 0.3, 0.5, 1.0];
    let points = fig12_sweep(&prepared, &RcaCopilotConfig::default(), &ks, &alphas);

    println!("Micro-F1 grid (rows = alpha, cols = K):");
    print!("{:>7}", "alpha\\K");
    for k in &ks {
        print!("{k:>7}");
    }
    println!();
    for &alpha in &alphas {
        print!("{alpha:>7.1}");
        for &k in &ks {
            let p = points
                .iter()
                .find(|p| p.k == k && (p.alpha - alpha).abs() < 1e-9)
                .expect("grid point");
            print!("{:>7.3}", p.micro_f1);
        }
        println!();
    }
    println!("\nMacro-F1 grid (rows = alpha, cols = K):");
    for &alpha in &alphas {
        print!("{alpha:>7.1}");
        for &k in &ks {
            let p = points
                .iter()
                .find(|p| p.k == k && (p.alpha - alpha).abs() < 1e-9)
                .expect("grid point");
            print!("{:>7.3}", p.macro_f1);
        }
        println!();
    }
    let best = points
        .iter()
        .max_by(|a, b| a.micro_f1.partial_cmp(&b.micro_f1).unwrap())
        .unwrap();
    println!(
        "\nBest combination: K = {}, alpha = {} (micro {:.3}); paper best: K = 5, alpha = 0.3.",
        best.k, best.alpha, best.micro_f1
    );
    write_results(
        "fig12_k_alpha_sweep",
        &serde_json::json!({
            "points": points.iter().map(|p| serde_json::json!({
                "k": p.k, "alpha": p.alpha, "micro_f1": p.micro_f1, "macro_f1": p.macro_f1,
            })).collect::<Vec<_>>(),
            "best": {"k": best.k, "alpha": best.alpha},
            "paper_best": {"k": 5, "alpha": 0.3},
        }),
    );
}
