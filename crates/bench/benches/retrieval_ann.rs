//! ANN retrieval sweep: corpus size × backend over scaled corpora.
//!
//! The exact bucketed scan is unbeatable at one service-year (653
//! incidents) but its cost is linear in corpus size, while the paper's
//! north star is production scale — millions of historical incidents.
//! This bench measures the crossover on [`rcacopilot_simcloud::scale`]
//! corpora that preserve the paper's long-tail category distribution
//! (Figure 3) and burst recurrence (Figure 2):
//!
//! - **build**: wall-clock index construction per backend;
//! - **memory**: the [`IndexStats`] resident-bytes estimate;
//! - **recall@K**: overlap of the backend's top-K entry ids with the
//!   exact backend's, over a fixed query set — degradation at low
//!   `ef_search` is *measured*, never silent;
//! - **latency**: wall-clock p50/p99 per retrieval query.
//!
//! Two invariants are asserted on every run: a saturating search width
//! (`ef_search` ≥ corpus) answers **byte-identically** to the exact
//! backend, and (full mode) the HNSW p99 beats the exact scan at the
//! largest corpus size. Results go to `BENCH_retrieval_ann.json` at the
//! repository root (tracked). `--smoke` runs reduced sizes for CI.

use rcacopilot_bench::{banner, write_root_results};
use rcacopilot_core::retrieval::{
    HistoricalEntry, HistoryView, OnlineHistoricalIndex, RetrievalBackend, RetrievalConfig,
};
use rcacopilot_simcloud::{corpus_stats, scaled_corpus, ScaleConfig};
use rcacopilot_telemetry::time::SimTime;
use std::time::Instant;

const K: usize = 5;
/// Temporal decay per day. The year-scale default (0.3) makes anything
/// older than ~a month invisible, which at a multi-year corpus reduces
/// retrieval to "whatever happened this week" — no index can help or
/// hurt. Production-scale corpora need a gentler decay; 0.02 keeps
/// months of history in play so the *spatial* structure the ANN tier
/// accelerates actually decides rankings.
const ALPHA: f64 = 0.02;
const MAX_CELL: usize = 256;
const QUERIES: usize = 200;
const DIM: usize = 16;

fn entries_for(corpus_size: usize, years: usize) -> Vec<HistoricalEntry> {
    let corpus = scaled_corpus(&ScaleConfig {
        seed: 42,
        years,
        incidents: corpus_size,
        dim: DIM,
    });
    let stats = corpus_stats(&corpus);
    println!(
        "corpus: {} incidents, {} categories, head share {:.4}, recurrence≤20d {:.3}",
        stats.incidents, stats.categories, stats.head_share, stats.recurrence_within_20d
    );
    corpus
        .into_iter()
        .enumerate()
        .map(|(id, inc)| HistoricalEntry {
            id,
            category: inc.category,
            summary: String::new(),
            at: inc.at,
            embedding: inc.embedding,
        })
        .collect()
}

/// Query embeddings drawn from the *tail* of the corpus: an incoming
/// incident is usually a recurrence of a recently active category
/// (paper Figure 2: 93.8% of recurrences within 20 days), so realistic
/// queries look like the newest history, not a uniform sample of years
/// past.
fn queries_for(entries: &[HistoricalEntry]) -> Vec<Vec<f32>> {
    let tail = entries.len().saturating_sub(entries.len() / 10);
    let window = &entries[tail..];
    let step = (window.len() / QUERIES).max(1);
    window
        .iter()
        .step_by(step)
        .take(QUERIES)
        .map(|e| e.embedding.clone())
        .collect()
}

struct Row {
    size: usize,
    backend: String,
    build_secs: f64,
    bytes: u64,
    recall: f64,
    recall_at_1: f64,
    p50_us: f64,
    p99_us: f64,
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx]
}

#[allow(clippy::too_many_arguments)]
fn measure(
    label: &str,
    size: usize,
    index: &OnlineHistoricalIndex,
    build_secs: f64,
    cfg: &RetrievalConfig,
    queries: &[Vec<f32>],
    at: SimTime,
    exact_ids: Option<&Vec<Vec<usize>>>,
) -> (Row, Vec<Vec<usize>>) {
    let snap = index.snapshot();
    let mut lat_us: Vec<f64> = Vec::with_capacity(queries.len());
    let mut ids: Vec<Vec<usize>> = Vec::with_capacity(queries.len());
    for q in queries {
        let t0 = Instant::now();
        let hits = HistoryView::top_k_diverse(&snap, q, at, cfg);
        lat_us.push(t0.elapsed().as_secs_f64() * 1e6);
        ids.push(hits.iter().map(|n| n.entry.id).collect());
    }
    let (recall, recall_at_1) = match exact_ids {
        None => (1.0, 1.0),
        Some(truth) => {
            let (mut hit, mut want, mut top_hit, mut top_want) = (0usize, 0usize, 0usize, 0usize);
            for (got, exp) in ids.iter().zip(truth) {
                want += exp.len();
                hit += exp.iter().filter(|id| got.contains(id)).count();
                if let Some(first) = exp.first() {
                    top_want += 1;
                    if got.first() == Some(first) {
                        top_hit += 1;
                    }
                }
            }
            (
                if want == 0 {
                    1.0
                } else {
                    hit as f64 / want as f64
                },
                if top_want == 0 {
                    1.0
                } else {
                    top_hit as f64 / top_want as f64
                },
            )
        }
    };
    lat_us.sort_by(|a, b| a.total_cmp(b));
    let stats = index.index_stats();
    let row = Row {
        size,
        backend: label.to_string(),
        build_secs,
        bytes: stats.bytes as u64,
        recall,
        recall_at_1,
        p50_us: percentile(&lat_us, 0.50),
        p99_us: percentile(&lat_us, 0.99),
    };
    println!(
        "{:>8} {:>14} build {:>7.2}s {:>9.1} MiB recall@{K} {:.4} recall@1 {:.4} p50 {:>9.1}µs p99 {:>9.1}µs",
        size,
        label,
        build_secs,
        stats.bytes as f64 / (1024.0 * 1024.0),
        recall,
        recall_at_1,
        row.p50_us,
        row.p99_us
    );
    (row, ids)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    banner(if smoke {
        "ANN retrieval tier: smoke run"
    } else {
        "ANN retrieval tier: corpus size × backend sweep"
    });

    let sizes: &[usize] = if smoke {
        &[2_000, 6_000]
    } else {
        &[100_000, 250_000]
    };
    let years = if smoke { 2 } else { 4 };
    let ef_sweep: &[usize] = &[16, 64, 256];
    let (m, efc) = (16usize, 64usize);
    let ivf = RetrievalBackend::Ivf {
        ncells: 128,
        nprobe: 8,
    };

    let mut rows: Vec<Row> = Vec::new();
    for &size in sizes {
        let entries = entries_for(size, years);
        let queries = queries_for(&entries);
        // Query just past the horizon: every entry is history.
        let at = SimTime::from_days((years as u64) * 364 + 1);

        let t0 = Instant::now();
        let exact = OnlineHistoricalIndex::warm(&entries, MAX_CELL);
        let exact_build = t0.elapsed().as_secs_f64();
        let cfg_exact = RetrievalConfig {
            k: K,
            alpha: ALPHA,
            ..RetrievalConfig::default()
        };
        let (row, exact_ids) = measure(
            "exact",
            size,
            &exact,
            exact_build,
            &cfg_exact,
            &queries,
            at,
            None,
        );
        rows.push(row);

        let t0 = Instant::now();
        let ivf_idx = OnlineHistoricalIndex::warm_with(&entries, MAX_CELL, ivf);
        let ivf_build = t0.elapsed().as_secs_f64();
        let cfg_ivf = RetrievalConfig {
            k: K,
            alpha: ALPHA,
            backend: ivf,
        };
        let (row, _) = measure(
            "ivf/128x8",
            size,
            &ivf_idx,
            ivf_build,
            &cfg_ivf,
            &queries,
            at,
            Some(&exact_ids),
        );
        rows.push(row);

        // One graph serves the whole ef_search sweep: the search width
        // is a query-time parameter, construction depends only on
        // (m, ef_construction, seed).
        let build_backend = RetrievalBackend::Hnsw {
            m,
            ef_construction: efc,
            ef_search: ef_sweep[0],
        };
        let t0 = Instant::now();
        let hnsw = OnlineHistoricalIndex::warm_with(&entries, MAX_CELL, build_backend);
        let hnsw_build = t0.elapsed().as_secs_f64();
        for &ef in ef_sweep {
            let cfg = RetrievalConfig {
                k: K,
                alpha: ALPHA,
                backend: RetrievalBackend::Hnsw {
                    m,
                    ef_construction: efc,
                    ef_search: ef,
                },
            };
            let (row, _) = measure(
                &format!("hnsw/ef{ef}"),
                size,
                &hnsw,
                hnsw_build,
                &cfg,
                &queries,
                at,
                Some(&exact_ids),
            );
            rows.push(row);
        }

        // Byte-identity at saturation: ef_search ≥ corpus size forces
        // 100% candidate recall, and the exact re-rank must then answer
        // *identically* to the exact backend — same entries, same order,
        // same similarities.
        let cfg_sat = RetrievalConfig {
            k: K,
            alpha: ALPHA,
            backend: RetrievalBackend::Hnsw {
                m,
                ef_construction: efc,
                ef_search: usize::MAX,
            },
        };
        let (exact_snap, hnsw_snap) = (exact.snapshot(), hnsw.snapshot());
        for q in queries.iter().take(25) {
            assert_eq!(
                HistoryView::top_k_diverse(&exact_snap, q, at, &cfg_exact),
                HistoryView::top_k_diverse(&hnsw_snap, q, at, &cfg_sat),
                "saturated HNSW must answer byte-identically to exact"
            );
        }
        println!("{size:>8} saturated HNSW ≡ exact ✓");
    }

    // The tentpole claim: at the largest corpus the graph walk beats the
    // linear-in-size exact scan at the tail.
    let largest = *sizes.last().expect("at least one size");
    let exact_p99 = rows
        .iter()
        .find(|r| r.size == largest && r.backend == "exact")
        .expect("exact row")
        .p99_us;
    let hnsw_p99 = rows
        .iter()
        .find(|r| r.size == largest && r.backend == "hnsw/ef64")
        .expect("hnsw row")
        .p99_us;
    if smoke {
        println!("\nsmoke: skipping p99 crossover assertion (sizes too small)");
    } else {
        assert!(
            hnsw_p99 < exact_p99,
            "HNSW p99 ({hnsw_p99:.1}µs) must beat exact p99 ({exact_p99:.1}µs) at {largest}"
        );
        println!(
            "\nHNSW ef=64 p99 {hnsw_p99:.1}µs beats exact p99 {exact_p99:.1}µs at {largest} ✓"
        );
    }

    let json_rows: Vec<serde_json::Value> = rows
        .iter()
        .map(|r| {
            serde_json::json!({
                "size": r.size,
                "backend": r.backend.clone(),
                "build_secs": r.build_secs,
                "bytes": r.bytes,
                "recall_at_k": r.recall,
                "recall_at_1": r.recall_at_1,
                "p50_us": r.p50_us,
                "p99_us": r.p99_us,
            })
        })
        .collect();
    write_root_results(
        "BENCH_retrieval_ann",
        &serde_json::json!({
            "config": {
                "k": K,
                "alpha": ALPHA,
                "max_cell": MAX_CELL,
                "queries": QUERIES,
                "dim": DIM,
                "years": years,
                "hnsw": { "m": m, "ef_construction": efc, "ef_sweep": ef_sweep },
                "ivf": { "ncells": 128, "nprobe": 8 },
            },
            "sweep": json_rows,
            "smoke": smoke,
        }),
    );
}
