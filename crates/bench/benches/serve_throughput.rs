//! Serving-engine throughput sweep: worker counts 1→8 against a
//! saturating bursty alert stream.
//!
//! All performance numbers are *virtual-time*: the engine's admission
//! plan and per-stage costs live on the stream's own clock, and the
//! worker pool is modeled by a deterministic discrete-event simulation.
//! That makes the sweep exactly reproducible (and meaningful even on a
//! single-core CI runner). Two invariants are asserted:
//!
//! - the prediction log is byte-identical for every worker count, and
//! - under the saturating (admission-disabled) stream, virtual
//!   throughput strictly increases from 1 to 8 workers.
//!
//! A second, admission-enabled "storm" run reports shedding and
//! degradation. Results go to `BENCH_serve.json` at the repository root
//! (tracked), not `target/bench-results/`. `--smoke` runs a single
//! worker over a small campaign for CI.

use rcacopilot_bench::{banner, write_root_results, SPLIT_SEED, TRAIN_FRAC};
use rcacopilot_core::eval::PreparedDataset;
use rcacopilot_core::pipeline::{RcaCopilot, RcaCopilotConfig};
use rcacopilot_core::ContextSpec;
use rcacopilot_embed::{FastTextConfig, FeatureExtractor};
use rcacopilot_serve::{
    AdmissionConfig, ArrivalModel, EngineConfig, IndexMode, ServeEngine, StreamConfig,
};
use rcacopilot_simcloud::noise::NoiseProfile;
use rcacopilot_simcloud::{generate_dataset, CampaignConfig, Incident, Topology};

fn smoke_dataset() -> rcacopilot_simcloud::IncidentDataset {
    generate_dataset(&CampaignConfig {
        seed: 5,
        topology: Topology::new(2, 4, 2, 2),
        noise: NoiseProfile {
            routine_logs: 2,
            herring_logs: 1,
            healthy_traces: 1,
            unrelated_failure: false,
            bystander_anomalies: 1,
        },
    })
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    banner(if smoke {
        "Serving engine: smoke run (1 worker)"
    } else {
        "Serving engine: virtual throughput, workers 1..8"
    });

    let dataset = if smoke {
        smoke_dataset()
    } else {
        rcacopilot_bench::standard_dataset()
    };
    let split = dataset.split(SPLIT_SEED, TRAIN_FRAC);
    let prepared = PreparedDataset::prepare(&dataset, &split);
    let spec = ContextSpec::default();
    let copilot_config = if smoke {
        RcaCopilotConfig {
            embedding: FastTextConfig {
                dim: 24,
                epochs: 8,
                lr: 0.4,
                features: FeatureExtractor {
                    buckets: 1 << 12,
                    ..FeatureExtractor::default()
                },
                ..FastTextConfig::default()
            },
            ..RcaCopilotConfig::default()
        }
    } else {
        RcaCopilotConfig::default()
    };
    let copilot = RcaCopilot::train(&prepared.train_examples(&spec), copilot_config);
    let test: Vec<Incident> = split
        .test
        .iter()
        .take(if smoke { 20 } else { usize::MAX })
        .map(|&i| dataset.incidents()[i].clone())
        .collect();
    println!("train={} test={} (streamed)", split.train.len(), test.len());

    // A saturating storm: the whole stream arrives in a window much
    // shorter than the total service demand, so even eight workers stay
    // busy and virtual throughput keeps scaling through the sweep.
    let stream = StreamConfig {
        seed: 17,
        arrivals: ArrivalModel::Bursty {
            mean_gap_secs: 10,
            burst_prob: 0.5,
            burst_len: 8,
            burst_gap_secs: 2,
        },
        reraise_prob: 0.05,
    };

    let worker_counts: Vec<usize> = if smoke { vec![1] } else { (1..=8).collect() };
    let mut sweep_rows = Vec::new();
    let mut logs: Vec<String> = Vec::new();
    println!(
        "\n{:>7} {:>16} {:>10} {:>10} {:>12} {:>11}",
        "workers", "throughput/h", "p50 s", "p99 s", "makespan s", "peak queue"
    );
    for &workers in &worker_counts {
        let engine = ServeEngine::new(
            copilot.clone(),
            EngineConfig {
                workers,
                queue_capacity: 32,
                index_mode: IndexMode::Online,
                admission: AdmissionConfig::unbounded(),
                ..EngineConfig::default()
            },
        );
        let out = engine.run(&test, &stream);
        let exec = &out.exec;
        println!(
            "{:>7} {:>16.2} {:>10} {:>10} {:>12} {:>11}",
            workers,
            exec.throughput_per_hour(),
            exec.latencies.percentile(0.50),
            exec.latencies.percentile(0.99),
            exec.makespan_secs,
            exec.peak_queue_depth,
        );
        sweep_rows.push(serde_json::json!({
            "workers": workers,
            "throughput_per_hour": exec.throughput_per_hour(),
            "latency_p50_secs": exec.latencies.percentile(0.50),
            "latency_p99_secs": exec.latencies.percentile(0.99),
            "wait_p99_secs": exec.waits.percentile(0.99),
            "makespan_secs": exec.makespan_secs,
            "peak_queue_depth": exec.peak_queue_depth,
            "completed": exec.completed,
        }));
        logs.push(out.log);
    }
    for log in &logs[1..] {
        assert_eq!(
            log, &logs[0],
            "prediction log must be identical for every worker count"
        );
    }
    if !smoke {
        for pair in sweep_rows.windows(2) {
            let lo = pair[0].as_map().unwrap();
            let hi = pair[1].as_map().unwrap();
            let tp = |m: &[(String, serde_json::Value)]| match m
                .iter()
                .find(|(k, _)| k == "throughput_per_hour")
                .map(|(_, v)| v)
            {
                Some(serde_json::Value::F64(f)) => *f,
                other => panic!("throughput field missing: {other:?}"),
            };
            assert!(
                tp(hi) > tp(lo),
                "virtual throughput must increase monotonically with workers"
            );
        }
        println!("\nthroughput increases strictly monotonically from 1 to 8 workers ✓");
    }
    println!("prediction log identical across all worker counts ✓");

    // Storm run with admission control engaged.
    let storm_engine = ServeEngine::new(
        copilot.clone(),
        EngineConfig {
            workers: if smoke { 1 } else { 4 },
            queue_capacity: 32,
            index_mode: IndexMode::Online,
            admission: AdmissionConfig {
                capacity_secs: 1_800,
                ..AdmissionConfig::default()
            },
            ..EngineConfig::default()
        },
    );
    let storm = storm_engine.run(&test, &stream);
    println!("\nstorm run with admission control (capacity 1800 service-seconds):");
    println!("{}", serde_json::to_string_pretty(&storm.report).unwrap());

    write_root_results(
        "BENCH_serve",
        &serde_json::json!({
            "stream": {
                "seed": stream.seed,
                "model": "bursty(mean_gap=10s, p=0.5, len=8, gap=2s)",
                "reraise_prob": stream.reraise_prob,
                "test_incidents": test.len(),
            },
            "sweep": sweep_rows,
            "storm": storm.report,
            "smoke": smoke,
        }),
    );
}
