//! Figure 3 — distribution of incident category frequency.
//!
//! The paper's key numbers: 653 incidents, 163 categories, and incidents
//! with a new root cause category account for 24.96%.

use rcacopilot_bench::{banner, standard_dataset, write_results};

fn main() {
    banner("Figure 3: Distribution of incident category frequency");
    let stats = standard_dataset().stats();
    println!("Total incidents:        {} (paper: 653)", stats.total);
    println!("Distinct categories:    {} (paper: 163)", stats.categories);
    println!(
        "New-category incidents: {} = {:.2}% (paper: 163 = 24.96%)",
        stats.new_category_incidents,
        stats.new_category_share * 100.0
    );
    println!("\nTop 20 categories by frequency:");
    println!("{:>4} {:<34} {:>6}", "#", "category", "count");
    for (i, (cat, count)) in stats.category_counts.iter().take(20).enumerate() {
        println!("{:>4} {:<34} {:>6}", i + 1, cat, count);
    }
    let singles = stats
        .category_counts
        .iter()
        .filter(|(_, c)| *c == 1)
        .count();
    println!("\nCategories occurring exactly once: {singles}");
    assert_eq!(stats.total, 653);
    assert_eq!(stats.categories, 163);
    assert!((stats.new_category_share - 0.2496).abs() < 0.001);
    write_results(
        "fig3_longtail",
        &serde_json::json!({
            "total": stats.total,
            "categories": stats.categories,
            "new_category_share": stats.new_category_share,
            "paper_new_category_share": 0.2496,
            "category_counts": stats.category_counts.iter().take(30).map(|(c, n)| serde_json::json!({"category": c, "count": n})).collect::<Vec<_>>(),
            "singleton_categories": singles,
        }),
    );
}
