//! Plan-cache policy comparison: exact vs shingle-similarity memoization
//! under a flapping-monitor alert storm.
//!
//! The inference plan's summary cache is keyed by a pluggable
//! `MemoPolicy`. The default `ExactMemo` hashes the raw diagnostic bytes:
//! it only collapses *byte-identical* re-raises (a monitor flapping on
//! exactly the same view of an incident). The near-duplicate
//! `ShingleMemo` policy sketches entity-masked word shingles, so alerts
//! that differ only in machine names, timestamps and counters — the
//! signature of one fault re-raised from many hosts — share a
//! summary-cache entry.
//!
//! The storm is scheduled by the serving plane's own flapping-monitor
//! stream model (`reraise_prob`), and every *odd* re-raise of an incident
//! is entity-churned: its digits are rotated, which changes the bytes of
//! machine names, timestamps and counters while preserving the
//! entity-masked text (the churn is only applied when `mask_entities`
//! confirms the masked form is unchanged, else the re-raise stays
//! byte-identical). Even re-raises stay byte-identical — the same-host
//! flap both policies collapse.
//!
//! The shingle policy's summary hit rate must be *strictly* higher: it
//! keeps every exact hit and adds the churned re-raises. Results go to
//! `BENCH_plan_cache.json` at the repository root (tracked). `--smoke`
//! runs a small campaign for CI.

use rcacopilot_bench::{banner, write_root_results, SPLIT_SEED, TRAIN_FRAC};
use rcacopilot_core::collection::CollectionStage;
use rcacopilot_core::memo::{ExactMemo, MemoPolicy, ShingleMemo};
use rcacopilot_core::plan::{memoized_summary, PlanCaches};
use rcacopilot_llm::summarize::Summarizer;
use rcacopilot_serve::{stream, ArrivalModel, StreamConfig};
use rcacopilot_simcloud::noise::NoiseProfile;
use rcacopilot_simcloud::{generate_dataset, CampaignConfig, Incident, Topology};
use rcacopilot_textkit::mask_entities;
use std::collections::HashMap;

fn smoke_dataset() -> rcacopilot_simcloud::IncidentDataset {
    generate_dataset(&CampaignConfig {
        seed: 5,
        topology: Topology::new(2, 4, 2, 2),
        noise: NoiseProfile {
            routine_logs: 2,
            herring_logs: 1,
            healthy_traces: 1,
            unrelated_failure: false,
            bystander_anomalies: 1,
        },
    })
}

/// The "same fault, different host" view of a diagnostic text: rotates
/// the digits of every token the entity mask would hide (machine names,
/// timestamps, trace ids), renaming the hosts and shifting the clock
/// while leaving counts, build numbers and prose untouched. A token is
/// rotated only when the rotation provably preserves its masked form, so
/// the churned text is a near-duplicate *by construction* — different
/// bytes, same entity-masked shape.
fn churn(text: &str, ordinal: usize) -> String {
    let step = (ordinal % 9 + 1) as u8;
    let rotate = |tok: &str| -> String {
        tok.chars()
            .map(|c| {
                if c.is_ascii_digit() {
                    char::from(b'0' + (c as u8 - b'0' + step) % 10)
                } else {
                    c
                }
            })
            .collect()
    };
    let mut out = String::with_capacity(text.len());
    let mut token = String::new();
    let flush = |out: &mut String, token: &mut String| {
        if !token.is_empty() {
            let masked = mask_entities(token);
            let rotated = rotate(token);
            if masked != *token && mask_entities(&rotated) == masked {
                out.push_str(&rotated);
            } else {
                out.push_str(token);
            }
            token.clear();
        }
    };
    for c in text.chars() {
        if c.is_whitespace() {
            flush(&mut out, &mut token);
            out.push(c);
        } else {
            token.push(c);
        }
    }
    flush(&mut out, &mut token);
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    banner("Plan caches: exact vs shingle memo policy on a flapping storm");

    let dataset = if smoke {
        smoke_dataset()
    } else {
        rcacopilot_bench::standard_dataset()
    };
    let split = dataset.split(SPLIT_SEED, TRAIN_FRAC);
    let test: Vec<Incident> = split
        .test
        .iter()
        .take(if smoke { 40 } else { usize::MAX })
        .map(|&i| dataset.incidents()[i].clone())
        .collect();

    // A flapping-monitor storm: tight bursts plus a high re-raise
    // probability, scheduled by the serving plane's stream model.
    let config = StreamConfig {
        seed: 31,
        arrivals: ArrivalModel::Bursty {
            mean_gap_secs: 120,
            burst_prob: 0.6,
            burst_len: 8,
            burst_gap_secs: 3,
        },
        reraise_prob: 0.5,
    };
    let events = stream::schedule(&test, &config);

    // Collect each incident once, then expand the storm into the raw
    // diagnostic text each arrival would hand the summarize stage.
    let stage = CollectionStage::standard();
    let raw: Vec<String> = test
        .iter()
        .map(|inc| {
            stage
                .collect(inc)
                .expect("fault-free collection succeeds")
                .diagnostic_text()
        })
        .collect();
    let mut seen: HashMap<usize, usize> = HashMap::new();
    let mut churned = 0usize;
    let arrivals: Vec<String> = events
        .iter()
        .map(|e| {
            let n = seen.entry(e.incident_idx).or_insert(0);
            let text = if *n % 2 == 1 {
                churn(&raw[e.incident_idx], *n)
            } else {
                raw[e.incident_idx].clone()
            };
            if text != raw[e.incident_idx] {
                churned += 1;
            }
            *n += 1;
            text
        })
        .collect();
    println!(
        "test={} arrivals={} re-raised={} entity-churned={}",
        test.len(),
        arrivals.len(),
        arrivals.len() - test.len(),
        churned,
    );
    assert!(
        churned > 0,
        "the storm must contain at least one entity-churned re-raise"
    );

    let summarizer = Summarizer::default();
    let run = |policy: &dyn MemoPolicy| {
        let caches = PlanCaches::new(1);
        for text in &arrivals {
            memoized_summary(&summarizer, text, policy, &caches.summary);
        }
        caches.summary.stats()
    };

    let (exact_hits, exact_misses) = run(&ExactMemo);
    let (shingle_hits, shingle_misses) = run(&ShingleMemo::default());
    let rate = |hits: u64, misses: u64| hits as f64 / (hits + misses).max(1) as f64;
    let exact_rate = rate(exact_hits, exact_misses);
    let shingle_rate = rate(shingle_hits, shingle_misses);

    println!(
        "\n{:>10} {:>8} {:>8} {:>10}",
        "policy", "hits", "misses", "hit rate"
    );
    println!(
        "{:>10} {:>8} {:>8} {:>9.1}%",
        "exact",
        exact_hits,
        exact_misses,
        exact_rate * 100.0
    );
    println!(
        "{:>10} {:>8} {:>8} {:>9.1}%",
        "shingle",
        shingle_hits,
        shingle_misses,
        shingle_rate * 100.0
    );

    assert_eq!(
        exact_hits + exact_misses,
        shingle_hits + shingle_misses,
        "both policies see the same stream of summarize calls"
    );
    assert!(
        shingle_rate > exact_rate,
        "shingle near-duplicate caching must beat exact hashing on a \
         flapping storm: shingle {shingle_rate:.3} vs exact {exact_rate:.3}"
    );
    println!("\nshingle hit rate strictly beats exact on the storm workload ✓");

    write_root_results(
        "BENCH_plan_cache",
        &serde_json::json!({
            "stream": {
                "seed": config.seed,
                "model": "bursty(mean_gap=120s, p=0.6, len=8, gap=3s)",
                "reraise_prob": config.reraise_prob,
                "test_incidents": test.len(),
                "arrivals": arrivals.len(),
                "entity_churned": churned,
            },
            "summary_cache": {
                "exact": {
                    "hits": exact_hits,
                    "misses": exact_misses,
                    "hit_rate": exact_rate,
                },
                "shingle": {
                    "hits": shingle_hits,
                    "misses": shingle_misses,
                    "hit_rate": shingle_rate,
                },
            },
            "smoke": smoke,
        }),
    );
}
