//! Table 1 — exemplar incident categories of the simulated year.
//!
//! Prints the ten head categories with severity, scope, occurrence count,
//! symptom, and cause, and checks the generated dataset's occurrence
//! counts against the catalog targets (which are the paper's numbers).

use rcacopilot_bench::{banner, standard_dataset, write_results};
use std::collections::BTreeMap;

/// Paper Table 1 rows: (category, severity, scope, occurrences).
const PAPER: &[(&str, u8, &str, usize)] = &[
    ("AuthCertIssue", 1, "Forest", 3),
    ("HubPortExhaustion", 2, "Machine", 27),
    ("DeliveryHang", 2, "Forest", 6),
    ("CodeRegressionSmtpAuth", 2, "Forest", 15),
    ("CertForBogusTenants", 2, "Forest", 11),
    ("MaliciousAttackPowerShellBlob", 1, "Forest", 2),
    ("UseRouteResolution", 2, "Forest", 9),
    ("FullDisk", 2, "Forest", 2),
    ("InvalidJournaling", 2, "Forest", 11),
    ("DispatcherTaskCancelled", 3, "Forest", 22),
];

fn main() {
    banner("Table 1: Examples of cloud incidents in different root cause categories");
    let dataset = standard_dataset();
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for inc in dataset.incidents() {
        *counts.entry(inc.category.as_str()).or_insert(0) += 1;
    }

    println!(
        "{:<30} | {:>4} | {:>7} | {:>6} {:>6}",
        "Category", "Sev", "Scope", "Occur", "paper"
    );
    println!("{}", "-".repeat(66));
    let mut rows = Vec::new();
    for (name, sev, scope, paper_occ) in PAPER {
        let spec = dataset.catalog().by_name(name).expect("head category");
        let measured = counts.get(name).copied().unwrap_or(0);
        println!(
            "{:<30} | {:>4} | {:>7} | {:>6} {:>6}",
            name,
            spec.severity.level(),
            if spec.machine_scoped {
                "Machine"
            } else {
                "Forest"
            },
            measured,
            paper_occ
        );
        println!("    symptom: {}", spec.symptom);
        println!("    cause:   {}", spec.cause);
        assert_eq!(spec.severity.level(), *sev, "{name}: severity drift");
        assert_eq!(
            spec.machine_scoped,
            *scope == "Machine",
            "{name}: scope drift"
        );
        assert_eq!(measured, *paper_occ, "{name}: occurrence drift");
        rows.push(serde_json::json!({
            "category": name, "severity": sev, "scope": scope,
            "occurrences": measured, "paper_occurrences": paper_occ,
            "symptom": spec.symptom, "cause": spec.cause,
        }));
    }
    println!("\nAll ten head categories match the paper's Table 1 exactly.");
    write_results("table1_categories", &serde_json::json!({ "rows": rows }));
}
