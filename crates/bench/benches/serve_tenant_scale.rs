//! Tenant-sharded runtime scale sweep: a heavy-tailed (Zipf) fleet of
//! 1000+ tenants pushing ≥1M events through the shared serving plane,
//! swept over 1→8 tenant shards.
//!
//! Three claims, checked on every sweep point:
//!
//! - **Determinism is exact**: the merged transcript and every
//!   per-tenant prediction log are byte-identical at every shard count —
//!   sharding is a pure re-scheduling of the same deterministic work.
//! - **Solo parity holds at scale**: spot-checked tenants (the heaviest,
//!   a mid-fleet storm, the tail) match solo baselines byte for byte
//!   inside a 1000-tenant merged run, at every shard count.
//! - **Merged throughput is monotone 1→8 shards**: asserted on the
//!   deterministic shard-scale model ([`simulate_tenant_shards`]), which
//!   schedules the run's actual ex-ante job costs over K single-worker
//!   shards in virtual time. (Wall seconds are recorded alongside for
//!   reference; on a single-core host they measure the constant total
//!   work, not the parallel speedup the virtual model isolates.)
//!
//! Results go to `BENCH_serve_tenants_scale.json` at the repository root
//! (tracked). `--smoke` runs a reduced fleet for CI.

use rcacopilot_bench::{banner, write_root_results, SPLIT_SEED, TRAIN_FRAC};
use rcacopilot_core::eval::PreparedDataset;
use rcacopilot_core::pipeline::{RcaCopilot, RcaCopilotConfig};
use rcacopilot_core::ContextSpec;
use rcacopilot_embed::{FastTextConfig, FeatureExtractor};
use rcacopilot_serve::{
    simulate_tenant_shards, AdmissionConfig, DrrJob, EngineConfig, EventOutcome, IndexMode,
    MultiTenantConfig, MultiTenantEngine, MultiTenantOutcome, ServeEngine,
};
use rcacopilot_simcloud::noise::NoiseProfile;
use rcacopilot_simcloud::{
    generate_dataset, replicate_partition, zipf_fleet, zipf_volumes, CampaignConfig, Incident,
    TenantFleetConfig, Topology,
};
use serde_json::json;
use std::sync::Arc;
use std::time::Instant;

const SHARD_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn smoke_dataset() -> rcacopilot_simcloud::IncidentDataset {
    generate_dataset(&CampaignConfig {
        seed: 5,
        topology: Topology::new(2, 4, 2, 2),
        noise: NoiseProfile {
            routine_logs: 2,
            herring_logs: 1,
            healthy_traces: 1,
            unrelated_failure: false,
            bystander_anomalies: 1,
        },
    })
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    banner(if smoke {
        "Tenant-sharded runtime: smoke sweep"
    } else {
        "Tenant-sharded runtime: 1024-tenant Zipf fleet, 1M+ events"
    });

    let dataset = if smoke {
        smoke_dataset()
    } else {
        rcacopilot_bench::standard_dataset()
    };
    let split = dataset.split(SPLIT_SEED, TRAIN_FRAC);
    let prepared = PreparedDataset::prepare(&dataset, &split);
    let copilot_config = if smoke {
        RcaCopilotConfig {
            embedding: FastTextConfig {
                dim: 24,
                epochs: 8,
                lr: 0.4,
                features: FeatureExtractor {
                    buckets: 1 << 12,
                    ..FeatureExtractor::default()
                },
                ..FastTextConfig::default()
            },
            ..RcaCopilotConfig::default()
        }
    } else {
        RcaCopilotConfig::default()
    };
    let copilot = Arc::new(RcaCopilot::train(
        &prepared.train_examples(&ContextSpec::default()),
        copilot_config,
    ));
    let take = if smoke { 24 } else { 96 };
    let base_incidents: Vec<Incident> = split
        .test
        .iter()
        .take(take)
        .map(|&i| dataset.incidents()[i].clone())
        .collect();

    // The fleet: heavy-tailed weights and volumes (Zipf s = 1.1, head
    // share capped at 1/16 so an 8-way shard split can always balance),
    // ~5% of tenants in a flapping storm. Event streams cycle the base
    // incident pool with a per-tenant offset, so within-tenant repeats
    // exercise the namespaced memo caches the way production recurrence
    // does (Fig. 2 of the paper: >50% of incidents recur).
    let fleet_cfg = TenantFleetConfig {
        tenants: if smoke { 32 } else { 1024 },
        total_events: if smoke { 2_048 } else { 1 << 20 },
        ..TenantFleetConfig::default()
    };
    let fleet = zipf_fleet(&fleet_cfg);
    let volumes = zipf_volumes(&fleet_cfg);
    let parts = replicate_partition(&base_incidents, &fleet, &volumes);
    let total_events: usize = volumes.iter().sum();
    println!(
        "fleet: {} tenants, {} events (head tenant {}, tail tenant {})",
        fleet.len(),
        total_events,
        volumes[0],
        volumes[volumes.len() - 1],
    );

    // Frozen index: the online `need` watermark is quadratic in stream
    // length and the fleet's point is raw serving throughput, not
    // incremental index freshness. Admission is unbounded so every event
    // executes and the throughput sweep counts constant work.
    let config = |shards: usize| MultiTenantConfig {
        base: EngineConfig {
            index_mode: IndexMode::Frozen,
            admission: AdmissionConfig::unbounded(),
            ..EngineConfig::default()
        },
        shards,
        tenant_workers: Some(1),
        ..MultiTenantConfig::default()
    };

    // Solo-parity spot checks: the heaviest tenant, the first storm
    // tenant, a mid-fleet tenant, and the tail.
    let storm_slot = fleet
        .iter()
        .position(|p| p.total_fault_per_mille() > 0)
        .unwrap_or(1);
    let mut spot_slots = vec![0, storm_slot, fleet.len() / 2, fleet.len() - 1];
    spot_slots.dedup();
    let total_weight: u32 = fleet.iter().map(|p| p.weight.max(1)).sum();

    let mut baseline: Option<MultiTenantOutcome> = None;
    let mut wall_rows = Vec::new();
    for &shards in &SHARD_SWEEP {
        let plane =
            MultiTenantEngine::from_plans_shared(Arc::clone(&copilot), config(shards), &fleet)
                .expect("generated fleet is well-formed");
        let started = Instant::now();
        let out = plane.run(&parts).expect("one slice per tenant");
        let wall_secs = started.elapsed().as_secs_f64();
        let events = out.log.lines().count();
        println!(
            "shards={shards}: {events} merged log lines, horizon {}s, wall {:.1}s \
             ({:.0} events/s)",
            out.horizon_secs,
            wall_secs,
            events as f64 / wall_secs.max(1e-9),
        );

        // Determinism across shard counts: the merged transcript and
        // every per-tenant log must match the 1-shard run byte for byte.
        if let Some(base) = &baseline {
            assert_eq!(
                out.log, base.log,
                "{shards}-shard transcript diverged from the sequential run"
            );
            for (a, b) in out.tenants.iter().zip(&base.tenants) {
                assert_eq!(
                    a.outcome.log, b.outcome.log,
                    "tenant {:?} diverged at {shards} shards",
                    a.tenant
                );
            }
        }

        // Solo parity inside the merged run, at this shard count.
        for &slot in &spot_slots {
            let spec = &plane.specs()[slot];
            let solo_cfg = MultiTenantEngine::tenant_engine_config(
                &config(shards).base,
                spec,
                total_weight,
                None,
            );
            let solo =
                ServeEngine::shared(Arc::clone(&copilot), solo_cfg).run(&parts[slot], &spec.stream);
            assert_eq!(
                out.tenants[slot].outcome.log, solo.log,
                "tenant {:?} (slot {slot}) diverged from its solo baseline at \
                 {shards} shards",
                spec.tenant
            );
        }

        wall_rows.push(json!({
            "shards": shards,
            "wall_secs": wall_secs,
            "events_per_sec": events as f64 / wall_secs.max(1e-9),
        }));
        if baseline.is_none() {
            baseline = Some(out);
        }
    }
    let baseline = baseline.expect("sweep is non-empty");
    println!(
        "parity: merged + per-tenant logs byte-identical across shards {SHARD_SWEEP:?}; \
         solo baselines matched for slots {spot_slots:?}"
    );

    // The shard-scale model: replay the run's ex-ante job costs through
    // K single-worker shards in virtual time. This is the claim the
    // sweep must certify — merged throughput is monotone 1→8 shards —
    // measured deterministically, independent of host core count.
    let service_of = |slot: usize, r: &rcacopilot_serve::EventRecord| -> Option<u64> {
        let c = rcacopilot_serve::cost::estimate(
            &parts[slot][r.incident_idx].alert,
            config(1).base.cost_seed,
        );
        match &r.outcome {
            EventOutcome::Shed { .. } => None,
            EventOutcome::Predicted { degraded: true, .. } => Some(c.degraded_total()),
            EventOutcome::Predicted { .. } => Some(c.total()),
            EventOutcome::Failed { reason } if reason.contains("circuit open") => None,
            EventOutcome::Failed { .. } => Some(c.total()),
        }
    };
    let mut keyed: Vec<(u64, usize, u64)> = Vec::new();
    for (slot, run) in baseline.tenants.iter().enumerate() {
        for r in &run.outcome.records {
            if let Some(service) = service_of(slot, r) {
                keyed.push((r.at.as_secs(), slot, service));
            }
        }
    }
    keyed.sort_unstable();
    let jobs: Vec<DrrJob> = keyed
        .iter()
        .map(|&(arrival_secs, tenant_slot, service_secs)| DrrJob {
            tenant_slot,
            arrival_secs,
            service_secs,
        })
        .collect();
    let mut virtual_rows = Vec::new();
    let mut last_throughput = 0.0f64;
    println!(
        "\n{:>7} {:>10} {:>14} {:>16}",
        "shards", "completed", "makespan_s", "events_per_hour"
    );
    for &shards in &SHARD_SWEEP {
        let stats = simulate_tenant_shards(&jobs, shards);
        let throughput = stats.throughput_per_hour();
        println!(
            "{:>7} {:>10} {:>14} {:>16.1}",
            shards, stats.completed, stats.merged_makespan_secs, throughput
        );
        assert!(
            throughput >= last_throughput,
            "merged throughput regressed {last_throughput:.1} -> {throughput:.1} \
             going to {shards} shards"
        );
        last_throughput = throughput;
        virtual_rows.push(stats.to_json());
    }

    write_root_results(
        "BENCH_serve_tenants_scale",
        &json!({
            "fleet": {
                "tenants": fleet.len(),
                "total_events": total_events,
                "zipf_exponent": fleet_cfg.zipf_exponent,
                "max_share": fleet_cfg.max_share,
                "storm_tenants": fleet
                    .iter()
                    .filter(|p| p.total_fault_per_mille() > 0)
                    .count(),
                "head_volume": volumes[0],
                "tail_volume": volumes[volumes.len() - 1],
            },
            "merged_events": baseline.log.lines().count(),
            "virtual_horizon_secs": baseline.horizon_secs,
            "parity": {
                "shard_counts": SHARD_SWEEP,
                "merged_log_identical": true,
                "per_tenant_logs_identical": true,
                "solo_spot_checked_slots": spot_slots,
            },
            "shard_scale_model": virtual_rows,
            "wall": wall_rows,
            "smoke": smoke,
        }),
    );
}
