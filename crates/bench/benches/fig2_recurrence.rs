//! Figure 2 — recurring-incident proportion vs. time interval.
//!
//! The paper reports that 93.80% of recurring incidents reappear within
//! 20 days. This bench prints the full CDF of recurrence gaps in the
//! generated year.

use rcacopilot_bench::{banner, standard_dataset, write_results};

fn main() {
    banner("Figure 2: Recurring incidents proportion vs. time interval");
    let stats = standard_dataset().stats();
    let intervals = [
        1.0, 2.0, 5.0, 10.0, 15.0, 20.0, 30.0, 45.0, 60.0, 90.0, 180.0, 365.0,
    ];
    println!("{:>10} | {:>10}", "days", "proportion");
    println!("{}", "-".repeat(24));
    let cdf = stats.recurrence_cdf(&intervals);
    for (d, p) in &cdf {
        println!("{d:>10} | {p:>10.4}");
    }
    let within20 = stats.recurrence_share_within(20.0);
    println!(
        "\nShare of recurrences within 20 days: {:.2}% (paper: 93.80%)",
        within20 * 100.0
    );
    assert!(
        (0.88..=0.98).contains(&within20),
        "recurrence share within 20 days out of band: {within20}"
    );
    write_results(
        "fig2_recurrence",
        &serde_json::json!({
            "cdf": cdf.iter().map(|(d, p)| serde_json::json!({"days": d, "share": p})).collect::<Vec<_>>(),
            "within_20_days": within20,
            "paper_within_20_days": 0.938,
        }),
    );
}
