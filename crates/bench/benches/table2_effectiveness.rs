//! Table 2 — effectiveness of different methods.
//!
//! Reproduces the paper's headline comparison: micro/macro F1 plus
//! training and average inference time for FastText, XGBoost, the
//! fine-tuned LM, zero-shot prompting, generic-LM embeddings, and
//! RCACopilot under both simulated model profiles.

use rcacopilot_bench::{banner, standard_prepared, write_results};
use rcacopilot_core::eval::{evaluate_method, Method};
use rcacopilot_llm::ModelProfile;

/// Paper Table 2 values: (method, micro, macro, train s, infer s).
const PAPER: &[(&str, f64, f64, Option<f64>, f64)] = &[
    ("FastText", 0.076, 0.004, Some(10.592), 0.524),
    ("XGBoost", 0.022, 0.009, Some(11.581), 1.211),
    ("Fine-tune GPT", 0.103, 0.144, Some(3192.0), 4.262),
    ("GPT-4 Prompt", 0.026, 0.004, None, 3.251),
    ("GPT-4 Embed.", 0.257, 0.122, Some(1925.0), 3.522),
    ("RCACopilot (GPT-3.5)", 0.761, 0.505, Some(10.562), 4.221),
    ("RCACopilot (GPT-4)", 0.766, 0.533, Some(10.562), 4.205),
];

fn main() {
    banner("Table 2: Effectiveness of different methods");
    println!("Generating the 653-incident campaign and running the collection stage...");
    let prepared = standard_prepared();
    println!(
        "train = {} incidents, test = {} incidents ({} test categories unseen in training)",
        prepared.train.len(),
        prepared.test.len(),
        prepared.unseen_test_count()
    );

    let methods = [
        Method::FastText,
        Method::Xgboost,
        Method::FineTune,
        Method::ZeroShot,
        Method::LmEmbed,
        Method::RcaCopilot(ModelProfile::Gpt35),
        Method::RcaCopilot(ModelProfile::Gpt4),
    ];

    println!(
        "\n{:<26} | {:>8} {:>8} | {:>9} {:>10} | {:>8} {:>8}",
        "Method", "Micro", "Macro", "Train(s)", "Infer(s)", "paperMi", "paperMa"
    );
    println!("{}", "-".repeat(92));
    let mut rows = Vec::new();
    for (method, paper) in methods.iter().zip(PAPER) {
        let report = evaluate_method(&prepared, *method, 1);
        println!(
            "{:<26} | {:>8.3} {:>8.3} | {:>9.3} {:>10.6} | {:>8.3} {:>8.3}",
            report.name,
            report.f1.micro_f1,
            report.f1.macro_f1,
            report.train_secs,
            report.infer_secs_avg,
            paper.1,
            paper.2,
        );
        rows.push(serde_json::json!({
            "method": report.name,
            "micro_f1": report.f1.micro_f1,
            "macro_f1": report.f1.macro_f1,
            "train_secs": report.train_secs,
            "infer_secs_avg": report.infer_secs_avg,
            "paper_micro": paper.1,
            "paper_macro": paper.2,
        }));
    }
    write_results("table2_effectiveness", &serde_json::json!({ "rows": rows }));
}
