//! Table 4 — teams using the collection module in production.
//!
//! Simulates the 30-team deployment and prints the top-10 rows next to
//! the paper's: handler counts follow the published table; execution time
//! reflects each team's infrastructure latency profile, reproducing the
//! non-monotonic handler-count/exec-time relationship.

use rcacopilot_bench::{banner, write_results};
use rcacopilot_simcloud::simulate_teams;

/// Paper Table 4: (avg exec seconds, enabled handlers).
const PAPER: &[(f64, usize)] = &[
    (841.0, 213),
    (378.0, 204),
    (106.0, 88),
    (449.0, 42),
    (136.0, 41),
    (91.0, 34),
    (449.0, 32),
    (255.0, 32),
    (323.0, 31),
    (22.0, 18),
];

fn main() {
    banner("Table 4: Teams using RCACopilot diagnostic collection");
    let reports = simulate_teams(7, 200);
    println!(
        "{:<10} | {:>12} {:>10} | {:>12} {:>10}",
        "Team", "exec (s)", "#handlers", "paper exec", "paper #"
    );
    println!("{}", "-".repeat(64));
    let mut rows = Vec::new();
    for (report, paper) in reports.iter().take(10).zip(PAPER) {
        println!(
            "{:<10} | {:>12.0} {:>10} | {:>12.0} {:>10}",
            report.name, report.avg_exec_time_secs, report.enabled_handlers, paper.0, paper.1
        );
        assert_eq!(
            report.enabled_handlers, paper.1,
            "{}: handler count",
            report.name
        );
        rows.push(serde_json::json!({
            "team": report.name,
            "avg_exec_secs": report.avg_exec_time_secs,
            "enabled_handlers": report.enabled_handlers,
            "paper_exec_secs": paper.0,
            "paper_handlers": paper.1,
        }));
    }
    println!(
        "\nTotal simulated teams: {} (paper: 30+); exec time is not monotone in handler count, as in the paper.",
        reports.len()
    );
    write_results("table4_deployment", &serde_json::json!({ "rows": rows }));
}
