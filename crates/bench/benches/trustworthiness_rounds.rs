//! §5.6 — trustworthiness: three rounds of the headline experiment.
//!
//! The paper reruns every experiment three times; RCACopilot stays above
//! Micro-F1 0.70 and Macro-F1 0.50 in each round. Rounds differ in the
//! simulated LLM's noise seed.

use rcacopilot_bench::{banner, standard_prepared, write_results};
use rcacopilot_core::eval::stability_rounds;
use rcacopilot_llm::ModelProfile;

fn main() {
    banner("Trustworthiness: three rounds of RCACopilot (GPT-4 profile)");
    let prepared = standard_prepared();
    let rounds = stability_rounds(&prepared, ModelProfile::Gpt4, &[1, 2, 3]);
    println!("{:>6} | {:>8} {:>8}", "round", "Micro", "Macro");
    println!("{}", "-".repeat(28));
    let mut out = Vec::new();
    for (i, f1) in rounds.iter().enumerate() {
        println!("{:>6} | {:>8.3} {:>8.3}", i + 1, f1.micro_f1, f1.macro_f1);
        out.push(
            serde_json::json!({"round": i + 1, "micro_f1": f1.micro_f1, "macro_f1": f1.macro_f1}),
        );
    }
    let min_micro = rounds.iter().map(|r| r.micro_f1).fold(f64::MAX, f64::min);
    let min_macro = rounds.iter().map(|r| r.macro_f1).fold(f64::MAX, f64::min);
    let spread = rounds.iter().map(|r| r.micro_f1).fold(f64::MIN, f64::max) - min_micro;
    println!(
        "\nFloors across rounds: micro {min_micro:.3} (paper floor 0.70), macro {min_macro:.3} (paper floor 0.50); micro spread {spread:.3}."
    );
    write_results(
        "trustworthiness_rounds",
        &serde_json::json!({
            "rounds": out,
            "min_micro": min_micro,
            "min_macro": min_macro,
            "paper_micro_floor": 0.70,
            "paper_macro_floor": 0.50,
        }),
    );
}
