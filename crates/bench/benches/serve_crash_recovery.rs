//! Crash-recovery and worker-fault sweeps for the serving engine.
//!
//! Two deterministic experiments, both asserted (not just reported):
//!
//! 1. **Crash/recovery sweep**: the engine is killed at seeded virtual
//!    times (¼, ½, ¾ of the stream) with the write-ahead log as the only
//!    surviving state, then resumed — for 1 and 4 workers, with worker
//!    faults, checkpoint folding and epoch compaction all enabled. The
//!    resumed prediction log must be byte-identical to an uninterrupted
//!    run's.
//! 2. **Fault-rate sweep**: worker fault pressure (panics + stalls +
//!    transient errors) from 0‰ to 200‰ per attempt. At every rate, every
//!    stream event must complete (predicted or quarantined dead-letter —
//!    never lost, never a process abort) and the log must be identical
//!    across worker counts.
//!
//! Results go to `BENCH_serve_faults.json` at the repository root.
//! `--smoke` shrinks the campaign for CI.

use rcacopilot_bench::{banner, write_root_results, SPLIT_SEED, TRAIN_FRAC};
use rcacopilot_core::eval::PreparedDataset;
use rcacopilot_core::pipeline::{RcaCopilot, RcaCopilotConfig};
use rcacopilot_core::ContextSpec;
use rcacopilot_embed::{FastTextConfig, FeatureExtractor};
use rcacopilot_serve::{
    AdmissionConfig, ArrivalModel, EngineConfig, EventOutcome, IndexMode, ServeEngine,
    StreamConfig, WorkerFaultConfig, WriteAheadLog,
};
use rcacopilot_simcloud::noise::NoiseProfile;
use rcacopilot_simcloud::{generate_dataset, CampaignConfig, Incident, Topology};
use rcacopilot_telemetry::SimTime;
use serde_json::Value;

fn smoke_dataset() -> rcacopilot_simcloud::IncidentDataset {
    generate_dataset(&CampaignConfig {
        seed: 5,
        topology: Topology::new(2, 4, 2, 2),
        noise: NoiseProfile {
            routine_logs: 2,
            herring_logs: 1,
            healthy_traces: 1,
            unrelated_failure: false,
            bystander_anomalies: 1,
        },
    })
}

/// Looks up a (possibly nested) field of a JSON report map.
fn field<'a>(v: &'a Value, path: &[&str]) -> &'a Value {
    let mut cur = v;
    for key in path {
        cur = cur
            .as_map()
            .expect("report node is a map")
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("report field {key} missing"));
    }
    cur
}

fn as_u64(v: &Value) -> u64 {
    match v {
        Value::U64(n) => *n,
        Value::I64(n) => *n as u64,
        other => panic!("expected number, got {other:?}"),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    banner(if smoke {
        "Serving engine: crash recovery + fault sweep (smoke)"
    } else {
        "Serving engine: crash recovery + fault sweep"
    });

    let dataset = if smoke {
        smoke_dataset()
    } else {
        rcacopilot_bench::standard_dataset()
    };
    let split = dataset.split(SPLIT_SEED, TRAIN_FRAC);
    let prepared = PreparedDataset::prepare(&dataset, &split);
    let spec = ContextSpec::default();
    let copilot_config = if smoke {
        RcaCopilotConfig {
            embedding: FastTextConfig {
                dim: 24,
                epochs: 8,
                lr: 0.4,
                features: FeatureExtractor {
                    buckets: 1 << 12,
                    ..FeatureExtractor::default()
                },
                ..FastTextConfig::default()
            },
            ..RcaCopilotConfig::default()
        }
    } else {
        RcaCopilotConfig::default()
    };
    let copilot = RcaCopilot::train(&prepared.train_examples(&spec), copilot_config);
    let test: Vec<Incident> = split
        .test
        .iter()
        .take(if smoke { 20 } else { 120 })
        .map(|&i| dataset.incidents()[i].clone())
        .collect();
    println!("train={} test={} (streamed)", split.train.len(), test.len());

    let stream = StreamConfig {
        seed: 6,
        arrivals: ArrivalModel::Poisson { mean_gap_secs: 700 },
        reraise_prob: 0.2,
    };
    let worker_counts: [usize; 2] = [1, 4];
    let base = EngineConfig {
        queue_capacity: 32,
        index_mode: IndexMode::Online,
        admission: AdmissionConfig::unbounded(),
        checkpoint_every: 3,
        compact_epochs: 2,
        ..EngineConfig::default()
    };

    // ---- 1. Crash/recovery sweep ------------------------------------
    let crash_faults = WorkerFaultConfig {
        panic_per_mille: 60,
        stall_per_mille: 40,
        error_per_mille: 30,
        ..WorkerFaultConfig::default()
    };
    let reference = ServeEngine::new(
        copilot.clone(),
        EngineConfig {
            workers: 2,
            faults: crash_faults,
            ..base.clone()
        },
    )
    .run_with_wal(&test, &stream, &mut WriteAheadLog::new())
    .expect("fresh journal");
    assert_eq!(reference.records.len(), reference.planned);
    let n = reference.records.len();
    let crash_points: Vec<(usize, SimTime)> = [n / 4, n / 2, 3 * n / 4]
        .iter()
        .map(|&k| (k, reference.records[k].at))
        .collect();

    println!(
        "\n{:>10} {:>8} {:>10} {:>12} {:>10}",
        "crash at", "workers", "committed", "wal lines", "identical"
    );
    let mut crash_rows = Vec::new();
    for &(k, crash_at) in &crash_points {
        for &workers in &worker_counts {
            let mut wal = WriteAheadLog::new();
            let partial = ServeEngine::new(
                copilot.clone(),
                EngineConfig {
                    workers,
                    faults: crash_faults,
                    crash_at: Some(crash_at),
                    ..base.clone()
                },
            )
            .run_with_wal(&test, &stream, &mut wal)
            .expect("fresh journal");
            assert!(partial.crashed(), "crash point must cut the stream");
            assert!(
                reference.log.starts_with(&partial.log),
                "committed prefix diverged before the crash"
            );
            // Only the serialized journal survives the "process death".
            let bytes = wal.serialized();
            let mut reloaded = WriteAheadLog::load(&bytes);
            let resumed = ServeEngine::new(
                copilot.clone(),
                EngineConfig {
                    workers,
                    faults: crash_faults,
                    ..base.clone()
                },
            )
            .run_with_wal(&test, &stream, &mut reloaded)
            .expect("recoverable journal");
            assert_eq!(
                resumed.log, reference.log,
                "recovery must be byte-identical (crash at {k}, {workers} workers)"
            );
            println!(
                "{:>9}s {:>8} {:>10} {:>12} {:>10}",
                crash_at.as_secs(),
                workers,
                partial.records.len(),
                wal.len(),
                "yes"
            );
            crash_rows.push(serde_json::json!({
                "crash_at_secs": crash_at.as_secs(),
                "crash_event_index": k,
                "workers": workers,
                "committed_before_crash": partial.records.len(),
                "planned": partial.planned,
                "wal_lines": wal.len(),
                "wal_bytes": bytes.len(),
                "wal_checkpointed": wal.checkpointed(),
                "byte_identical_after_recovery": true,
            }));
        }
    }
    println!("crash recovery byte-identical at every point and worker count ✓");

    // ---- 2. Fault-rate sweep ----------------------------------------
    println!(
        "\n{:>9} {:>8} {:>10} {:>12} {:>9} {:>13}",
        "faults ‰", "panics", "respawns", "redispatches", "dead", "predicted"
    );
    let mut fault_rows = Vec::new();
    for rate in [0u16, 50, 100, 200] {
        let faults = WorkerFaultConfig {
            panic_per_mille: rate * 3 / 5,
            stall_per_mille: rate / 5,
            error_per_mille: rate - rate * 3 / 5 - rate / 5,
            ..WorkerFaultConfig::default()
        };
        let mut logs = Vec::new();
        let mut last = None;
        for &workers in &worker_counts {
            let out = ServeEngine::new(
                copilot.clone(),
                EngineConfig {
                    workers,
                    faults,
                    ..base.clone()
                },
            )
            .run(&test, &stream);
            assert_eq!(
                out.records.len(),
                out.planned,
                "every event must complete at {rate}‰ faults"
            );
            logs.push(out.log.clone());
            last = Some(out);
        }
        for log in &logs[1..] {
            assert_eq!(
                log, &logs[0],
                "fault outcomes leaked worker count at {rate}‰"
            );
        }
        let out = last.expect("at least one worker count");
        let predicted = out
            .records
            .iter()
            .filter(|r| matches!(r.outcome, EventOutcome::Predicted { .. }))
            .count();
        let dead = out
            .records
            .iter()
            .filter(|r| matches!(r.outcome, EventOutcome::Failed { .. }))
            .count();
        let stat = |name: &str| as_u64(field(&out.report, &["faults", name]));
        println!(
            "{:>9} {:>8} {:>10} {:>12} {:>9} {:>13}",
            rate,
            stat("worker_panics"),
            stat("worker_respawns"),
            stat("redispatches"),
            dead,
            predicted,
        );
        fault_rows.push(serde_json::json!({
            "fault_per_mille": rate,
            "panic_per_mille": faults.panic_per_mille,
            "stall_per_mille": faults.stall_per_mille,
            "error_per_mille": faults.error_per_mille,
            "events": out.planned,
            "predicted": predicted,
            "dead_letters": dead,
            "worker_panics": stat("worker_panics"),
            "worker_respawns": stat("worker_respawns"),
            "injected_stalls": stat("injected_stalls"),
            "injected_errors": stat("injected_errors"),
            "redispatches": stat("redispatches"),
            "quarantined": stat("quarantined"),
            "poison_recoveries": stat("poison_recoveries"),
            "log_identical_across_workers": true,
        }));
    }
    println!("no event lost at any fault rate; logs worker-independent ✓");

    write_root_results(
        "BENCH_serve_faults",
        &serde_json::json!({
            "stream": {
                "seed": stream.seed,
                "model": "poisson(mean_gap=700s)",
                "reraise_prob": stream.reraise_prob,
                "test_incidents": test.len(),
                "events": reference.planned,
            },
            "engine": {
                "index_mode": "online",
                "checkpoint_every": base.checkpoint_every,
                "compact_epochs": base.compact_epochs,
                "quarantine_kills": base.quarantine_kills,
                "max_attempts": base.max_attempts,
            },
            "crash_recovery": crash_rows,
            "fault_sweep": fault_rows,
            "smoke": smoke,
        }),
    );
}
