//! Criterion micro-benchmarks of the pipeline's hot components:
//! summarization, embedding, temporal-decay retrieval, BPE token counting,
//! and handler execution.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rcacopilot_core::retrieval::{HistoricalEntry, HistoricalIndex, RetrievalConfig};
use rcacopilot_embed::{FastTextConfig, FastTextModel, FeatureExtractor};
use rcacopilot_handlers::standard_handlers;
use rcacopilot_llm::Summarizer;
use rcacopilot_simcloud::noise::NoiseProfile;
use rcacopilot_simcloud::{generate_dataset, CampaignConfig, Topology};
use rcacopilot_telemetry::alert::AlertType;
use rcacopilot_telemetry::time::SimTime;
use rcacopilot_textkit::bpe::BpeTokenizer;

fn small_dataset() -> rcacopilot_simcloud::IncidentDataset {
    generate_dataset(&CampaignConfig {
        seed: 9,
        topology: Topology::new(2, 6, 3, 3),
        noise: NoiseProfile {
            routine_logs: 12,
            herring_logs: 3,
            healthy_traces: 4,
            unrelated_failure: true,
            bystander_anomalies: 2,
        },
    })
}

fn bench_summarizer(c: &mut Criterion) {
    let ds = small_dataset();
    let stage = rcacopilot_core::collection::CollectionStage::standard();
    let text = stage
        .collect(&ds.incidents()[0])
        .expect("collects")
        .diagnostic_text();
    let summarizer = Summarizer::default();
    c.bench_function("summarize_diagnostic_text", |b| {
        b.iter(|| summarizer.summarize(std::hint::black_box(&text)))
    });
}

fn bench_embedding(c: &mut Criterion) {
    let examples: Vec<(String, String)> = (0..40)
        .map(|i| {
            (
                format!("udp socket exhausted winsock error hub ports case {i} with filler text for realistic length"),
                format!("Cat{}", i % 5),
            )
        })
        .collect();
    let model = FastTextModel::train(
        &examples,
        FastTextConfig {
            dim: 64,
            epochs: 5,
            features: FeatureExtractor {
                buckets: 1 << 13,
                ..FeatureExtractor::default()
            },
            ..FastTextConfig::default()
        },
    );
    c.bench_function("fasttext_embed_short_text", |b| {
        b.iter(|| {
            model.embed(std::hint::black_box(
                "winsock udp socket exhausted on hub transport",
            ))
        })
    });
}

fn bench_retrieval(c: &mut Criterion) {
    let mut index = HistoricalIndex::new();
    for i in 0..490u64 {
        let emb: Vec<f32> = (0..64).map(|d| ((i * 31 + d) % 97) as f32 / 97.0).collect();
        index.add(HistoricalEntry {
            id: i as usize,
            category: format!("Cat{}", i % 163),
            summary: "summary".into(),
            at: SimTime::from_days(i % 364),
            embedding: emb,
        });
    }
    let query: Vec<f32> = (0..64).map(|d| (d % 7) as f32 / 7.0).collect();
    let config = RetrievalConfig::default();
    c.bench_function("retrieval_topk_diverse_490x64", |b| {
        b.iter(|| {
            index.top_k_diverse(
                std::hint::black_box(&query),
                SimTime::from_days(180),
                &config,
            )
        })
    });
}

fn bench_bpe(c: &mut Criterion) {
    let corpus: Vec<String> = (0..50)
        .map(|i| format!("incident diagnostic summary number {i} with exception text and counters"))
        .collect();
    let tok = BpeTokenizer::train(&corpus, 600);
    let text = corpus.join(" ");
    c.bench_function("bpe_count_tokens_3kchars", |b| {
        b.iter(|| tok.count_tokens(std::hint::black_box(&text)))
    });
}

fn bench_handler_execution(c: &mut Criterion) {
    let ds = small_dataset();
    let registry = standard_handlers();
    let incident = ds
        .incidents()
        .iter()
        .find(|i| i.alert.alert_type == AlertType::DeliveryQueueBacklog)
        .expect("backlog incident exists");
    let handler = registry
        .current(AlertType::DeliveryQueueBacklog)
        .expect("handler");
    c.bench_function("handler_execute_delivery_backlog", |b| {
        b.iter_batched(
            || (incident.snapshot.clone(), incident.alert.scope),
            |(snap, scope)| handler.execute(std::hint::black_box(&snap), scope),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets =
        bench_summarizer,
        bench_embedding,
        bench_retrieval,
        bench_bpe,
        bench_handler_execution
);
criterion_main!(benches);
