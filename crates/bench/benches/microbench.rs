//! Micro-benchmarks of the pipeline's hot components: summarization,
//! embedding, temporal-decay retrieval, BPE token counting, and handler
//! execution. Uses a plain timing loop (median of timed batches) so the
//! bench runs with no external harness, and emits JSON like the table
//! benches.

use rcacopilot_bench::write_results;
use rcacopilot_core::retrieval::{HistoricalEntry, HistoricalIndex, RetrievalConfig};
use rcacopilot_embed::{FastTextConfig, FastTextModel, FeatureExtractor};
use rcacopilot_handlers::standard_handlers;
use rcacopilot_llm::Summarizer;
use rcacopilot_simcloud::noise::NoiseProfile;
use rcacopilot_simcloud::{generate_dataset, CampaignConfig, Topology};
use rcacopilot_telemetry::alert::AlertType;
use rcacopilot_telemetry::time::SimTime;
use rcacopilot_textkit::bpe::BpeTokenizer;
use std::time::Instant;

/// Times `f` over `batches` batches of `iters` calls each and returns the
/// median per-call time in nanoseconds. A warm-up batch runs first.
fn bench<T>(name: &str, mut f: impl FnMut() -> T) -> (String, f64) {
    const BATCHES: usize = 11;
    const ITERS: usize = 20;
    for _ in 0..ITERS {
        std::hint::black_box(f());
    }
    let mut samples: Vec<f64> = (0..BATCHES)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..ITERS {
                std::hint::black_box(f());
            }
            start.elapsed().as_secs_f64() * 1e9 / ITERS as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[BATCHES / 2];
    println!("{name:<40} {median:>12.0} ns/iter");
    (name.to_string(), median)
}

fn small_dataset() -> rcacopilot_simcloud::IncidentDataset {
    generate_dataset(&CampaignConfig {
        seed: 9,
        topology: Topology::new(2, 6, 3, 3),
        noise: NoiseProfile {
            routine_logs: 12,
            herring_logs: 3,
            healthy_traces: 4,
            unrelated_failure: true,
            bystander_anomalies: 2,
        },
    })
}

fn main() {
    let mut rows = Vec::new();

    let ds = small_dataset();
    let stage = rcacopilot_core::collection::CollectionStage::standard();
    let text = stage
        .collect(&ds.incidents()[0])
        .expect("collects")
        .diagnostic_text();
    let summarizer = Summarizer::default();
    rows.push(bench("summarize_diagnostic_text", || {
        summarizer.summarize(std::hint::black_box(&text))
    }));

    let examples: Vec<(String, String)> = (0..40)
        .map(|i| {
            (
                format!("udp socket exhausted winsock error hub ports case {i} with filler text for realistic length"),
                format!("Cat{}", i % 5),
            )
        })
        .collect();
    let model = FastTextModel::train(
        &examples,
        FastTextConfig {
            dim: 64,
            epochs: 5,
            features: FeatureExtractor {
                buckets: 1 << 13,
                ..FeatureExtractor::default()
            },
            ..FastTextConfig::default()
        },
    );
    rows.push(bench("fasttext_embed_short_text", || {
        model.embed(std::hint::black_box(
            "winsock udp socket exhausted on hub transport",
        ))
    }));

    let mut index = HistoricalIndex::new();
    for i in 0..490u64 {
        let emb: Vec<f32> = (0..64).map(|d| ((i * 31 + d) % 97) as f32 / 97.0).collect();
        index.add(HistoricalEntry {
            id: i as usize,
            category: format!("Cat{}", i % 163),
            summary: "summary".into(),
            at: SimTime::from_days(i % 364),
            embedding: emb,
        });
    }
    let query: Vec<f32> = (0..64).map(|d| (d % 7) as f32 / 7.0).collect();
    let config = RetrievalConfig::default();
    rows.push(bench("retrieval_topk_diverse_490x64", || {
        index.top_k_diverse(
            std::hint::black_box(&query),
            SimTime::from_days(180),
            &config,
        )
    }));

    let corpus: Vec<String> = (0..50)
        .map(|i| format!("incident diagnostic summary number {i} with exception text and counters"))
        .collect();
    let tok = BpeTokenizer::train(&corpus, 600);
    let joined = corpus.join(" ");
    rows.push(bench("bpe_count_tokens_3kchars", || {
        tok.count_tokens(std::hint::black_box(&joined))
    }));

    let registry = standard_handlers();
    let incident = ds
        .incidents()
        .iter()
        .find(|i| i.alert.alert_type == AlertType::DeliveryQueueBacklog)
        .expect("backlog incident exists");
    let handler = registry
        .current(AlertType::DeliveryQueueBacklog)
        .expect("handler");
    rows.push(bench("handler_execute_delivery_backlog", || {
        handler.execute(
            std::hint::black_box(&incident.snapshot),
            incident.alert.scope,
        )
    }));

    let json_rows: Vec<serde_json::Value> = rows
        .iter()
        .map(|(name, ns)| serde_json::json!({ "name": name, "median_ns_per_iter": ns }))
        .collect();
    write_results("microbench", &serde_json::json!({ "rows": json_rows }));
}
