//! Table 3 — effectiveness of different prompt contexts.
//!
//! Reproduces the paper's context ablation: AlertInfo / DiagnosticInfo
//! (raw or summarized) / ActionOutput combinations, sharing one trained
//! embedder so only the prompt text varies.

use rcacopilot_bench::{banner, standard_prepared, write_results};
use rcacopilot_core::ablation::table3_context_ablation;
use rcacopilot_core::pipeline::RcaCopilotConfig;

/// Paper Table 3 values: (context, micro, macro).
const PAPER: &[(&str, f64, f64)] = &[
    ("DiagnosticInfo", 0.689, 0.510),
    ("DiagnosticInfo (sum.)", 0.766, 0.533),
    ("AlertInfo", 0.379, 0.245),
    ("AlertInfo + DiagnosticInfo", 0.525, 0.511),
    ("AlertInfo + ActionOutput", 0.431, 0.247),
    ("DiagnosticInfo + ActionOutput", 0.501, 0.449),
    ("AlertInfo + DiagnosticInfo + ActionOutput", 0.440, 0.349),
];

fn main() {
    banner("Table 3: Effectiveness of different prompt contexts");
    let prepared = standard_prepared();
    let rows = table3_context_ablation(&prepared, &RcaCopilotConfig::default());

    println!(
        "{:<44} | {:>8} {:>8} | {:>8} {:>8}",
        "Context", "Micro", "Macro", "paperMi", "paperMa"
    );
    println!("{}", "-".repeat(84));
    let mut out = Vec::new();
    for ((name, f1), paper) in rows.iter().zip(PAPER) {
        println!(
            "{:<44} | {:>8.3} {:>8.3} | {:>8.3} {:>8.3}",
            name, f1.micro_f1, f1.macro_f1, paper.1, paper.2
        );
        out.push(serde_json::json!({
            "context": name,
            "micro_f1": f1.micro_f1,
            "macro_f1": f1.macro_f1,
            "paper_micro": paper.1,
            "paper_macro": paper.2,
        }));
    }
    let sum = rows
        .iter()
        .find(|(n, _)| n == "DiagnosticInfo (sum.)")
        .unwrap();
    let raw = rows.iter().find(|(n, _)| n == "DiagnosticInfo").unwrap();
    let alert = rows.iter().find(|(n, _)| n == "AlertInfo").unwrap();
    println!(
        "\nShape checks: summarized ({:.3}) >= raw ({:.3}); alert-only ({:.3}) is the weakest informative context.",
        sum.1.micro_f1, raw.1.micro_f1, alert.1.micro_f1
    );
    write_results(
        "table3_context_ablation",
        &serde_json::json!({ "rows": out }),
    );
}
