//! Crash-point torture fuzzer for the WAL storage fault plane.
//!
//! Runs the serving engine over a seeded simulated disk
//! ([`SimDisk`]), then sweeps **crash points** — every recorded fsync
//! barrier × sampled byte offsets of the un-fsynced window — and **fault
//! mixes** (clean crashes, torn pages, bit rot, `ENOSPC` budgets, flaky
//! write/fsync I/O) across worker × shard × tenant geometries. Every
//! image is recovered through the normal load path and asserted:
//!
//! - **zero acked loss**: a commit acknowledged by a completed fsync is
//!   recovered at every crash point of every crash-only mix;
//! - **byte-identical replay**: resumed runs reproduce the baseline
//!   prediction log exactly (sampled per mix);
//! - **quarantine, not fatality**: corrupt records surface as counted
//!   dead letters and recovery always succeeds;
//! - **per-tenant isolation**: in the multi-tenant geometry, damage to
//!   one tenant's records never moves another tenant's watermark.
//!
//! Results (per-mix point counts, loss/quarantine tallies and recovery
//! latency percentiles) go to `BENCH_wal_torture.json` at the repository
//! root. `--smoke` shrinks the sweep for CI; the full run covers 200+
//! points per geometry.

use rcacopilot_bench::{banner, write_root_results};
use rcacopilot_core::eval::PreparedDataset;
use rcacopilot_core::pipeline::{RcaCopilot, RcaCopilotConfig};
use rcacopilot_core::ContextSpec;
use rcacopilot_embed::{FastTextConfig, FeatureExtractor};
use rcacopilot_serve::{
    AdmissionConfig, ArrivalModel, CrashPoint, EngineConfig, IndexMode, MultiTenantConfig,
    MultiTenantEngine, ServeEngine, SimDisk, SimDiskConfig, StreamConfig, WalRecord, WalSink,
    WriteAheadLog,
};
use rcacopilot_simcloud::noise::NoiseProfile;
use rcacopilot_simcloud::{
    generate_dataset, partition_tenants, CampaignConfig, Incident, StorageFaultPlan,
    TenantStormPlan, Topology,
};
use rcacopilot_telemetry::ids::TenantId;
use serde_json::{json, Value};
use std::collections::BTreeMap;
use std::time::Instant;

/// One fault-mix sweep's tallies.
#[derive(Debug, Default)]
struct MixStats {
    points: usize,
    acked_lost: u64,
    quarantined: u64,
    dropped_records: u64,
    resumes: usize,
    replay_divergences: u64,
    enospc_events: u64,
    paused_spans: u64,
    fsync_failures: u64,
    sink_retries: u64,
    recovery_us: Vec<u128>,
}

impl MixStats {
    fn percentile(&self, p: f64) -> u128 {
        if self.recovery_us.is_empty() {
            return 0;
        }
        let mut v = self.recovery_us.clone();
        v.sort_unstable();
        let idx = ((v.len() - 1) as f64 * p).round() as usize;
        v[idx]
    }

    fn to_json(&self, geometry: &str, mix: &str) -> Value {
        json!({
            "geometry": geometry,
            "mix": mix,
            "points": self.points,
            "acked_lost": self.acked_lost,
            "quarantined": self.quarantined,
            "dropped_records": self.dropped_records,
            "resumes": self.resumes,
            "replay_divergences": self.replay_divergences,
            "enospc_events": self.enospc_events,
            "durability_paused_spans": self.paused_spans,
            "fsync_failures": self.fsync_failures,
            "sink_retries": self.sink_retries,
            "recovery_us": {
                "p50": self.percentile(0.50) as u64,
                "p99": self.percentile(0.99) as u64,
            },
        })
    }
}

fn fixture(smoke: bool) -> (RcaCopilot, Vec<Incident>) {
    let dataset = generate_dataset(&CampaignConfig {
        seed: 47,
        topology: Topology::new(2, 4, 2, 2),
        noise: NoiseProfile::default(),
    });
    let split = dataset.split(7, 0.6);
    let prepared = PreparedDataset::prepare(&dataset, &split);
    let copilot = RcaCopilot::train(
        &prepared.train_examples(&ContextSpec::default()),
        RcaCopilotConfig {
            embedding: FastTextConfig {
                dim: 16,
                epochs: 4,
                lr: 0.4,
                features: FeatureExtractor {
                    buckets: 1 << 10,
                    ..FeatureExtractor::default()
                },
                ..FastTextConfig::default()
            },
            ..RcaCopilotConfig::default()
        },
    );
    let take = if smoke { 8 } else { 14 };
    let test: Vec<Incident> = split
        .test
        .iter()
        .take(take)
        .map(|&i| dataset.incidents()[i].clone())
        .collect();
    (copilot, test)
}

fn stream() -> StreamConfig {
    StreamConfig {
        seed: 9,
        arrivals: ArrivalModel::Poisson { mean_gap_secs: 600 },
        reraise_prob: 0.1,
    }
}

fn config(workers: usize, shards: usize) -> EngineConfig {
    EngineConfig {
        workers,
        shards,
        index_mode: IndexMode::Online,
        admission: AdmissionConfig::unbounded(),
        ..EngineConfig::default()
    }
}

/// Full page-cache view of a disk's media.
fn media(disk: &SimDisk) -> Vec<u8> {
    disk.crash_image(CrashPoint {
        barriers: usize::MAX,
        tail_bytes: 0,
        nonce: 0,
    })
    .bytes
}

/// Timed load + recover of a single-tenant crash image; feeds the
/// latency histogram and returns the loaded journal.
fn timed_recover(bytes: &[u8], stats: &mut MixStats) -> WriteAheadLog {
    let t0 = Instant::now();
    let wal = WriteAheadLog::load_bytes(bytes);
    let recovery = wal.recover();
    stats.recovery_us.push(t0.elapsed().as_micros());
    assert!(
        recovery.is_ok(),
        "recovery must never fail on a crash image"
    );
    stats.quarantined += wal.quarantined().len() as u64;
    stats.dropped_records += wal.dropped_records();
    wal
}

/// Timed load + per-tenant recovery of a multi-tenant crash image.
/// (`recover()` is strictly single-tenant — interleaved journals go
/// through `recover_tenants`.)
fn timed_recover_tenants(
    bytes: &[u8],
    stats: &mut MixStats,
) -> (WriteAheadLog, BTreeMap<TenantId, usize>) {
    let t0 = Instant::now();
    let wal = WriteAheadLog::load_bytes(bytes);
    let marks = wal.recover_tenants();
    stats.recovery_us.push(t0.elapsed().as_micros());
    let marks = marks.expect("per-tenant recovery must never fail on a crash image");
    stats.quarantined += wal.quarantined().len() as u64;
    stats.dropped_records += wal.dropped_records();
    let marks = marks.into_iter().map(|(t, r)| (t, r.committed())).collect();
    (wal, marks)
}

/// Resumes the engine from a crash image and checks byte-identity.
#[allow(clippy::too_many_arguments)]
fn check_resume(
    copilot: &RcaCopilot,
    workers: usize,
    shards: usize,
    incidents: &[Incident],
    bytes: &[u8],
    baseline: &str,
    stats: &mut MixStats,
) {
    let disk = SimDisk::restore(SimDiskConfig::default(), bytes);
    let mut wal = WriteAheadLog::with_sink(Box::new(disk)).expect("restored disk");
    let out = ServeEngine::new(copilot.clone(), config(workers, shards))
        .run_with_wal(incidents, &stream(), &mut wal)
        .expect("recovered journal");
    stats.resumes += 1;
    if out.log != baseline {
        stats.replay_divergences += 1;
    }
}

/// Crash-point sweep over one single-tenant geometry and one disk fault
/// plan: every barrier × sampled tail offsets. `crash_only` mixes (no
/// bit rot) additionally assert zero acked-commit loss.
#[allow(clippy::too_many_arguments)]
fn sweep_crashes(
    copilot: &RcaCopilot,
    workers: usize,
    shards: usize,
    incidents: &[Incident],
    plan: &StorageFaultPlan,
    baseline: &str,
    crash_only: bool,
    resume_every: usize,
    nonces: u64,
) -> MixStats {
    let mut stats = MixStats::default();
    let disk = SimDisk::new(SimDiskConfig::from_plan(plan));
    let mut wal = WriteAheadLog::with_sink(Box::new(disk.clone())).expect("fresh disk");
    let out = ServeEngine::new(copilot.clone(), config(workers, shards))
        .run_with_wal(incidents, &stream(), &mut wal)
        .expect("fresh journal");
    assert_eq!(out.log, baseline, "journaled run must match the baseline");

    let windows = disk.barrier_windows();
    for (k, &window) in windows.iter().enumerate() {
        let mut tails = vec![0usize, 1, window / 2, window];
        tails.dedup();
        for tail in tails {
            for nonce in 0..nonces {
                let point = CrashPoint {
                    barriers: k,
                    tail_bytes: tail,
                    nonce: (k as u64) * 131 + nonce,
                };
                let image = disk.crash_image(point);
                let recovered = timed_recover(&image.bytes, &mut stats);
                if crash_only {
                    // What fsync acknowledged: the media at the barrier,
                    // sans torn tail, sans fault draws past it.
                    let acked = WriteAheadLog::load_bytes(
                        &disk
                            .crash_image(CrashPoint {
                                barriers: k,
                                tail_bytes: 0,
                                nonce: point.nonce,
                            })
                            .bytes,
                    )
                    .recover()
                    .expect("acked prefix is clean");
                    let got = recovered.recover().expect("crash image recovers");
                    if got.committed() < acked.committed()
                        || got.records[..acked.committed()] != acked.records[..]
                    {
                        stats.acked_lost +=
                            (acked.committed().saturating_sub(got.committed())).max(1) as u64;
                    }
                }
                stats.points += 1;
                if stats.points % resume_every == 0 {
                    check_resume(
                        copilot,
                        workers,
                        shards,
                        incidents,
                        &image.bytes,
                        baseline,
                        &mut stats,
                    );
                }
            }
        }
    }
    stats
}

/// Bit-rot sweep: lay the finished journal on a rotting disk and draw
/// flip patterns across nonces. Acked loss is not asserted — a flip can
/// legitimately destroy an acked record; the invariant is *detection*
/// (quarantine or torn tail, never silence) and replay convergence.
#[allow(clippy::too_many_arguments)]
fn sweep_bit_rot(
    copilot: &RcaCopilot,
    workers: usize,
    shards: usize,
    incidents: &[Incident],
    clean_bytes: &[u8],
    baseline: &str,
    nonces: u64,
    resume_every: usize,
) -> MixStats {
    let mut stats = MixStats::default();
    let rot = SimDisk::restore(
        SimDiskConfig::from_plan(&StorageFaultPlan::bit_rot(29)),
        clean_bytes,
    );
    for nonce in 0..nonces {
        let image = rot.crash_image(CrashPoint {
            barriers: 1,
            tail_bytes: 0,
            nonce,
        });
        let recovered = timed_recover(&image.bytes, &mut stats);
        // Detection: every image with flips must show damage somewhere
        // in the ledger (quarantine, prune, or torn tail).
        if !image.flipped.is_empty() {
            assert!(
                !recovered.quarantined().is_empty()
                    || recovered.dropped_records() > 0
                    || recovered.had_torn_tail(),
                "silent corruption: flips {:?} left no trace",
                image.flipped
            );
        }
        stats.points += 1;
        if stats.points % resume_every == 0 {
            check_resume(
                copilot,
                workers,
                shards,
                incidents,
                &image.bytes,
                baseline,
                &mut stats,
            );
        }
    }
    stats
}

/// Engine-level degraded-media runs: `ENOSPC` budget and flaky I/O.
/// The run itself must complete with the baseline log; counters must
/// show the degradation honestly.
fn run_degraded(
    copilot: &RcaCopilot,
    workers: usize,
    shards: usize,
    incidents: &[Incident],
    disk_cfg: SimDiskConfig,
    checkpoint_every: usize,
    baseline: &str,
) -> MixStats {
    let mut stats = MixStats::default();
    let disk = SimDisk::new(disk_cfg);
    let mut wal = WriteAheadLog::with_sink(Box::new(disk.clone())).expect("fresh disk");
    let mut cfg = config(workers, shards);
    cfg.checkpoint_every = checkpoint_every;
    let out = ServeEngine::new(copilot.clone(), cfg)
        .run_with_wal(incidents, &stream(), &mut wal)
        .expect("degraded media must never be fatal");
    stats.points += 1;
    stats.resumes += 1;
    if out.log != baseline {
        stats.replay_divergences += 1;
    }
    stats.enospc_events = wal.enospc_events();
    stats.paused_spans = wal.durability_paused_spans();
    stats.fsync_failures = wal.fsync_failures();
    stats.sink_retries = wal.sink_retries();
    // Whatever landed on media must still be a consistent journal.
    let mut handle = disk.clone();
    let bytes = handle.contents().expect("media");
    timed_recover(&bytes, &mut stats);
    stats.points += 1;
    stats
}

/// Multi-tenant geometry: fuzz the adopted merged journal with suffix
/// truncations and bit flips; damage to one tenant's records must never
/// move another tenant's watermark, and the plane must resume to the
/// identical merged log.
fn sweep_multitenant(copilot: &RcaCopilot, incidents: &[Incident], smoke: bool) -> Vec<Value> {
    let plans = [
        TenantStormPlan::quiet(TenantId(1), 91),
        TenantStormPlan::quiet(TenantId(2), 92),
    ];
    let parts = partition_tenants(incidents, &plans);
    let config = MultiTenantConfig {
        base: EngineConfig {
            workers: 2,
            admission: AdmissionConfig::unbounded(),
            ..EngineConfig::default()
        },
        ..MultiTenantConfig::default()
    };
    let plane =
        MultiTenantEngine::from_plans(copilot.clone(), config, &plans).expect("well-formed plans");
    let disk = SimDisk::new(SimDiskConfig::default());
    let mut wal = WriteAheadLog::with_sink(Box::new(disk.clone())).expect("fresh disk");
    let out = plane.run_with_wal(&parts, &mut wal).expect("clean journal");
    let clean = media(&disk);
    let text = String::from_utf8(clean.clone()).expect("clean journal is utf8");
    let parsed = WriteAheadLog::load(&text);
    let records = parsed.records().expect("clean journal parses");
    let lines: Vec<&str> = text.lines().collect();
    // Per-line byte extents and owners, and clean per-tenant watermarks.
    let mut line_end = Vec::with_capacity(lines.len());
    let mut acc = 0usize;
    for l in &lines {
        line_end.push(acc + l.len());
        acc += l.len() + 1;
    }
    let owners: Vec<TenantId> = records.iter().map(WalRecord::tenant).collect();
    let clean_marks: BTreeMap<TenantId, usize> = parsed
        .recover_tenants()
        .expect("clean journal")
        .into_iter()
        .map(|(t, r)| (t, r.committed()))
        .collect();

    // --- truncation sweep: crash during the adoption rewrite ---
    let mut trunc = MixStats::default();
    let step = if smoke { 97 } else { 23 };
    let mut cut = 0usize;
    while cut <= clean.len() {
        let image = &clean[..cut];
        let (_recovered, marks) = timed_recover_tenants(image, &mut trunc);
        // Each tenant's watermark must equal exactly its commits among
        // the lines fully inside the cut — nothing lost, nothing phantom.
        let mut expected: BTreeMap<TenantId, usize> = BTreeMap::new();
        for (i, r) in records.iter().enumerate() {
            if line_end[i] <= cut {
                if let WalRecord::Commit { .. } = r {
                    *expected.entry(owners[i]).or_insert(0) += 1;
                }
            }
        }
        for (tenant, &want) in &expected {
            let got = marks.get(tenant).copied().unwrap_or(0);
            if got != want {
                trunc.acked_lost += want.abs_diff(got) as u64;
            }
        }
        trunc.points += 1;
        if trunc.points % (if smoke { 2 } else { 8 }) == 0 {
            let rdisk = SimDisk::restore(SimDiskConfig::default(), image);
            let mut rwal = WriteAheadLog::with_sink(Box::new(rdisk)).expect("restored");
            let resumed = plane.run_with_wal(&parts, &mut rwal).expect("recoverable");
            trunc.resumes += 1;
            if resumed.log != out.log {
                trunc.replay_divergences += 1;
            }
        }
        cut += step.max(1);
    }

    // --- bit-flip sweep: rot on the adopted journal ---
    let mut rotst = MixStats::default();
    let rot = SimDisk::restore(
        SimDiskConfig::from_plan(&StorageFaultPlan::bit_rot(93)),
        &clean,
    );
    let nonces = if smoke { 12 } else { 64 };
    for nonce in 0..nonces {
        let image = rot.crash_image(CrashPoint {
            barriers: 1,
            tail_bytes: 0,
            nonce,
        });
        let (_recovered, marks) = timed_recover_tenants(&image.bytes, &mut rotst);
        // Tenants owning none of the flipped bytes keep their watermark.
        let mut hit: BTreeMap<TenantId, bool> = BTreeMap::new();
        for &off in &image.flipped {
            // A flipped newline fuses line i and i+1: both owners hurt.
            let li = line_end.iter().position(|&e| off < e + 1).unwrap_or(0);
            hit.insert(owners[li], true);
            if off == line_end[li] && li + 1 < owners.len() {
                hit.insert(owners[li + 1], true);
            }
        }
        for (tenant, &want) in &clean_marks {
            if hit.contains_key(tenant) {
                continue;
            }
            let got = marks.get(tenant).copied().unwrap_or(0);
            if got != want {
                rotst.acked_lost += want.abs_diff(got) as u64;
            }
        }
        rotst.points += 1;
        if rotst.points % (if smoke { 5 } else { 12 }) == 0 {
            let rdisk = SimDisk::restore(SimDiskConfig::default(), &image.bytes);
            let mut rwal = WriteAheadLog::with_sink(Box::new(rdisk)).expect("restored");
            let resumed = plane.run_with_wal(&parts, &mut rwal).expect("recoverable");
            rotst.resumes += 1;
            if resumed.log != out.log {
                rotst.replay_divergences += 1;
            }
        }
    }

    vec![
        trunc.to_json("2w×1s×2t", "adopt_truncation"),
        rotst.to_json("2w×1s×2t", "adopt_bit_rot"),
    ]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    banner(if smoke {
        "WAL torture fuzzer: crash points × fault mixes (smoke)"
    } else {
        "WAL torture fuzzer: crash points × fault mixes"
    });
    let (copilot, test) = fixture(smoke);
    println!("incidents streamed per run: {}", test.len());

    let geometries: &[(usize, usize)] = &[(1, 1), (4, 2)];
    let nonces = if smoke { 1 } else { 2 };
    let resume_every = if smoke { 16 } else { 12 };
    let mut rows: Vec<Value> = Vec::new();

    for &(workers, shards) in geometries {
        let geometry = format!("{workers}w×{shards}s");
        let baseline = ServeEngine::new(copilot.clone(), config(workers, shards))
            .run(&test, &stream())
            .log;

        // Clean crashes: pure barrier/tear semantics, zero-loss asserted.
        let clean = sweep_crashes(
            &copilot,
            workers,
            shards,
            &test,
            &StorageFaultPlan::clean(17),
            &baseline,
            true,
            resume_every,
            nonces,
        );
        // Torn pages: un-fsynced pages zero out at crash. Still
        // crash-only (the durable prefix is untouched), so still
        // zero-loss.
        let torn = sweep_crashes(
            &copilot,
            workers,
            shards,
            &test,
            &StorageFaultPlan::torn_pages(19),
            &baseline,
            true,
            resume_every,
            nonces,
        );
        // Bit rot over the finished journal.
        let clean_disk = SimDisk::new(SimDiskConfig::from_plan(&StorageFaultPlan::clean(17)));
        let mut wal = WriteAheadLog::with_sink(Box::new(clean_disk.clone())).expect("fresh");
        ServeEngine::new(copilot.clone(), config(workers, shards))
            .run_with_wal(&test, &stream(), &mut wal)
            .expect("fresh journal");
        let rot = sweep_bit_rot(
            &copilot,
            workers,
            shards,
            &test,
            &media(&clean_disk),
            &baseline,
            if smoke { 16 } else { 72 },
            if smoke { 6 } else { 12 },
        );
        // ENOSPC: budget a third of the clean journal, fold to survive.
        let budget = (media(&clean_disk).len() / 3).max(512);
        let enospc = run_degraded(
            &copilot,
            workers,
            shards,
            &test,
            SimDiskConfig::from_plan(&StorageFaultPlan::tight_budget(31, budget as u64)),
            4,
            &baseline,
        );
        // Flaky I/O: hot per-mille write/fsync error dice.
        let mut flaky_cfg = SimDiskConfig::from_plan(&StorageFaultPlan::flaky(37));
        flaky_cfg.write_error_per_mille = 120;
        flaky_cfg.fsync_error_per_mille = 120;
        let flaky = run_degraded(&copilot, workers, shards, &test, flaky_cfg, 0, &baseline);

        for (mix, stats) in [
            ("clean_crash", &clean),
            ("torn_pages", &torn),
            ("bit_rot", &rot),
            ("enospc_budget", &enospc),
            ("flaky_io", &flaky),
        ] {
            println!(
                "{geometry:>7} {mix:<16} points={:<5} acked_lost={} quarantined={:<4} \
                 resumes={:<3} divergences={} recovery_p50={}us p99={}us",
                stats.points,
                stats.acked_lost,
                stats.quarantined,
                stats.resumes,
                stats.replay_divergences,
                stats.percentile(0.5),
                stats.percentile(0.99),
            );
            rows.push(stats.to_json(&geometry, mix));
        }
    }

    let tenant_rows = sweep_multitenant(&copilot, &test, smoke);
    for row in &tenant_rows {
        println!(
            "{:>8} {:<16} points={:<5} acked_lost={} quarantined={:<4} resumes={:<3} divergences={}",
            "2w×1s×2t",
            match field(row, "mix") {
                Value::Str(s) => s.clone(),
                other => panic!("mix is a string, got {other:?}"),
            },
            field_u64(row, "points"),
            field_u64(row, "acked_lost"),
            field_u64(row, "quarantined"),
            field_u64(row, "resumes"),
            field_u64(row, "replay_divergences"),
        );
    }
    rows.extend(tenant_rows);

    // Harness-level gates: the fuzzer is an assertion, not a report.
    let total_points: u64 = rows.iter().map(|r| field_u64(r, "points")).sum();
    let total_lost: u64 = rows.iter().map(|r| field_u64(r, "acked_lost")).sum();
    let total_div: u64 = rows
        .iter()
        .map(|r| field_u64(r, "replay_divergences"))
        .sum();
    let total_resumes: u64 = rows.iter().map(|r| field_u64(r, "resumes")).sum();
    let floor = if smoke { 60 } else { 400 };
    assert!(
        total_points >= floor,
        "sweep too small: {total_points} < {floor}"
    );
    assert_eq!(total_lost, 0, "fsync-acknowledged commits were lost");
    assert_eq!(total_div, 0, "a resumed run diverged from its baseline");
    assert!(total_resumes > 0);
    println!(
        "\nTOTAL points={total_points} acked_lost={total_lost} \
         replay_divergences={total_div} resumes={total_resumes}"
    );

    write_root_results(
        "BENCH_wal_torture",
        &json!({
            "mode": if smoke { "smoke" } else { "full" },
            "incidents_per_run": test.len(),
            "rows": Value::Seq(rows),
            "totals": {
                "points": total_points,
                "acked_lost": total_lost,
                "replay_divergences": total_div,
                "resumes": total_resumes,
            },
        }),
    );
}

/// Looks up a field of a row produced by [`MixStats::to_json`].
fn field<'a>(row: &'a Value, key: &str) -> &'a Value {
    row.as_map()
        .expect("row is a map")
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or_else(|| panic!("row field {key} missing"))
}

/// Reads an unsigned field off a row produced by [`MixStats::to_json`].
fn field_u64(row: &Value, key: &str) -> u64 {
    match field(row, key) {
        Value::U64(n) => *n,
        Value::I64(n) => *n as u64,
        other => panic!("row field {key} is not a number: {other:?}"),
    }
}
