//! Noisy-neighbor containment sweep: one flapping-storm tenant among
//! quiet tenants over one shared serving plane.
//!
//! The multi-tenant bulkheads make three claims, all checked here in
//! deterministic virtual time:
//!
//! - **Prediction isolation is exact**: every tenant's prediction log in
//!   the merged run is byte-identical to a solo run with the same
//!   derived fair-share config — the storm changes *nothing* about what
//!   other tenants are told (asserted, not measured).
//! - **Latency isolation is tight**: under deficit-round-robin sharing
//!   of the worker pool with the storm tenant bulkhead-capped, each
//!   quiet tenant's virtual p99 latency stays within 10% of its solo
//!   baseline (same pool, no competitors).
//! - **Admission isolation is exact**: a tenant's admitted/degraded/shed
//!   split depends only on its own fair-share budget, so the merged
//!   fractions equal the solo fractions exactly.
//!
//! Results go to `BENCH_serve_tenants.json` at the repository root
//! (tracked). `--smoke` runs a reduced matrix for CI.

use rcacopilot_bench::{banner, write_root_results, SPLIT_SEED, TRAIN_FRAC};
use rcacopilot_core::eval::PreparedDataset;
use rcacopilot_core::pipeline::{RcaCopilot, RcaCopilotConfig};
use rcacopilot_core::ContextSpec;
use rcacopilot_embed::{FastTextConfig, FeatureExtractor};
use rcacopilot_serve::{
    simulate_drr, AdmissionConfig, BreakerConfig, DrrJob, EngineConfig, EventOutcome, IndexMode,
    MultiTenantConfig, MultiTenantEngine, ServeEngine,
};
use rcacopilot_simcloud::noise::NoiseProfile;
use rcacopilot_simcloud::{
    generate_dataset, partition_tenants, CampaignConfig, Incident, TenantStormPlan, Topology,
};
use rcacopilot_telemetry::ids::TenantId;

fn smoke_dataset() -> rcacopilot_simcloud::IncidentDataset {
    generate_dataset(&CampaignConfig {
        seed: 5,
        topology: Topology::new(2, 4, 2, 2),
        noise: NoiseProfile {
            routine_logs: 2,
            herring_logs: 1,
            healthy_traces: 1,
            unrelated_failure: false,
            bystander_anomalies: 1,
        },
    })
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    banner(if smoke {
        "Multi-tenant bulkheads: smoke run"
    } else {
        "Multi-tenant bulkheads: 7 quiet tenants + 1 flapping storm"
    });

    let dataset = if smoke {
        smoke_dataset()
    } else {
        rcacopilot_bench::standard_dataset()
    };
    let split = dataset.split(SPLIT_SEED, TRAIN_FRAC);
    let prepared = PreparedDataset::prepare(&dataset, &split);
    let copilot_config = if smoke {
        RcaCopilotConfig {
            embedding: FastTextConfig {
                dim: 24,
                epochs: 8,
                lr: 0.4,
                features: FeatureExtractor {
                    buckets: 1 << 12,
                    ..FeatureExtractor::default()
                },
                ..FastTextConfig::default()
            },
            ..RcaCopilotConfig::default()
        }
    } else {
        RcaCopilotConfig::default()
    };
    let copilot = RcaCopilot::train(
        &prepared.train_examples(&ContextSpec::default()),
        copilot_config,
    );
    let take = if smoke { 24 } else { 96 };
    let test: Vec<Incident> = split
        .test
        .iter()
        .take(take)
        .map(|&i| dataset.incidents()[i].clone())
        .collect();

    // A pool small enough that the storm's bursts could take every worker
    // if nothing stopped them — the bulkhead cap is what keeps the quiet
    // tenants' p99 pinned to their solo baselines (the uncapped
    // counterfactual below shows the damage it prevents).
    let quiet_count = if smoke { 3 } else { 7 };
    let workers = if smoke { 3 } else { 4 };
    let mut plans: Vec<TenantStormPlan> = (0..quiet_count)
        .map(|i| TenantStormPlan::quiet(TenantId(1 + i as u64), 50 + i as u64))
        .collect();
    // The noisy neighbor: flapping monitor storm + ~30% worker-fault
    // climate, bulkhead-capped in the shared pool. Its background gap is
    // stretched so the bursts recur across the whole campaign instead of
    // burning out before the quiet tenants' later arrivals.
    let mut storm = TenantStormPlan::flapping_storm(TenantId(99), 77);
    storm.mean_gap_secs = 2_000;
    plans.push(storm);
    let storm_slot = plans.len() - 1;
    let parts = partition_tenants(&test, &plans);

    let config = MultiTenantConfig {
        base: EngineConfig {
            workers,
            shards: 2,
            index_mode: IndexMode::Online,
            admission: AdmissionConfig {
                capacity_secs: 28_800,
                ..AdmissionConfig::default()
            },
            breaker: Some(BreakerConfig::default()),
            ..EngineConfig::default()
        },
        ..MultiTenantConfig::default()
    };
    let plane = MultiTenantEngine::from_plans(copilot.clone(), config.clone(), &plans)
        .expect("well-formed plans");
    let out = plane.run(&parts).expect("one slice per tenant");

    // Rebuild the pool's job list exactly as the plane scores it, so the
    // same jobs can replay through the counterfactual pool (storm
    // bulkhead cap removed) and through per-tenant solo pools.
    let service_of = |slot: usize, r: &rcacopilot_serve::EventRecord| -> Option<u64> {
        let c = rcacopilot_serve::cost::estimate(
            &parts[slot][r.incident_idx].alert,
            config.base.cost_seed,
        );
        match &r.outcome {
            EventOutcome::Shed { .. } => None,
            EventOutcome::Predicted { degraded: true, .. } => Some(c.degraded_total()),
            EventOutcome::Predicted { .. } => Some(c.total()),
            EventOutcome::Failed { reason } if reason.contains("circuit open") => None,
            EventOutcome::Failed { .. } => Some(c.total()),
        }
    };
    let mut keyed: Vec<(u64, usize, u64)> = Vec::new();
    for (slot, run) in out.tenants.iter().enumerate() {
        for r in &run.outcome.records {
            if let Some(service) = service_of(slot, r) {
                keyed.push((r.at.as_secs(), slot, service));
            }
        }
    }
    keyed.sort_unstable();
    let pool_jobs: Vec<DrrJob> = keyed
        .iter()
        .map(|&(arrival_secs, tenant_slot, service_secs)| DrrJob {
            tenant_slot,
            arrival_secs,
            service_secs,
        })
        .collect();
    let weights: Vec<u32> = plane.specs().iter().map(|s| s.weight).collect();
    let uncapped = simulate_drr(
        &pool_jobs,
        workers,
        &weights,
        config.quantum_secs,
        &vec![None; weights.len()],
    );

    println!(
        "\n{:>7} {:>7} {:>7} {:>5} {:>5} {:>5} {:>9} {:>9} {:>7} {:>10} {:>9}",
        "tenant",
        "role",
        "events",
        "pred",
        "degr",
        "shed",
        "p99(m)",
        "p99(solo)",
        "ratio",
        "p99(nocap)",
        "accuracy"
    );
    let mut rows = Vec::new();
    let mut isolation_ok = true;
    for (slot, run) in out.tenants.iter().enumerate() {
        let spec = &plane.specs()[slot];
        // Solo baseline: same derived fair-share config, same incident
        // slice, the whole pool to itself.
        let solo_cfg =
            MultiTenantEngine::tenant_engine_config(&config.base, spec, plane.total_weight(), None);
        let solo = ServeEngine::new(copilot.clone(), solo_cfg).run(&parts[slot], &spec.stream);
        assert_eq!(
            run.outcome.log, solo.log,
            "tenant {:?}: merged log must be byte-identical to solo",
            run.tenant
        );

        // Solo pool schedule: the tenant's own jobs over the same worker
        // pool with no competitors (same DRR machinery, one slot).
        let solo_jobs: Vec<DrrJob> = pool_jobs
            .iter()
            .filter(|j| j.tenant_slot == slot)
            .map(|j| DrrJob {
                tenant_slot: 0,
                ..*j
            })
            .collect();
        let solo_pool = simulate_drr(
            &solo_jobs,
            workers,
            &[spec.weight],
            config.quantum_secs,
            &[spec.in_flight_cap],
        );

        let merged_p99 = out.drr.per_tenant[slot].latencies.percentile(0.99);
        let solo_p99 = solo_pool.merged.latencies.percentile(0.99);
        let ratio = if solo_p99 == 0 {
            1.0
        } else {
            merged_p99 as f64 / solo_p99 as f64
        };
        let counts = |records: &[rcacopilot_serve::EventRecord]| {
            let pred = records
                .iter()
                .filter(|r| matches!(r.outcome, EventOutcome::Predicted { .. }))
                .count();
            let degraded = records
                .iter()
                .filter(|r| matches!(r.outcome, EventOutcome::Predicted { degraded: true, .. }))
                .count();
            let shed = records
                .iter()
                .filter(|r| matches!(r.outcome, EventOutcome::Shed { .. }))
                .count();
            (pred, degraded, shed)
        };
        let (pred, degraded, shed) = counts(&run.outcome.records);
        let (solo_pred, solo_degraded, solo_shed) = counts(&solo.records);
        assert_eq!(
            (pred, degraded, shed),
            (solo_pred, solo_degraded, solo_shed),
            "tenant {:?}: admission split must be solo-exact",
            run.tenant
        );
        // Accuracy over served predictions (identical to solo by the log
        // equality; reported for the sweep).
        let correct = run
            .outcome
            .records
            .iter()
            .filter(|r| match &r.outcome {
                EventOutcome::Predicted { prediction, .. } => {
                    prediction.label == parts[slot][r.incident_idx].category
                }
                _ => false,
            })
            .count();
        let accuracy = if pred == 0 {
            0.0
        } else {
            correct as f64 / pred as f64
        };
        let storm = slot == storm_slot;
        if !storm && ratio > 1.10 {
            isolation_ok = false;
        }
        let uncapped_p99 = uncapped.per_tenant[slot].latencies.percentile(0.99);
        println!(
            "{:>7} {:>7} {:>7} {:>5} {:>5} {:>5} {:>9} {:>9} {:>7.3} {:>10} {:>9.3}",
            run.tenant.0,
            if storm { "storm" } else { "quiet" },
            run.outcome.records.len(),
            pred,
            degraded,
            shed,
            merged_p99,
            solo_p99,
            ratio,
            uncapped_p99,
            accuracy,
        );
        rows.push(serde_json::json!({
            "tenant": run.tenant.0,
            "role": if storm { "storm" } else { "quiet" },
            "weight": spec.weight,
            "in_flight_cap": spec.in_flight_cap,
            "events": run.outcome.records.len(),
            "predicted": pred,
            "degraded": degraded,
            "shed": shed,
            "accuracy": accuracy,
            "p99_merged_secs": merged_p99,
            "p99_solo_secs": solo_p99,
            "p99_ratio": ratio,
            "p99_without_storm_bulkhead_secs": uncapped_p99,
            "mean_wait_merged_secs": out.drr.per_tenant[slot].waits.mean(),
            "log_identical_to_solo": true,
            "admission_split_solo_exact": true,
        }));
    }
    assert!(
        isolation_ok,
        "a quiet tenant's virtual p99 drifted more than 10% from its solo baseline"
    );
    println!("\nquiet tenants within 10% of solo p99; logs and admission solo-exact ✓");

    write_root_results(
        "BENCH_serve_tenants",
        &serde_json::json!({
            "plane": {
                "tenants": plans.len(),
                "quiet": quiet_count,
                "storm": {
                    "tenant": plans[storm_slot].tenant.0,
                    "fault_per_mille": plans[storm_slot].total_fault_per_mille(),
                    "in_flight_cap": plans[storm_slot].in_flight_cap,
                },
                "workers": workers,
                "shards": config.base.shards,
                "quantum_secs": config.quantum_secs,
                "breaker": {
                    "trip_quarantines": BreakerConfig::default().trip_quarantines,
                    "cooldown_secs": BreakerConfig::default().cooldown_secs,
                },
                "test_incidents": test.len(),
            },
            "pool": out.drr.merged.to_json(),
            "tenants": serde_json::Value::Seq(rows),
            "smoke": smoke,
        }),
    );
}
