//! Shared helpers for the RCACopilot benchmark harness.
//!
//! Each bench target under `benches/` regenerates one table or figure of
//! the paper (see DESIGN.md's experiment index). They are custom-harness
//! binaries (`harness = false`): deterministic experiment runners that
//! print the paper-style rows next to the paper's published values and
//! export machine-readable JSON under `target/bench-results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rcacopilot_core::eval::PreparedDataset;
use rcacopilot_simcloud::{generate_dataset, CampaignConfig, IncidentDataset};
use std::path::PathBuf;

/// Campaign seed used by every experiment (reported in EXPERIMENTS.md).
pub const CAMPAIGN_SEED: u64 = 42;
/// Split seed for the 75/25 train/test division.
pub const SPLIT_SEED: u64 = 7;
/// Training fraction (paper §5.1).
pub const TRAIN_FRAC: f64 = 0.75;

/// Generates the standard 653-incident dataset.
pub fn standard_dataset() -> IncidentDataset {
    generate_dataset(&CampaignConfig {
        seed: CAMPAIGN_SEED,
        ..CampaignConfig::default()
    })
}

/// Generates + collects + summarizes the standard dataset.
pub fn standard_prepared() -> PreparedDataset {
    let dataset = standard_dataset();
    let split = dataset.split(SPLIT_SEED, TRAIN_FRAC);
    PreparedDataset::prepare(&dataset, &split)
}

/// Prints a horizontal rule and a centred title.
pub fn banner(title: &str) {
    println!("\n{}", "=".repeat(78));
    println!("{title:^78}");
    println!("{}", "=".repeat(78));
}

/// Directory for machine-readable experiment results.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/bench-results");
    std::fs::create_dir_all(&dir).expect("can create results dir");
    dir
}

/// Writes a JSON value to `target/bench-results/<name>.json`.
pub fn write_results(name: &str, value: &serde_json::Value) {
    let path = results_dir().join(format!("{name}.json"));
    std::fs::write(
        &path,
        serde_json::to_string_pretty(value).expect("serializable"),
    )
    .expect("can write results file");
    println!("\n[results written to {}]", path.display());
}

/// Writes a JSON value to `<name>.json` at the repository root.
///
/// Unlike [`write_results`], root results are version-tracked: the
/// serving benchmark commits its sweep as `BENCH_serve.json` so the
/// numbers travel with the code instead of living in the ignored
/// `target/` tree.
pub fn write_root_results(name: &str, value: &serde_json::Value) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("../../{name}.json"));
    std::fs::write(
        &path,
        serde_json::to_string_pretty(value).expect("serializable"),
    )
    .expect("can write root results file");
    println!("\n[results written to {}]", path.display());
}
