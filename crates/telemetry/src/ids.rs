//! Strongly-typed identifiers for simulated infrastructure.
//!
//! Machine and forest names follow the conventions visible in the paper's
//! examples (`[MachineID]`, forest-scoped alerts): forests are named like
//! `NAMPR03`, machines like `NAMPR03MB1234`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a *forest* — an isolated partition of the service
/// (a cluster of machines serving a set of tenants).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ForestId(pub u32);

/// Identifier of a machine within the service.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct MachineId {
    /// Forest this machine belongs to.
    pub forest: ForestId,
    /// Role of the machine inside the forest.
    pub role: MachineRole,
    /// Index of the machine among machines of the same role in the forest.
    pub index: u32,
}

/// Role a machine plays in the transport topology.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum MachineRole {
    /// Mailbox server: stores mailboxes, runs delivery.
    #[default]
    Mailbox,
    /// Front-door proxy: terminates inbound/outbound SMTP.
    FrontDoor,
    /// Hub server: routes messages between forests and to the internet.
    Hub,
}

/// Identifier of a customer tenant.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TenantId(pub u64);

/// Identifier of an OS process on a machine.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ProcessId(pub u32);

/// Identifier of an incident (ticket number).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct IncidentId(pub u64);

impl ForestId {
    /// Human-readable forest name, e.g. `NAMPR03`.
    pub fn name(self) -> String {
        // Cycle through a few region prefixes so forest names look like a
        // globally distributed deployment.
        const REGIONS: [&str; 5] = ["NAMPR", "EURPR", "APCPR", "LAMPR", "JPNPR"];
        let region = REGIONS[(self.0 as usize) % REGIONS.len()];
        format!("{region}{:02}", self.0)
    }
}

impl MachineRole {
    /// Two-letter code used inside machine names.
    pub fn code(self) -> &'static str {
        match self {
            MachineRole::Mailbox => "MB",
            MachineRole::FrontDoor => "FD",
            MachineRole::Hub => "HB",
        }
    }

    /// Human-readable role name.
    pub fn display_name(self) -> &'static str {
        match self {
            MachineRole::Mailbox => "Mailbox",
            MachineRole::FrontDoor => "FrontDoor",
            MachineRole::Hub => "Hub",
        }
    }
}

impl MachineId {
    /// Creates a machine id.
    pub fn new(forest: ForestId, role: MachineRole, index: u32) -> Self {
        MachineId {
            forest,
            role,
            index,
        }
    }

    /// Human-readable machine name, e.g. `NAMPR03MB1234`.
    pub fn name(self) -> String {
        format!(
            "{}{}{:04}",
            self.forest.name(),
            self.role.code(),
            self.index
        )
    }
}

impl fmt::Display for ForestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

impl fmt::Display for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant-{:08x}", self.0)
    }
}

impl fmt::Display for IncidentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IcM{:09}", self.0)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forest_names_cycle_regions() {
        assert_eq!(ForestId(3).name(), "LAMPR03");
        assert_eq!(ForestId(0).name(), "NAMPR00");
        assert_eq!(ForestId(5).name(), "NAMPR05");
    }

    #[test]
    fn machine_names_embed_role_and_index() {
        let m = MachineId::new(ForestId(3), MachineRole::Mailbox, 1234);
        assert_eq!(m.name(), "LAMPR03MB1234");
        let fd = MachineId::new(ForestId(1), MachineRole::FrontDoor, 7);
        assert_eq!(fd.name(), "EURPR01FD0007");
        let hb = MachineId::new(ForestId(2), MachineRole::Hub, 42);
        assert_eq!(hb.name(), "APCPR02HB0042");
    }

    #[test]
    fn display_impls_are_stable() {
        assert_eq!(TenantId(0xdead).to_string(), "tenant-0000dead");
        assert_eq!(IncidentId(12345).to_string(), "IcM000012345");
    }

    #[test]
    fn ids_order_by_fields() {
        let a = MachineId::new(ForestId(1), MachineRole::Mailbox, 2);
        let b = MachineId::new(ForestId(1), MachineRole::Mailbox, 3);
        assert!(a < b);
    }
}
