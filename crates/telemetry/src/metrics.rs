//! Time-series metrics with windowed statistics.

use crate::ids::MachineId;
use crate::query::{Scope, TimeWindow};
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One sample of a metric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricPoint {
    /// Sample time.
    pub at: SimTime,
    /// Sample value.
    pub value: f64,
}

/// A single metric series for one machine.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<MetricPoint>,
}

/// Summary statistics over a window of a series (or merged series).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SeriesStats {
    /// Number of samples in the window.
    pub count: usize,
    /// Mean value.
    pub mean: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Most recent value in the window.
    pub last: f64,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Appends a sample; samples should be pushed in time order.
    pub fn push(&mut self, at: SimTime, value: f64) {
        self.points.push(MetricPoint { at, value });
    }

    /// All samples.
    pub fn points(&self) -> &[MetricPoint] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Samples falling in `window`.
    pub fn window(&self, window: TimeWindow) -> impl Iterator<Item = &MetricPoint> {
        self.points.iter().filter(move |p| window.contains(p.at))
    }
}

/// Store of metric series keyed by `(metric name, machine)`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricStore {
    series: BTreeMap<String, BTreeMap<MachineId, TimeSeries>>,
}

impl MetricStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        MetricStore {
            series: BTreeMap::new(),
        }
    }

    /// Records a sample of `metric` on `machine`.
    pub fn record(&mut self, metric: &str, machine: MachineId, at: SimTime, value: f64) {
        self.series
            .entry(metric.to_string())
            .or_default()
            .entry(machine)
            .or_default()
            .push(at, value);
    }

    /// Names of all metrics with at least one sample.
    pub fn metric_names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }

    /// The series of `metric` on `machine`, if any.
    pub fn series(&self, metric: &str, machine: MachineId) -> Option<&TimeSeries> {
        self.series.get(metric)?.get(&machine)
    }

    /// Merged windowed statistics of `metric` over all machines in `scope`.
    ///
    /// Returns `None` when no sample of the metric falls inside the window
    /// and scope.
    pub fn stats(&self, metric: &str, scope: Scope, window: TimeWindow) -> Option<SeriesStats> {
        let per_machine = self.series.get(metric)?;
        let mut samples: Vec<MetricPoint> = Vec::new();
        for (machine, series) in per_machine {
            if scope.contains_machine(*machine) {
                samples.extend(series.window(window).copied());
            }
        }
        if samples.is_empty() {
            return None;
        }
        samples.sort_by_key(|p| p.at);
        let count = samples.len();
        let sum: f64 = samples.iter().map(|p| p.value).sum();
        let min = samples
            .iter()
            .map(|p| p.value)
            .fold(f64::INFINITY, f64::min);
        let max = samples
            .iter()
            .map(|p| p.value)
            .fold(f64::NEG_INFINITY, f64::max);
        let last = samples.last().map(|p| p.value).unwrap_or(0.0);
        Some(SeriesStats {
            count,
            mean: sum / count as f64,
            min,
            max,
            last,
        })
    }

    /// Total number of samples across all series.
    pub fn sample_count(&self) -> usize {
        self.series
            .values()
            .flat_map(|m| m.values())
            .map(TimeSeries::len)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ForestId, MachineRole};

    fn m(idx: u32) -> MachineId {
        MachineId::new(ForestId(0), MachineRole::Hub, idx)
    }

    #[test]
    fn stats_merge_machines_in_scope() {
        let mut store = MetricStore::new();
        store.record("udp_sockets", m(1), SimTime::from_secs(10), 100.0);
        store.record("udp_sockets", m(1), SimTime::from_secs(20), 300.0);
        store.record("udp_sockets", m(2), SimTime::from_secs(15), 200.0);

        let w = TimeWindow::new(SimTime::EPOCH, SimTime::from_secs(100));
        let s = store
            .stats("udp_sockets", Scope::Forest(ForestId(0)), w)
            .unwrap();
        assert_eq!(s.count, 3);
        assert!((s.mean - 200.0).abs() < 1e-9);
        assert_eq!(s.min, 100.0);
        assert_eq!(s.max, 300.0);
        // Last by time is the t=20 sample.
        assert_eq!(s.last, 300.0);

        let s1 = store.stats("udp_sockets", Scope::Machine(m(1)), w).unwrap();
        assert_eq!(s1.count, 2);
    }

    #[test]
    fn stats_none_outside_window_or_for_unknown_metric() {
        let mut store = MetricStore::new();
        store.record("q", m(1), SimTime::from_secs(500), 1.0);
        let w = TimeWindow::new(SimTime::EPOCH, SimTime::from_secs(100));
        assert!(store.stats("q", Scope::Service, w).is_none());
        assert!(store.stats("nope", Scope::Service, w).is_none());
    }

    #[test]
    fn sample_count_sums_everything() {
        let mut store = MetricStore::new();
        for i in 0..5 {
            store.record("a", m(1), SimTime::from_secs(i), i as f64);
        }
        store.record("b", m(2), SimTime::from_secs(1), 1.0);
        assert_eq!(store.sample_count(), 6);
        assert_eq!(store.metric_names().count(), 2);
    }

    #[test]
    fn series_window_filters() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_secs(1), 1.0);
        ts.push(SimTime::from_secs(5), 2.0);
        ts.push(SimTime::from_secs(9), 3.0);
        let w = TimeWindow::new(SimTime::from_secs(2), SimTime::from_secs(9));
        let vals: Vec<f64> = ts.window(w).map(|p| p.value).collect();
        assert_eq!(vals, vec![2.0]);
        assert_eq!(ts.len(), 3);
        assert!(!ts.is_empty());
    }
}
