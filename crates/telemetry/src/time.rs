//! Simulated time.
//!
//! The simulator models one calendar year starting at
//! [`SimTime::EPOCH_YEAR`]-01-01 00:00:00. [`SimTime`] counts seconds since
//! that epoch; [`SimDuration`] is a difference of two instants. Calendar
//! formatting intentionally matches the `M/D/YYYY h:mm:ss AM` style seen in
//! the paper's Figure 6 so that rendered diagnostic text looks like real
//! probe logs.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Days in each month of a non-leap year.
const MONTH_LENGTHS: [u64; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

/// An instant in simulated time, in seconds since the simulation epoch.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in seconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// Calendar year the simulation epoch falls in.
    pub const EPOCH_YEAR: u64 = 2022;

    /// The simulation epoch (start of the simulated year).
    pub const EPOCH: SimTime = SimTime(0);

    /// Creates an instant from raw seconds since the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs)
    }

    /// Creates an instant from whole days since the epoch.
    pub const fn from_days(days: u64) -> Self {
        SimTime(days * 86_400)
    }

    /// Creates an instant from whole hours since the epoch.
    pub const fn from_hours(hours: u64) -> Self {
        SimTime(hours * 3_600)
    }

    /// Seconds since the epoch.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Whole days since the epoch.
    pub const fn days_since_epoch(self) -> u64 {
        self.0 / 86_400
    }

    /// Fractional days since the epoch.
    pub fn days_f64(self) -> f64 {
        self.0 as f64 / 86_400.0
    }

    /// Absolute distance between two instants.
    pub fn abs_diff(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.abs_diff(other.0))
    }

    /// Saturating subtraction of a duration.
    pub fn saturating_sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }

    /// Calendar date of this instant as `(year, month, day)`, 1-based.
    ///
    /// The simulated year is treated as non-leap; instants past day 364
    /// roll into subsequent (also non-leap) years.
    pub fn date(self) -> (u64, u64, u64) {
        let mut days = self.days_since_epoch();
        let year = Self::EPOCH_YEAR + days / 365;
        days %= 365;
        for (month, len) in (1..).zip(MONTH_LENGTHS) {
            if days < len {
                return (year, month, days + 1);
            }
            days -= len;
        }
        unreachable!("day index < 365 always lands inside a month");
    }

    /// Time of day as `(hour, minute, second)` (24-hour clock).
    pub fn time_of_day(self) -> (u64, u64, u64) {
        let s = self.0 % 86_400;
        (s / 3_600, (s % 3_600) / 60, s % 60)
    }

    /// Formats like `11/21/2022 2:04:20 AM`, the style of probe logs in the
    /// paper's Figure 6.
    pub fn format_us(self) -> String {
        let (y, mo, d) = self.date();
        let (h24, mi, s) = self.time_of_day();
        let (h12, ampm) = match h24 {
            0 => (12, "AM"),
            1..=11 => (h24, "AM"),
            12 => (12, "PM"),
            _ => (h24 - 12, "PM"),
        };
        format!("{mo}/{d}/{y} {h12}:{mi:02}:{s:02} {ampm}")
    }

    /// Formats like `2022-11-21T02:04:20Z` for structured log records.
    pub fn format_iso(self) -> String {
        let (y, mo, d) = self.date();
        let (h, mi, s) = self.time_of_day();
        format!("{y:04}-{mo:02}-{d:02}T{h:02}:{mi:02}:{s:02}Z")
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs)
    }

    /// Creates a duration from minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60)
    }

    /// Creates a duration from hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3_600)
    }

    /// Creates a duration from days.
    pub const fn from_days(days: u64) -> Self {
        SimDuration(days * 86_400)
    }

    /// Length in seconds.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Length in fractional days (the unit of the paper's `α`).
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / 86_400.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.format_iso())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0;
        if s >= 86_400 {
            write!(f, "{}d{}h", s / 86_400, (s % 86_400) / 3_600)
        } else if s >= 3_600 {
            write!(f, "{}h{}m", s / 3_600, (s % 3_600) / 60)
        } else if s >= 60 {
            write!(f, "{}m{}s", s / 60, s % 60)
        } else {
            write!(f, "{s}s")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_january_first() {
        assert_eq!(SimTime::EPOCH.date(), (2022, 1, 1));
        assert_eq!(SimTime::EPOCH.time_of_day(), (0, 0, 0));
    }

    #[test]
    fn date_rolls_across_months() {
        // Day 31 (0-based) is February 1st.
        assert_eq!(SimTime::from_days(31).date(), (2022, 2, 1));
        // Day 58 is February 28th, day 59 is March 1st (non-leap year).
        assert_eq!(SimTime::from_days(58).date(), (2022, 2, 28));
        assert_eq!(SimTime::from_days(59).date(), (2022, 3, 1));
        // Day 364 is December 31st.
        assert_eq!(SimTime::from_days(364).date(), (2022, 12, 31));
    }

    #[test]
    fn date_rolls_across_years() {
        assert_eq!(SimTime::from_days(365).date(), (2023, 1, 1));
        assert_eq!(SimTime::from_days(365 + 31).date(), (2023, 2, 1));
    }

    #[test]
    fn us_format_matches_paper_style() {
        // 2:04:20 AM on day 324 (Nov 21).
        let t = SimTime::from_days(324) + SimDuration::from_secs(2 * 3600 + 4 * 60 + 20);
        assert_eq!(t.format_us(), "11/21/2022 2:04:20 AM");
    }

    #[test]
    fn us_format_handles_noon_and_midnight() {
        assert_eq!(SimTime::from_secs(0).format_us(), "1/1/2022 12:00:00 AM");
        assert_eq!(SimTime::from_hours(12).format_us(), "1/1/2022 12:00:00 PM");
        assert_eq!(
            (SimTime::from_hours(13) + SimDuration::from_mins(5)).format_us(),
            "1/1/2022 1:05:00 PM"
        );
    }

    #[test]
    fn iso_format_is_sortable() {
        let a = SimTime::from_secs(10);
        let b = SimTime::from_secs(100_000);
        assert!(a.format_iso() < b.format_iso());
    }

    #[test]
    fn arithmetic_is_saturating_on_subtraction() {
        let t = SimTime::from_secs(5);
        assert_eq!((t - SimDuration::from_secs(10)).as_secs(), 0);
        assert_eq!(t.abs_diff(SimTime::from_secs(9)).as_secs(), 4);
    }

    #[test]
    fn duration_display_units() {
        assert_eq!(SimDuration::from_secs(42).to_string(), "42s");
        assert_eq!(SimDuration::from_mins(3).to_string(), "3m0s");
        assert_eq!(SimDuration::from_hours(2).to_string(), "2h0m");
        assert_eq!(SimDuration::from_days(1).to_string(), "1d0h");
    }

    #[test]
    fn duration_day_conversion_used_by_alpha() {
        assert!((SimDuration::from_days(3).as_days_f64() - 3.0).abs() < 1e-12);
        assert!((SimDuration::from_hours(12).as_days_f64() - 0.5).abs() < 1e-12);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn date_components_are_valid(secs in 0u64..(3 * 365 * 86_400)) {
            let t = SimTime::from_secs(secs);
            let (y, m, d) = t.date();
            prop_assert!((2022..=2025).contains(&y));
            prop_assert!((1..=12).contains(&m));
            prop_assert!((1..=31).contains(&d));
            let (h, mi, s) = t.time_of_day();
            prop_assert!(h < 24 && mi < 60 && s < 60);
        }

        #[test]
        fn iso_format_orders_like_time(a in 0u64..10_000_000, b in 0u64..10_000_000) {
            let (ta, tb) = (SimTime::from_secs(a), SimTime::from_secs(b));
            prop_assert_eq!(a.cmp(&b), ta.format_iso().cmp(&tb.format_iso()));
        }

        #[test]
        fn abs_diff_is_symmetric(a in 0u64..10_000_000, b in 0u64..10_000_000) {
            let (ta, tb) = (SimTime::from_secs(a), SimTime::from_secs(b));
            prop_assert_eq!(ta.abs_diff(tb), tb.abs_diff(ta));
            prop_assert_eq!(ta.abs_diff(tb).as_secs(), a.abs_diff(b));
        }

        #[test]
        fn day_roundtrip(days in 0u64..1000) {
            prop_assert_eq!(SimTime::from_days(days).days_since_epoch(), days);
        }
    }
}
