//! Fault injection for telemetry queries.
//!
//! Real diagnostic back-ends fail: log stores time out, metric services
//! return partial scans, replicas serve stale windows, and whole regions
//! of a data source go dark during an outage. This module defines the
//! vocabulary for injecting such failures *deterministically* into query
//! answering, so the collection stage's resilience (retries, deadlines,
//! circuit breakers, graceful degradation — see `rcacopilot-handlers`)
//! can be exercised and measured:
//!
//! - [`DataSource`]: the back-end a [`Query`] reads from (one per store
//!   of the [`TelemetrySnapshot`](crate::snapshot::TelemetrySnapshot)).
//! - [`FaultDecision`]: what an injector does to one query attempt.
//! - [`FaultCause`]: why a query failed or degraded, rendered into the
//!   diagnostic text as `[data unavailable: <cause>]` sections.
//! - [`QueryOutcome`]: the fallible result of a faulted query — ok,
//!   partial (data returned but degraded), or failed.
//! - [`FaultInjector`]: the trait concrete fault plans implement
//!   (`rcacopilot-simcloud` provides the seeded `FaultPlan`); [`NoFaults`]
//!   is the identity injector used on the fault-free path.
//!
//! Determinism is a hard requirement: an injector's decision may depend
//! only on its own state and the `(source, scope, window, attempt)`
//! tuple, never on wall-clock time, so a fixed seed reproduces the exact
//! same degraded run.

use crate::query::{Query, Scope, TimeWindow};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The diagnostic back-end a query reads from.
///
/// Each variant corresponds to one store of the telemetry snapshot;
/// faults are injected (and circuit breakers tripped) per source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DataSource {
    /// Semi-structured log records.
    Logs,
    /// Time-series metrics.
    Metrics,
    /// Request traces.
    Traces,
    /// Aggregated thread stacks.
    Stacks,
    /// Synthetic probe results.
    Probes,
    /// Socket usage tables.
    Sockets,
    /// Disk usage records.
    Disks,
    /// Queue statistics.
    Queues,
    /// Certificate inventory.
    Certificates,
    /// Tenant configuration records.
    TenantConfigs,
    /// Machine provisioning records.
    Provisioning,
    /// Per-process health records.
    Processes,
}

impl DataSource {
    /// Every data source, in declaration order.
    pub const ALL: [DataSource; 12] = [
        DataSource::Logs,
        DataSource::Metrics,
        DataSource::Traces,
        DataSource::Stacks,
        DataSource::Probes,
        DataSource::Sockets,
        DataSource::Disks,
        DataSource::Queues,
        DataSource::Certificates,
        DataSource::TenantConfigs,
        DataSource::Provisioning,
        DataSource::Processes,
    ];

    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            DataSource::Logs => "logs",
            DataSource::Metrics => "metrics",
            DataSource::Traces => "traces",
            DataSource::Stacks => "stacks",
            DataSource::Probes => "probes",
            DataSource::Sockets => "sockets",
            DataSource::Disks => "disks",
            DataSource::Queues => "queues",
            DataSource::Certificates => "certificates",
            DataSource::TenantConfigs => "tenant-configs",
            DataSource::Provisioning => "provisioning",
            DataSource::Processes => "processes",
        }
    }

    /// Stable index into [`DataSource::ALL`], used by seeded fault plans.
    pub fn index(&self) -> usize {
        DataSource::ALL
            .iter()
            .position(|s| s == self)
            .unwrap_or_default()
    }
}

impl fmt::Display for DataSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl Query {
    /// The back-end data source this query reads from.
    pub fn data_source(&self) -> DataSource {
        match self {
            Query::Logs { .. } => DataSource::Logs,
            Query::MetricStats { .. } => DataSource::Metrics,
            Query::SocketsByProcess { .. } => DataSource::Sockets,
            Query::ThreadStacks { .. } => DataSource::Stacks,
            Query::ProbeResults { .. } => DataSource::Probes,
            Query::DiskUsage => DataSource::Disks,
            Query::QueueStats { .. } | Query::OverLimitQueues => DataSource::Queues,
            Query::Certificates => DataSource::Certificates,
            Query::TenantConfigs => DataSource::TenantConfigs,
            Query::ProvisioningStatus => DataSource::Provisioning,
            Query::TraceFailures { .. } => DataSource::Traces,
            Query::ProcessCrashes => DataSource::Processes,
        }
    }
}

/// What a fault injector does to one query attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultDecision {
    /// Answer normally.
    None,
    /// The query never returns within its deadline.
    Timeout,
    /// Only a fraction of the result survives (per-mille kept, so the
    /// decision stays `Eq` and hashable).
    PartialRows {
        /// Rows/lines kept, out of 1000.
        keep_per_mille: u16,
    },
    /// The store answers from a replica lagging behind the query window.
    StaleWindow {
        /// Replication lag in seconds.
        lag_secs: u64,
    },
    /// The data source is down; the query fails immediately.
    Unavailable,
}

/// Why a query failed or returned degraded data.
///
/// The executor renders failed causes into diagnostic text as
/// `[data unavailable: <cause>]` sections. [`FaultCause::CircuitOpen`]
/// and [`FaultCause::BudgetExhausted`] are produced by the resilient
/// executor itself, not by injectors, but they share this taxonomy so
/// every degraded section renders uniformly.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultCause {
    /// The query exceeded its per-action deadline.
    Timeout,
    /// The result was truncated by the back-end.
    PartialRows {
        /// Rows/lines that survived.
        kept: usize,
        /// Rows/lines dropped.
        dropped: usize,
    },
    /// The result came from a replica lagging behind the alert window.
    StaleWindow {
        /// Replication lag in seconds.
        lag_secs: u64,
    },
    /// The data source was unavailable.
    SourceUnavailable {
        /// Which source.
        source: DataSource,
    },
    /// The executor's circuit breaker for this source was open, so the
    /// query was not attempted.
    CircuitOpen {
        /// Which source.
        source: DataSource,
    },
    /// The handler's whole-run time budget was exhausted before this
    /// query could run (or finish retrying).
    BudgetExhausted {
        /// The configured budget in virtual milliseconds.
        budget_ms: u64,
    },
}

impl fmt::Display for FaultCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultCause::Timeout => write!(f, "query timed out"),
            FaultCause::PartialRows { kept, dropped } => {
                write!(
                    f,
                    "partial result, {dropped} of {} rows dropped",
                    kept + dropped
                )
            }
            FaultCause::StaleWindow { lag_secs } => {
                write!(f, "stale replica, window lagging {lag_secs}s")
            }
            FaultCause::SourceUnavailable { source } => {
                write!(f, "source {source} unavailable")
            }
            FaultCause::CircuitOpen { source } => {
                write!(f, "circuit breaker open for source {source}")
            }
            FaultCause::BudgetExhausted { budget_ms } => {
                write!(f, "handler budget of {budget_ms}ms exhausted")
            }
        }
    }
}

/// Result of answering a query under fault injection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QueryOutcome {
    /// The query answered normally.
    Ok(crate::query::QueryResult),
    /// Data came back, but degraded (truncated or stale).
    Partial {
        /// The degraded result.
        result: crate::query::QueryResult,
        /// Why it is degraded.
        cause: FaultCause,
    },
    /// No data came back.
    Failed {
        /// Why the query failed.
        cause: FaultCause,
    },
}

impl QueryOutcome {
    /// True for [`QueryOutcome::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, QueryOutcome::Ok(_))
    }

    /// The result, if any data came back (ok or partial).
    pub fn result(&self) -> Option<&crate::query::QueryResult> {
        match self {
            QueryOutcome::Ok(r) | QueryOutcome::Partial { result: r, .. } => Some(r),
            QueryOutcome::Failed { .. } => None,
        }
    }

    /// The fault cause, if the outcome is not fully ok.
    pub fn cause(&self) -> Option<&FaultCause> {
        match self {
            QueryOutcome::Ok(_) => None,
            QueryOutcome::Partial { cause, .. } | QueryOutcome::Failed { cause } => Some(cause),
        }
    }
}

/// A deterministic fault source for query answering.
///
/// Implementations must be pure functions of their own state and the
/// argument tuple — no wall-clock, no interior mutability observable
/// across calls — so that a fixed plan replays identically.
pub trait FaultInjector: fmt::Debug + Send + Sync {
    /// Decides the fate of one query attempt. `attempt` is 1-based; an
    /// injector modelling transient faults should re-roll per attempt so
    /// retries can succeed.
    fn decide(
        &self,
        source: DataSource,
        scope: Scope,
        window: TimeWindow,
        attempt: u32,
    ) -> FaultDecision;
}

/// The identity injector: never faults. This is what the fault-free
/// pipeline runs with, keeping the degraded and healthy paths on the
/// same code path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoFaults;

impl FaultInjector for NoFaults {
    fn decide(&self, _: DataSource, _: Scope, _: TimeWindow, _: u32) -> FaultDecision {
        FaultDecision::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogLevel;

    #[test]
    fn every_query_kind_maps_to_a_source() {
        let queries = [
            Query::Logs {
                level: LogLevel::Error,
                contains: None,
                limit: 5,
            },
            Query::MetricStats {
                metric: "availability".into(),
            },
            Query::SocketsByProcess {
                protocol: "udp".into(),
                top: 3,
            },
            Query::ThreadStacks { process: None },
            Query::ProbeResults {
                probe: "OutboundProxy".into(),
            },
            Query::DiskUsage,
            Query::QueueStats {
                queue: "submission".into(),
            },
            Query::OverLimitQueues,
            Query::Certificates,
            Query::TenantConfigs,
            Query::ProvisioningStatus,
            Query::TraceFailures { top: 3 },
            Query::ProcessCrashes,
        ];
        for q in &queries {
            let s = q.data_source();
            assert!(DataSource::ALL.contains(&s), "{:?}", q.kind());
            assert_eq!(DataSource::ALL[s.index()], s);
        }
    }

    #[test]
    fn causes_render_human_readable() {
        assert_eq!(FaultCause::Timeout.to_string(), "query timed out");
        assert_eq!(
            FaultCause::PartialRows {
                kept: 3,
                dropped: 7
            }
            .to_string(),
            "partial result, 7 of 10 rows dropped"
        );
        assert!(FaultCause::SourceUnavailable {
            source: DataSource::Probes
        }
        .to_string()
        .contains("probes"));
        assert!(FaultCause::BudgetExhausted { budget_ms: 500 }
            .to_string()
            .contains("500ms"));
    }

    #[test]
    fn no_faults_is_always_none() {
        let w = TimeWindow::new(
            crate::time::SimTime::EPOCH,
            crate::time::SimTime::from_days(1),
        );
        for s in DataSource::ALL {
            for attempt in 1..4 {
                assert_eq!(
                    NoFaults.decide(s, Scope::Service, w, attempt),
                    FaultDecision::None
                );
            }
        }
    }

    #[test]
    fn causes_round_trip_serde() {
        for c in [
            FaultCause::Timeout,
            FaultCause::StaleWindow { lag_secs: 600 },
            FaultCause::CircuitOpen {
                source: DataSource::Queues,
            },
        ] {
            let json = serde_json::to_string(&c).unwrap();
            assert_eq!(c, serde_json::from_str::<FaultCause>(&json).unwrap());
        }
    }
}
