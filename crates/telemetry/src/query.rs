//! The query language handler actions are written in.
//!
//! Handlers are persisted, versioned documents (paper §4.1.1), so the
//! queries they embed must be serializable data — not closures. [`Query`]
//! enumerates every kind of lookup a handler action can make against a
//! [`crate::snapshot::TelemetrySnapshot`]; [`QueryResult`] is the
//! key-value-table-plus-text output described in §4.1.2 ("Query action can
//! query data from different sources and output the query result as a
//! key-value pair table").

use crate::ids::{ForestId, MachineId};
use crate::log::LogLevel;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The scope of an alert or a query (paper Figure 5 switches between
/// forest- and machine-level scopes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Scope {
    /// A single machine.
    Machine(MachineId),
    /// A whole forest.
    Forest(ForestId),
    /// The entire service (all forests) — the widest, default scope.
    #[default]
    Service,
}

impl Scope {
    /// True if `machine` falls inside this scope.
    pub fn contains_machine(&self, machine: MachineId) -> bool {
        match self {
            Scope::Machine(m) => *m == machine,
            Scope::Forest(f) => machine.forest == *f,
            Scope::Service => true,
        }
    }

    /// The forest this scope lives in, if it is narrower than the service.
    pub fn forest(&self) -> Option<ForestId> {
        match self {
            Scope::Machine(m) => Some(m.forest),
            Scope::Forest(f) => Some(*f),
            Scope::Service => None,
        }
    }

    /// Widens a machine scope to its forest; leaves other scopes alone.
    pub fn widened(&self) -> Scope {
        match self {
            Scope::Machine(m) => Scope::Forest(m.forest),
            other => *other,
        }
    }

    /// Short label used in alert text, e.g. `machine NAMPR03MB0012`.
    pub fn label(&self) -> String {
        match self {
            Scope::Machine(m) => format!("machine {m}"),
            Scope::Forest(f) => format!("forest {f}"),
            Scope::Service => "service".to_string(),
        }
    }
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// A half-open time window `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimeWindow {
    /// Inclusive start.
    pub start: SimTime,
    /// Exclusive end.
    pub end: SimTime,
}

impl TimeWindow {
    /// Creates a window; callers must pass `start <= end`.
    pub fn new(start: SimTime, end: SimTime) -> Self {
        debug_assert!(start <= end, "window start must not exceed end");
        TimeWindow { start, end }
    }

    /// The window of length `lookback` seconds ending at `at`.
    pub fn lookback(at: SimTime, lookback_secs: u64) -> Self {
        TimeWindow {
            start: at.saturating_sub(crate::time::SimDuration::from_secs(lookback_secs)),
            end: at,
        }
    }

    /// True if `t` lies inside the window.
    pub fn contains(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }

    /// Window length in seconds.
    pub fn len_secs(&self) -> u64 {
        self.end.as_secs().saturating_sub(self.start.as_secs())
    }
}

/// A single query a handler action can run against a telemetry snapshot.
///
/// All scope-sensitive queries use the *current* scope of the running
/// handler (set by scope-switching actions) rather than embedding one, so
/// the same action is reusable across handlers (paper §4.1.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Query {
    /// Fetch log records at or above `level` whose message contains
    /// `contains` (if given), newest first, at most `limit`.
    Logs {
        /// Minimum severity of returned records.
        level: LogLevel,
        /// Substring filter on the message, if any.
        contains: Option<String>,
        /// Maximum number of records returned.
        limit: usize,
    },
    /// Windowed statistics (count/mean/max/last) of a named metric.
    MetricStats {
        /// Metric name, e.g. `submission_queue_length`.
        metric: String,
    },
    /// Per-process breakdown of socket usage (paper Figure 6's
    /// "Total UDP socket count by process").
    SocketsByProcess {
        /// Protocol to report, `"udp"` or `"tcp"`.
        protocol: String,
        /// Number of top processes to list.
        top: usize,
    },
    /// Aggregate managed-thread stacks by identical frames (paper §4.1.2's
    /// deadlock/blocking-path query).
    ThreadStacks {
        /// Restrict to one process name, if given.
        process: Option<String>,
    },
    /// Recent monitor-probe results for a named probe.
    ProbeResults {
        /// Probe name, e.g. `DatacenterHubOutboundProxyProbe`.
        probe: String,
    },
    /// Disk usage per volume.
    DiskUsage,
    /// Statistics of a named message queue.
    QueueStats {
        /// Queue name, e.g. `submission` or `mailbox_delivery`.
        queue: String,
    },
    /// Every queue currently above its configured limit, regardless of
    /// name — the first thing an OCE asks on a backlog alert.
    OverLimitQueues,
    /// Certificates visible in the scope (status, domain, tenant).
    Certificates,
    /// Tenant transport configuration records (validity flagged).
    TenantConfigs,
    /// Provisioning status of machines in scope.
    ProvisioningStatus,
    /// Recent request-trace failures grouped by service hop.
    TraceFailures {
        /// Number of failure groups to report.
        top: usize,
    },
    /// Recently crashed processes with crash counts.
    ProcessCrashes,
}

impl Query {
    /// Stable short name for display and for keying action outputs.
    pub fn kind(&self) -> &'static str {
        match self {
            Query::Logs { .. } => "logs",
            Query::MetricStats { .. } => "metric_stats",
            Query::SocketsByProcess { .. } => "sockets_by_process",
            Query::ThreadStacks { .. } => "thread_stacks",
            Query::ProbeResults { .. } => "probe_results",
            Query::DiskUsage => "disk_usage",
            Query::QueueStats { .. } => "queue_stats",
            Query::OverLimitQueues => "over_limit_queues",
            Query::Certificates => "certificates",
            Query::TenantConfigs => "tenant_configs",
            Query::ProvisioningStatus => "provisioning_status",
            Query::TraceFailures { .. } => "trace_failures",
            Query::ProcessCrashes => "process_crashes",
        }
    }
}

/// The output of a query: a titled key-value table plus rendered text.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct QueryResult {
    /// Section title, e.g. `DatacenterHubOutboundProxyProbe probe log result`.
    pub title: String,
    /// Key-value rows (paper §4.1.2: "output the query result as a
    /// key-value pair table").
    pub rows: Vec<(String, String)>,
    /// Free-form rendered text (log excerpts, stack traces, ...).
    pub text: String,
}

impl QueryResult {
    /// Creates an empty result with a title.
    pub fn titled(title: impl Into<String>) -> Self {
        QueryResult {
            title: title.into(),
            rows: Vec::new(),
            text: String::new(),
        }
    }

    /// Appends a key-value row.
    pub fn push_row(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.rows.push((key.into(), value.into()));
    }

    /// Appends a line of free text.
    pub fn push_line(&mut self, line: impl AsRef<str>) {
        self.text.push_str(line.as_ref());
        self.text.push('\n');
    }

    /// Returns the value of the first row with key `key`, if any.
    pub fn row(&self, key: &str) -> Option<&str> {
        self.rows
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// True if the result carries neither rows nor text.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty() && self.text.trim().is_empty()
    }

    /// Renders the full section (title, rows, text) as diagnostic text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        for (k, v) in &self.rows {
            out.push_str(k);
            out.push_str(": ");
            out.push_str(v);
            out.push('\n');
        }
        if !self.text.is_empty() {
            out.push_str(&self.text);
            if !self.text.ends_with('\n') {
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{MachineRole, TenantId};

    fn machine() -> MachineId {
        MachineId::new(ForestId(2), MachineRole::Hub, 7)
    }

    #[test]
    fn scope_containment() {
        let m = machine();
        assert!(Scope::Machine(m).contains_machine(m));
        assert!(Scope::Forest(ForestId(2)).contains_machine(m));
        assert!(!Scope::Forest(ForestId(3)).contains_machine(m));
        assert!(Scope::Service.contains_machine(m));
    }

    #[test]
    fn scope_widening_goes_machine_to_forest() {
        let m = machine();
        assert_eq!(Scope::Machine(m).widened(), Scope::Forest(ForestId(2)));
        assert_eq!(Scope::Service.widened(), Scope::Service);
    }

    #[test]
    fn window_contains_is_half_open() {
        let w = TimeWindow::new(SimTime::from_secs(10), SimTime::from_secs(20));
        assert!(w.contains(SimTime::from_secs(10)));
        assert!(w.contains(SimTime::from_secs(19)));
        assert!(!w.contains(SimTime::from_secs(20)));
        assert_eq!(w.len_secs(), 10);
    }

    #[test]
    fn lookback_window_saturates_at_epoch() {
        let w = TimeWindow::lookback(SimTime::from_secs(5), 100);
        assert_eq!(w.start, SimTime::EPOCH);
        assert_eq!(w.end, SimTime::from_secs(5));
    }

    #[test]
    fn query_result_rendering_includes_all_parts() {
        let mut r = QueryResult::titled("Disk usage");
        r.push_row("volume C:", "97%");
        r.push_line("IOException observed on C:\\logs");
        let rendered = r.render();
        assert!(rendered.starts_with("Disk usage\n"));
        assert!(rendered.contains("volume C:: 97%"));
        assert!(rendered.contains("IOException observed"));
        assert_eq!(r.row("volume C:"), Some("97%"));
        assert!(!r.is_empty());
    }

    #[test]
    fn queries_round_trip_through_serde() {
        let q = Query::Logs {
            level: LogLevel::Error,
            contains: Some("WinSock".into()),
            limit: 10,
        };
        let json = serde_json::to_string(&q).unwrap();
        let back: Query = serde_json::from_str(&json).unwrap();
        assert_eq!(q, back);
        assert_eq!(q.kind(), "logs");
        let _ = TenantId(1); // Exercised for import completeness.
    }
}
