//! Per-incident telemetry snapshots: the data handler actions query.
//!
//! When a monitor raises an alert, the collection stage operates on the
//! service state *around the alert time*. [`TelemetrySnapshot`] captures
//! that state — every store from this crate — and knows how to execute a
//! [`Query`] against it, producing the titled key-value tables that make up
//! the diagnostic information (paper Figure 6).

use crate::artifacts::{
    CertificateRecord, DiskUsage, ProbeResult, ProcessInfo, ProvisioningRecord, QueueStat,
    SocketStat, StackGroup, TenantConfigRecord,
};
use crate::fault::{FaultCause, FaultDecision, FaultInjector, QueryOutcome};
use crate::log::{LogLevel, LogStore};
use crate::metrics::MetricStore;
use crate::query::{Query, QueryResult, Scope, TimeWindow};
use crate::time::SimTime;
use crate::trace::TraceStore;
use serde::{Deserialize, Serialize};

/// All telemetry visible to handlers for one incident.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// When the snapshot was taken (the alert time).
    pub taken_at: SimTime,
    /// Log records around the alert.
    pub logs: LogStore,
    /// Metric samples around the alert.
    pub metrics: MetricStore,
    /// Request traces around the alert.
    pub traces: TraceStore,
    /// Aggregated thread-stack groups.
    pub stacks: Vec<StackGroup>,
    /// Synthetic-probe results.
    pub probes: Vec<ProbeResult>,
    /// Socket usage records.
    pub sockets: Vec<SocketStat>,
    /// Disk usage records.
    pub disks: Vec<DiskUsage>,
    /// Queue statistics.
    pub queues: Vec<QueueStat>,
    /// Certificates in scope.
    pub certs: Vec<CertificateRecord>,
    /// Tenant configuration records.
    pub tenant_configs: Vec<TenantConfigRecord>,
    /// Machine provisioning records.
    pub provisioning: Vec<ProvisioningRecord>,
    /// Per-process health records.
    pub processes: Vec<ProcessInfo>,
}

impl TelemetrySnapshot {
    /// Creates an empty snapshot taken at `taken_at`.
    pub fn new(taken_at: SimTime) -> Self {
        TelemetrySnapshot {
            taken_at,
            ..TelemetrySnapshot::default()
        }
    }

    /// Executes `query` over `scope` and `window`, rendering a result
    /// section. Every query kind always returns a section (possibly noting
    /// that nothing matched) so handler control flow can branch on content.
    pub fn execute(&self, query: &Query, scope: Scope, window: TimeWindow) -> QueryResult {
        match query {
            Query::Logs {
                level,
                contains,
                limit,
            } => self.q_logs(scope, window, *level, contains.as_deref(), *limit),
            Query::MetricStats { metric } => self.q_metric_stats(metric, scope, window),
            Query::SocketsByProcess { protocol, top } => self.q_sockets(scope, protocol, *top),
            Query::ThreadStacks { process } => self.q_thread_stacks(scope, process.as_deref()),
            Query::ProbeResults { probe } => self.q_probes(scope, window, probe),
            Query::DiskUsage => self.q_disks(scope),
            Query::QueueStats { queue } => self.q_queues(scope, queue),
            Query::OverLimitQueues => self.q_over_limit_queues(scope),
            Query::Certificates => self.q_certs(),
            Query::TenantConfigs => self.q_tenant_configs(),
            Query::ProvisioningStatus => self.q_provisioning(scope),
            Query::TraceFailures { top } => self.q_trace_failures(scope, window, *top),
            Query::ProcessCrashes => self.q_process_crashes(scope),
        }
    }

    /// Executes `query` through a fault injector, producing a fallible
    /// [`QueryOutcome`] instead of an infallible result.
    ///
    /// With [`crate::fault::NoFaults`] this is exactly [`execute`]
    /// wrapped in [`QueryOutcome::Ok`] — the fault-free path produces
    /// byte-identical results. `attempt` is 1-based and forwarded to the
    /// injector so transient faults can clear on retry.
    ///
    /// [`execute`]: TelemetrySnapshot::execute
    pub fn execute_faulted(
        &self,
        query: &Query,
        scope: Scope,
        window: TimeWindow,
        faults: &dyn FaultInjector,
        attempt: u32,
    ) -> QueryOutcome {
        let source = query.data_source();
        match faults.decide(source, scope, window, attempt) {
            FaultDecision::None => QueryOutcome::Ok(self.execute(query, scope, window)),
            FaultDecision::Timeout => QueryOutcome::Failed {
                cause: FaultCause::Timeout,
            },
            FaultDecision::Unavailable => QueryOutcome::Failed {
                cause: FaultCause::SourceUnavailable { source },
            },
            FaultDecision::StaleWindow { lag_secs } => {
                let lag = crate::time::SimDuration::from_secs(lag_secs);
                let stale = TimeWindow::new(
                    window.start.saturating_sub(lag),
                    window.end.saturating_sub(lag),
                );
                QueryOutcome::Partial {
                    result: self.execute(query, scope, stale),
                    cause: FaultCause::StaleWindow { lag_secs },
                }
            }
            FaultDecision::PartialRows { keep_per_mille } => {
                let full = self.execute(query, scope, window);
                let (result, kept, dropped) = truncate_result(full, keep_per_mille);
                QueryOutcome::Partial {
                    result,
                    cause: FaultCause::PartialRows { kept, dropped },
                }
            }
        }
    }

    fn q_logs(
        &self,
        scope: Scope,
        window: TimeWindow,
        level: LogLevel,
        contains: Option<&str>,
        limit: usize,
    ) -> QueryResult {
        let mut r = QueryResult::titled(format!("Error log query ({level} and above) on {scope}"));
        let hits = self.logs.query(scope, window, level, contains, limit);
        r.push_row("Matching records", hits.len().to_string());
        if hits.is_empty() {
            r.push_line("No matching log records in window.");
        }
        for h in hits {
            r.push_line(h.render());
        }
        r
    }

    fn q_metric_stats(&self, metric: &str, scope: Scope, window: TimeWindow) -> QueryResult {
        let mut r = QueryResult::titled(format!("Metric {metric} on {scope}"));
        match self.metrics.stats(metric, scope, window) {
            Some(s) => {
                r.push_row("Samples", s.count.to_string());
                r.push_row("Mean", format!("{:.1}", s.mean));
                r.push_row("Max", format!("{:.1}", s.max));
                r.push_row("Last", format!("{:.1}", s.last));
            }
            None => r.push_line(format!("No samples of {metric} in window.")),
        }
        r
    }

    fn q_sockets(&self, scope: Scope, protocol: &str, top: usize) -> QueryResult {
        let mut matching: Vec<&SocketStat> = self
            .sockets
            .iter()
            .filter(|s| s.protocol == protocol && scope.contains_machine(s.machine))
            .collect();
        matching.sort_by_key(|s| std::cmp::Reverse(s.count));
        let total: u64 = matching.iter().map(|s| s.count).sum();
        let proto_upper = protocol.to_uppercase();
        let mut r = QueryResult::titled(format!("Socket usage ({proto_upper}) on {scope}"));
        r.push_row(
            format!("Total {proto_upper} socket count"),
            total.to_string(),
        );
        r.push_line(format!(
            "Total {proto_upper} socket count by process and processId (top {top} only):"
        ));
        for s in matching.iter().take(top) {
            r.push_line(format!("{}: {}, {}", s.count, s.process, s.pid));
        }
        r
    }

    fn q_thread_stacks(&self, scope: Scope, process: Option<&str>) -> QueryResult {
        let mut r = QueryResult::titled(format!("Aggregated thread stacks on {scope}"));
        let mut shown = 0;
        for g in &self.stacks {
            if !scope.contains_machine(g.machine) {
                continue;
            }
            if let Some(p) = process {
                if g.process != p {
                    continue;
                }
            }
            r.push_line(g.render());
            shown += 1;
        }
        r.push_row("Stack groups", shown.to_string());
        if shown == 0 {
            r.push_line("No thread stack groups captured.");
        }
        r
    }

    fn q_probes(&self, scope: Scope, window: TimeWindow, probe: &str) -> QueryResult {
        let matching: Vec<&ProbeResult> = self
            .probes
            .iter()
            .filter(|p| {
                p.probe == probe && scope.contains_machine(p.machine) && window.contains(p.at)
            })
            .collect();
        let failed = matching.iter().filter(|p| !p.success).count();
        let mut r = QueryResult::titled(format!("{probe} probe log result from {scope}"));
        r.push_row("Total Probes", matching.len().to_string());
        r.push_row("Failed Probes", failed.to_string());
        for p in &matching {
            let status = if p.success {
                "Probe result OK"
            } else {
                "Probe result Error"
            };
            r.push_line(format!("{} {}", p.at.format_us(), status));
        }
        if let Some(err) = matching.iter().filter_map(|p| p.error.as_ref()).next() {
            r.push_line("Failed probe error:");
            r.push_line(err);
            r.push_row("Count", failed.to_string());
        }
        r
    }

    fn q_disks(&self, scope: Scope) -> QueryResult {
        let mut r = QueryResult::titled(format!("Disk usage on {scope}"));
        let mut matching: Vec<&DiskUsage> = self
            .disks
            .iter()
            .filter(|d| scope.contains_machine(d.machine))
            .collect();
        matching.sort_by(|a, b| {
            b.used_pct
                .partial_cmp(&a.used_pct)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for d in matching.iter().take(10) {
            r.push_row(
                format!("{} {}", d.machine, d.volume),
                format!(
                    "{:.1}% used, {} MB free",
                    d.used_pct,
                    d.free_bytes / (1 << 20)
                ),
            );
        }
        if matching.is_empty() {
            r.push_line("No disk usage records.");
        }
        r
    }

    fn q_queues(&self, scope: Scope, queue: &str) -> QueryResult {
        let mut r = QueryResult::titled(format!("Queue {queue} statistics on {scope}"));
        let matching: Vec<&QueueStat> = self
            .queues
            .iter()
            .filter(|q| q.queue == queue && scope.contains_machine(q.machine))
            .collect();
        let total: u64 = matching.iter().map(|q| q.length).sum();
        let over = matching.iter().filter(|q| q.over_limit()).count();
        let oldest = matching
            .iter()
            .map(|q| q.oldest_age_secs)
            .max()
            .unwrap_or(0);
        r.push_row("Queues sampled", matching.len().to_string());
        r.push_row("Total queued messages", total.to_string());
        r.push_row("Queues over limit", over.to_string());
        r.push_row("Oldest message age (s)", oldest.to_string());
        for q in matching.iter().take(5) {
            r.push_line(format!(
                "{}: length {} (limit {}), oldest {}s",
                q.machine, q.length, q.limit, q.oldest_age_secs
            ));
        }
        r
    }

    fn q_over_limit_queues(&self, scope: Scope) -> QueryResult {
        let mut r = QueryResult::titled(format!("Queues over limit on {scope}"));
        let mut matching: Vec<&QueueStat> = self
            .queues
            .iter()
            .filter(|q| q.over_limit() && scope.contains_machine(q.machine))
            .collect();
        matching.sort_by_key(|q| std::cmp::Reverse(q.length));
        r.push_row("Queues over limit", matching.len().to_string());
        for q in matching.iter().take(6) {
            r.push_line(format!(
                "queue {} on {}: length {} exceeded limit {}, oldest {}s",
                q.queue, q.machine, q.length, q.limit, q.oldest_age_secs
            ));
        }
        if matching.is_empty() {
            r.push_line("No queue above its configured limit.");
        }
        r
    }

    fn q_certs(&self) -> QueryResult {
        let mut r = QueryResult::titled("Certificate inventory");
        let bad = self
            .certs
            .iter()
            .filter(|c| c.status != crate::artifacts::CertStatus::Valid)
            .count();
        r.push_row("Certificates", self.certs.len().to_string());
        r.push_row("Non-valid certificates", bad.to_string());
        for c in self.certs.iter().take(12) {
            let tenant = c
                .tenant
                .map(|t| t.to_string())
                .unwrap_or_else(|| "service".to_string());
            r.push_line(format!(
                "subject={} domain={} owner={} status={}{} validity={}..{}",
                c.subject,
                c.domain,
                tenant,
                c.status.name(),
                if c.overrides_existing {
                    " OVERRIDES-EXISTING"
                } else {
                    ""
                },
                c.valid_from.format_iso(),
                c.valid_to.format_iso(),
            ));
        }
        r
    }

    fn q_tenant_configs(&self) -> QueryResult {
        let mut r = QueryResult::titled("Tenant transport configuration");
        let invalid = self.tenant_configs.iter().filter(|t| !t.valid).count();
        r.push_row("Settings inspected", self.tenant_configs.len().to_string());
        r.push_row("Invalid settings", invalid.to_string());
        for t in self.tenant_configs.iter().take(10) {
            let mut line = format!(
                "{} {} = {:?} valid={}",
                t.tenant, t.setting, t.value, t.valid
            );
            if let Some(e) = &t.exception {
                line.push_str(&format!(" exception={e}"));
            }
            r.push_line(line);
        }
        r
    }

    fn q_provisioning(&self, scope: Scope) -> QueryResult {
        let mut r = QueryResult::titled(format!("Provisioning status on {scope}"));
        let matching: Vec<&ProvisioningRecord> = self
            .provisioning
            .iter()
            .filter(|p| scope.contains_machine(p.machine))
            .collect();
        let inactive = matching.iter().filter(|p| p.state != "Active").count();
        r.push_row("Machines", matching.len().to_string());
        r.push_row("Not active", inactive.to_string());
        for p in matching.iter().take(10) {
            r.push_line(format!(
                "{}: state={} build={} since={}",
                p.machine,
                p.state,
                p.build,
                p.since.format_iso()
            ));
        }
        r
    }

    fn q_trace_failures(&self, scope: Scope, window: TimeWindow, top: usize) -> QueryResult {
        let mut r = QueryResult::titled(format!("Request trace failure groups on {scope}"));
        let groups = self.traces.failure_groups(scope, window, top);
        r.push_row("Failure groups", groups.len().to_string());
        for g in &groups {
            r.push_line(format!(
                "{} traces failed at {}/{} with {}: {}",
                g.count,
                g.service,
                g.operation,
                g.status.name(),
                g.example_error
            ));
        }
        if groups.is_empty() {
            r.push_line("No failing traces in window.");
        }
        r
    }

    fn q_process_crashes(&self, scope: Scope) -> QueryResult {
        let mut r = QueryResult::titled(format!("Process crash report on {scope}"));
        let mut matching: Vec<&ProcessInfo> = self
            .processes
            .iter()
            .filter(|p| p.crash_count > 0 && scope.contains_machine(p.machine))
            .collect();
        matching.sort_by_key(|p| std::cmp::Reverse(p.crash_count));
        let total: u32 = matching.iter().map(|p| p.crash_count).sum();
        r.push_row("Crashing processes", matching.len().to_string());
        r.push_row("Total crashes", total.to_string());
        for p in matching.iter().take(8) {
            let mut line = format!(
                "{} on {} crashed {} times",
                p.process, p.machine, p.crash_count
            );
            if let Some(e) = &p.last_crash_exception {
                line.push_str(&format!(", last exception: {e}"));
            }
            r.push_line(line);
        }
        if matching.is_empty() {
            r.push_line("No process crashes recorded.");
        }
        r
    }
}

/// Truncates a query result to roughly `keep_per_mille`/1000 of its rows
/// and text lines (keeping prefixes, so the most significant entries —
/// stores emit sorted output — survive). Returns the truncated result
/// plus `(kept, dropped)` counts over rows and lines combined. A result
/// always keeps at least one row/line of whatever it had, so sections
/// never become silently empty.
fn truncate_result(full: QueryResult, keep_per_mille: u16) -> (QueryResult, usize, usize) {
    let kpm = u64::from(keep_per_mille.min(1000));
    let keep_of = |n: usize| -> usize {
        if n == 0 {
            0
        } else {
            (((n as u64) * kpm).div_ceil(1000) as usize).max(1)
        }
    };
    let keep_rows = keep_of(full.rows.len());
    let lines: Vec<&str> = full.text.lines().collect();
    let keep_lines = keep_of(lines.len());
    let mut out = QueryResult::titled(full.title.clone());
    for (k, v) in full.rows.iter().take(keep_rows) {
        out.push_row(k.clone(), v.clone());
    }
    for line in lines.iter().take(keep_lines) {
        out.push_line(*line);
    }
    let kept = keep_rows + keep_lines;
    let dropped = full.rows.len() + lines.len() - kept;
    (out, kept, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifacts::CertStatus;
    use crate::ids::{ForestId, MachineId, MachineRole, ProcessId, TenantId};
    use crate::log::LogRecord;

    fn m(idx: u32) -> MachineId {
        MachineId::new(ForestId(0), MachineRole::Hub, idx)
    }

    fn full_window() -> TimeWindow {
        TimeWindow::new(SimTime::EPOCH, SimTime::from_days(400))
    }

    fn snapshot() -> TelemetrySnapshot {
        let mut s = TelemetrySnapshot::new(SimTime::from_days(1));
        s.logs.push(LogRecord {
            at: SimTime::from_hours(23),
            machine: m(1),
            process: "Transport.exe".into(),
            component: "SmtpOut".into(),
            level: LogLevel::Error,
            message: "InformativeSocketException: No such host is known.".into(),
        });
        s.logs.finish();
        s.sockets.push(SocketStat {
            machine: m(1),
            protocol: "udp".into(),
            process: "Transport.exe".into(),
            pid: ProcessId(203736),
            count: 14923,
        });
        s.sockets.push(SocketStat {
            machine: m(1),
            protocol: "udp".into(),
            process: "w3wp.exe".into(),
            pid: ProcessId(102296),
            count: 15,
        });
        s.probes.push(ProbeResult {
            probe: "DatacenterHubOutboundProxyProbe".into(),
            machine: m(1),
            at: SimTime::from_hours(23),
            success: false,
            error: Some("A WinSock error: 11001 encountered when connecting to host".into()),
        });
        s.disks.push(DiskUsage {
            machine: m(1),
            volume: "C:".into(),
            used_pct: 99.4,
            free_bytes: 120 << 20,
        });
        s.certs.push(CertificateRecord {
            subject: "CN=mail.contoso.com".into(),
            domain: "contoso.com".into(),
            tenant: Some(TenantId(9)),
            valid_from: SimTime::EPOCH,
            valid_to: SimTime::from_days(300),
            status: CertStatus::Invalid,
            overrides_existing: true,
        });
        s
    }

    #[test]
    fn socket_query_matches_figure6_shape() {
        let s = snapshot();
        let r = s.execute(
            &Query::SocketsByProcess {
                protocol: "udp".into(),
                top: 5,
            },
            Scope::Machine(m(1)),
            full_window(),
        );
        assert_eq!(r.row("Total UDP socket count"), Some("14938"));
        assert!(r.text.contains("14923: Transport.exe, 203736"));
    }

    #[test]
    fn probe_query_reports_failures_and_error_detail() {
        let s = snapshot();
        let r = s.execute(
            &Query::ProbeResults {
                probe: "DatacenterHubOutboundProxyProbe".into(),
            },
            Scope::Machine(m(1)),
            full_window(),
        );
        assert_eq!(r.row("Total Probes"), Some("1"));
        assert_eq!(r.row("Failed Probes"), Some("1"));
        assert!(r.text.contains("WinSock error: 11001"));
    }

    #[test]
    fn log_query_returns_rendered_lines() {
        let s = snapshot();
        let r = s.execute(
            &Query::Logs {
                level: LogLevel::Error,
                contains: Some("WinSock".into()),
                limit: 10,
            },
            Scope::Service,
            full_window(),
        );
        // The record's message says "No such host", not "WinSock": filter misses.
        assert_eq!(r.row("Matching records"), Some("0"));
        let r2 = s.execute(
            &Query::Logs {
                level: LogLevel::Error,
                contains: Some("SocketException".into()),
                limit: 10,
            },
            Scope::Service,
            full_window(),
        );
        assert_eq!(r2.row("Matching records"), Some("1"));
        assert!(r2.text.contains("InformativeSocketException"));
    }

    #[test]
    fn cert_query_flags_override_and_invalid() {
        let s = snapshot();
        let r = s.execute(&Query::Certificates, Scope::Service, full_window());
        assert_eq!(r.row("Non-valid certificates"), Some("1"));
        assert!(r.text.contains("OVERRIDES-EXISTING"));
        assert!(r.text.contains("status=Invalid"));
    }

    #[test]
    fn disk_query_sorted_by_usage() {
        let mut s = snapshot();
        s.disks.push(DiskUsage {
            machine: m(2),
            volume: "D:".into(),
            used_pct: 20.0,
            free_bytes: 1 << 30,
        });
        let r = s.execute(&Query::DiskUsage, Scope::Service, full_window());
        // The fullest disk appears first.
        assert!(r.rows[0].0.contains("C:"));
        assert!(r.rows[0].1.starts_with("99.4%"));
    }

    /// Test injector returning a fixed decision for every query.
    #[derive(Debug)]
    struct Always(FaultDecision);

    impl FaultInjector for Always {
        fn decide(
            &self,
            _: crate::fault::DataSource,
            _: Scope,
            _: TimeWindow,
            _: u32,
        ) -> FaultDecision {
            self.0
        }
    }

    #[test]
    fn no_faults_outcome_is_byte_identical_to_execute() {
        let s = snapshot();
        let q = Query::SocketsByProcess {
            protocol: "udp".into(),
            top: 5,
        };
        let direct = s.execute(&q, Scope::Machine(m(1)), full_window());
        let outcome = s.execute_faulted(
            &q,
            Scope::Machine(m(1)),
            full_window(),
            &crate::fault::NoFaults,
            1,
        );
        assert_eq!(outcome, QueryOutcome::Ok(direct));
    }

    #[test]
    fn timeout_and_unavailable_fail_without_data() {
        let s = snapshot();
        let q = Query::DiskUsage;
        let timeout = s.execute_faulted(
            &q,
            Scope::Service,
            full_window(),
            &Always(FaultDecision::Timeout),
            1,
        );
        assert_eq!(
            timeout,
            QueryOutcome::Failed {
                cause: FaultCause::Timeout
            }
        );
        let down = s.execute_faulted(
            &q,
            Scope::Service,
            full_window(),
            &Always(FaultDecision::Unavailable),
            1,
        );
        assert!(matches!(
            down,
            QueryOutcome::Failed {
                cause: FaultCause::SourceUnavailable {
                    source: crate::fault::DataSource::Disks
                }
            }
        ));
    }

    #[test]
    fn partial_rows_truncates_but_keeps_something() {
        let mut s = snapshot();
        for i in 2..8 {
            s.disks.push(DiskUsage {
                machine: m(i),
                volume: "D:".into(),
                used_pct: 50.0 - i as f64,
                free_bytes: 1 << 30,
            });
        }
        let q = Query::DiskUsage;
        let out = s.execute_faulted(
            &q,
            Scope::Service,
            full_window(),
            &Always(FaultDecision::PartialRows {
                keep_per_mille: 300,
            }),
            1,
        );
        match out {
            QueryOutcome::Partial {
                result,
                cause: FaultCause::PartialRows { kept, dropped },
            } => {
                assert!(dropped > 0, "expected rows to be dropped");
                assert!(kept >= 1);
                assert!(!result.rows.is_empty());
                assert!(result.rows.len() < 7);
                // The sort order survives truncation: fullest disk first.
                assert!(result.rows[0].1.starts_with("99.4%"));
            }
            other => panic!("expected partial outcome, got {other:?}"),
        }
    }

    #[test]
    fn stale_window_shifts_the_query_back_in_time() {
        let s = snapshot();
        // Probes sit at hour 23; a window covering only [24h, 25h) misses
        // them — unless served stale by one hour, which shifts it back
        // onto the probe.
        let w = TimeWindow::new(SimTime::from_hours(24), SimTime::from_hours(25));
        let q = Query::ProbeResults {
            probe: "DatacenterHubOutboundProxyProbe".into(),
        };
        let fresh = s.execute(&q, Scope::Machine(m(1)), w);
        assert_eq!(fresh.row("Total Probes"), Some("0"));
        let out = s.execute_faulted(
            &q,
            Scope::Machine(m(1)),
            w,
            &Always(FaultDecision::StaleWindow { lag_secs: 3600 }),
            1,
        );
        match out {
            QueryOutcome::Partial { result, cause } => {
                assert_eq!(result.row("Total Probes"), Some("1"));
                assert_eq!(cause, FaultCause::StaleWindow { lag_secs: 3600 });
            }
            other => panic!("expected partial outcome, got {other:?}"),
        }
    }

    #[test]
    fn empty_queries_still_produce_sections() {
        let s = TelemetrySnapshot::new(SimTime::EPOCH);
        for q in [
            Query::DiskUsage,
            Query::Certificates,
            Query::TenantConfigs,
            Query::ProvisioningStatus,
            Query::ProcessCrashes,
            Query::ThreadStacks { process: None },
            Query::TraceFailures { top: 3 },
            Query::QueueStats {
                queue: "submission".into(),
            },
            Query::MetricStats {
                metric: "availability".into(),
            },
        ] {
            let r = s.execute(&q, Scope::Service, full_window());
            assert!(!r.title.is_empty(), "query {:?} lost its title", q.kind());
            assert!(!r.render().is_empty());
        }
    }
}
