//! Semi-structured log records and an indexed in-memory store.

use crate::ids::MachineId;
use crate::query::{Scope, TimeWindow};
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Log severity levels, lowest to highest.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum LogLevel {
    /// Verbose diagnostics.
    Debug,
    /// Routine events.
    #[default]
    Info,
    /// Unexpected but tolerated events.
    Warning,
    /// Failures.
    Error,
    /// Failures that took a component down.
    Critical,
}

impl LogLevel {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            LogLevel::Debug => "DEBUG",
            LogLevel::Info => "INFO",
            LogLevel::Warning => "WARN",
            LogLevel::Error => "ERROR",
            LogLevel::Critical => "CRIT",
        }
    }
}

impl fmt::Display for LogLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One log record emitted by a component on a machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogRecord {
    /// When the record was written.
    pub at: SimTime,
    /// Machine that wrote it.
    pub machine: MachineId,
    /// Emitting process name, e.g. `Transport.exe`.
    pub process: String,
    /// Component/logger name, e.g. `SmtpOut`.
    pub component: String,
    /// Severity.
    pub level: LogLevel,
    /// Message text (may embed exception text and stack fragments).
    pub message: String,
}

impl LogRecord {
    /// Renders the record as a single log line.
    pub fn render(&self) -> String {
        format!(
            "{} {} [{}] {}/{}: {}",
            self.at.format_iso(),
            self.level,
            self.machine,
            self.process,
            self.component,
            self.message
        )
    }
}

/// An in-memory log store ordered by time, supporting scoped queries.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LogStore {
    records: Vec<LogRecord>,
    sorted: bool,
}

impl LogStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        LogStore {
            records: Vec::new(),
            sorted: true,
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Appends a record (insertion order need not be chronological).
    pub fn push(&mut self, record: LogRecord) {
        if let Some(last) = self.records.last() {
            if record.at < last.at {
                self.sorted = false;
            }
        }
        self.records.push(record);
    }

    /// Sorts records chronologically if needed; queries call this lazily.
    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.records.sort_by_key(|r| r.at);
            self.sorted = true;
        }
    }

    /// Finalizes the store after bulk insertion, sorting by time.
    pub fn finish(&mut self) {
        self.ensure_sorted();
    }

    /// All records, chronologically (only valid after [`LogStore::finish`]
    /// or if inserted in order).
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// Queries records in `window` within `scope`, at/above `level`,
    /// optionally containing `contains`, newest first, at most `limit`.
    pub fn query(
        &self,
        scope: Scope,
        window: TimeWindow,
        level: LogLevel,
        contains: Option<&str>,
        limit: usize,
    ) -> Vec<&LogRecord> {
        let mut hits: Vec<&LogRecord> = self
            .records
            .iter()
            .filter(|r| {
                window.contains(r.at)
                    && scope.contains_machine(r.machine)
                    && r.level >= level
                    && contains.is_none_or(|c| r.message.contains(c))
            })
            .collect();
        hits.sort_by_key(|r| std::cmp::Reverse(r.at));
        hits.truncate(limit);
        hits
    }

    /// Counts records matching the filters (no limit).
    pub fn count(&self, scope: Scope, window: TimeWindow, level: LogLevel) -> usize {
        self.records
            .iter()
            .filter(|r| {
                window.contains(r.at) && scope.contains_machine(r.machine) && r.level >= level
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ForestId, MachineRole};

    fn rec(secs: u64, machine_idx: u32, level: LogLevel, msg: &str) -> LogRecord {
        LogRecord {
            at: SimTime::from_secs(secs),
            machine: MachineId::new(ForestId(1), MachineRole::Mailbox, machine_idx),
            process: "Transport.exe".into(),
            component: "SmtpOut".into(),
            level,
            message: msg.into(),
        }
    }

    #[test]
    fn query_filters_by_window_scope_level_and_text() {
        let mut store = LogStore::new();
        store.push(rec(10, 1, LogLevel::Error, "WinSock error 11001"));
        store.push(rec(20, 1, LogLevel::Info, "connection ok"));
        store.push(rec(30, 2, LogLevel::Error, "WinSock error 11001"));
        store.push(rec(500, 1, LogLevel::Error, "too late"));
        store.finish();

        let w = TimeWindow::new(SimTime::from_secs(0), SimTime::from_secs(100));
        let m1 = MachineId::new(ForestId(1), MachineRole::Mailbox, 1);
        let hits = store.query(Scope::Machine(m1), w, LogLevel::Error, Some("WinSock"), 10);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].at, SimTime::from_secs(10));

        let forest_hits = store.query(Scope::Forest(ForestId(1)), w, LogLevel::Error, None, 10);
        assert_eq!(forest_hits.len(), 2);
        // Newest first.
        assert_eq!(forest_hits[0].at, SimTime::from_secs(30));
    }

    #[test]
    fn query_respects_limit() {
        let mut store = LogStore::new();
        for i in 0..50 {
            store.push(rec(i, 1, LogLevel::Error, "boom"));
        }
        let w = TimeWindow::new(SimTime::EPOCH, SimTime::from_secs(1000));
        let hits = store.query(Scope::Service, w, LogLevel::Error, None, 5);
        assert_eq!(hits.len(), 5);
        assert_eq!(hits[0].at, SimTime::from_secs(49));
    }

    #[test]
    fn out_of_order_insertion_is_fixed_by_finish() {
        let mut store = LogStore::new();
        store.push(rec(30, 1, LogLevel::Info, "late"));
        store.push(rec(10, 1, LogLevel::Info, "early"));
        store.finish();
        assert_eq!(store.records()[0].at, SimTime::from_secs(10));
    }

    #[test]
    fn count_ignores_limit_and_text() {
        let mut store = LogStore::new();
        for i in 0..7 {
            store.push(rec(i, 1, LogLevel::Warning, "w"));
        }
        let w = TimeWindow::new(SimTime::EPOCH, SimTime::from_secs(1000));
        assert_eq!(store.count(Scope::Service, w, LogLevel::Warning), 7);
        assert_eq!(store.count(Scope::Service, w, LogLevel::Error), 0);
    }

    #[test]
    fn render_contains_machine_and_level() {
        let line = rec(10, 3, LogLevel::Critical, "disk is full").render();
        assert!(line.contains("CRIT"));
        assert!(line.contains("EURPR01MB0003"));
        assert!(line.contains("disk is full"));
    }
}
