//! Domain-specific diagnostic records collected by handler actions.
//!
//! These are the "myriad of sources" of paper §4.1.3 beyond the big three
//! (logs/metrics/traces): thread-stack groups, monitor probes, socket
//! statistics, disk usage, message queues, certificates, tenant transport
//! configuration, provisioning state, and per-process health.

use crate::ids::{MachineId, ProcessId, TenantId};
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A group of managed threads sharing an identical stack (the output shape
/// of the paper's stack-aggregation query, §4.1.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StackGroup {
    /// Machine the process runs on.
    pub machine: MachineId,
    /// Process name, e.g. `TransportDelivery.exe`.
    pub process: String,
    /// Number of threads sharing this stack.
    pub thread_count: usize,
    /// Stack frames, innermost first.
    pub frames: Vec<String>,
    /// Whether the group looks blocked (waiting/lock frames on top).
    pub blocked: bool,
}

impl StackGroup {
    /// Renders like a debugger's aggregated stack listing.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} threads in process {} on {}{}:\n",
            self.thread_count,
            self.process,
            self.machine,
            if self.blocked { " (BLOCKED)" } else { "" }
        );
        for f in &self.frames {
            out.push_str("   at ");
            out.push_str(f);
            out.push('\n');
        }
        out
    }
}

/// One synthetic-monitor probe execution result (paper Figure 6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbeResult {
    /// Probe name, e.g. `DatacenterHubOutboundProxyProbe`.
    pub probe: String,
    /// Machine the probe ran from.
    pub machine: MachineId,
    /// When the probe ran.
    pub at: SimTime,
    /// Whether the probe succeeded.
    pub success: bool,
    /// Error detail when failed (exception text).
    pub error: Option<String>,
}

/// Socket usage of one process on a machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SocketStat {
    /// Machine observed.
    pub machine: MachineId,
    /// Protocol: `"udp"` or `"tcp"`.
    pub protocol: String,
    /// Owning process name.
    pub process: String,
    /// Owning process id.
    pub pid: ProcessId,
    /// Number of sockets held.
    pub count: u64,
}

/// Disk usage of one volume on a machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiskUsage {
    /// Machine observed.
    pub machine: MachineId,
    /// Volume name, e.g. `C:`.
    pub volume: String,
    /// Used fraction in percent (0–100).
    pub used_pct: f64,
    /// Free bytes remaining.
    pub free_bytes: u64,
}

/// Statistics of one message queue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueueStat {
    /// Machine hosting the queue.
    pub machine: MachineId,
    /// Queue name, e.g. `submission`, `mailbox_delivery`.
    pub queue: String,
    /// Current length.
    pub length: u64,
    /// Configured limit.
    pub limit: u64,
    /// Age of the oldest queued message, in seconds.
    pub oldest_age_secs: u64,
}

impl QueueStat {
    /// True when the queue exceeds its configured limit.
    pub fn over_limit(&self) -> bool {
        self.length > self.limit
    }
}

/// Lifecycle status of a certificate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum CertStatus {
    /// Valid and trusted.
    #[default]
    Valid,
    /// Past its expiry date.
    Expired,
    /// Present but failing validation (wrong chain/subject).
    Invalid,
    /// Revoked by the issuer.
    Revoked,
}

impl CertStatus {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            CertStatus::Valid => "Valid",
            CertStatus::Expired => "Expired",
            CertStatus::Invalid => "Invalid",
            CertStatus::Revoked => "Revoked",
        }
    }
}

/// A certificate visible to the transport service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CertificateRecord {
    /// Certificate subject.
    pub subject: String,
    /// Domain the certificate covers.
    pub domain: String,
    /// Owning tenant, if tenant-scoped.
    pub tenant: Option<TenantId>,
    /// Not-before instant.
    pub valid_from: SimTime,
    /// Not-after instant.
    pub valid_to: SimTime,
    /// Current status.
    pub status: CertStatus,
    /// True when this certificate overrides another with the same subject.
    pub overrides_existing: bool,
}

/// One tenant transport-configuration setting, with validity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantConfigRecord {
    /// Tenant owning the setting.
    pub tenant: TenantId,
    /// Setting name, e.g. `JournalingReportNdrTo`.
    pub setting: String,
    /// Raw configured value.
    pub value: String,
    /// Whether the value passes validation.
    pub valid: bool,
    /// Exception raised when the value is consumed, if any.
    pub exception: Option<String>,
}

/// Provisioning state of a machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProvisioningRecord {
    /// Machine described.
    pub machine: MachineId,
    /// State, e.g. `Active`, `Provisioning`, `Draining`, `OutOfService`.
    pub state: String,
    /// Software build version deployed.
    pub build: String,
    /// When the machine last changed state.
    pub since: SimTime,
}

/// Health of one process on a machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessInfo {
    /// Machine observed.
    pub machine: MachineId,
    /// Process name.
    pub process: String,
    /// Process id.
    pub pid: ProcessId,
    /// Crash count in the observation window.
    pub crash_count: u32,
    /// Resident memory in MB.
    pub memory_mb: u64,
    /// Most recent crash exception text, if any.
    pub last_crash_exception: Option<String>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ForestId, MachineRole};

    fn m() -> MachineId {
        MachineId::new(ForestId(1), MachineRole::Mailbox, 9)
    }

    #[test]
    fn stack_group_render_marks_blocked() {
        let g = StackGroup {
            machine: m(),
            process: "TransportDelivery.exe".into(),
            thread_count: 62,
            frames: vec![
                "System.Threading.Monitor.Wait(...)".into(),
                "DeliveryQueue.Dequeue(...)".into(),
            ],
            blocked: true,
        };
        let text = g.render();
        assert!(text.contains("62 threads"));
        assert!(text.contains("(BLOCKED)"));
        assert!(text.contains("at System.Threading.Monitor.Wait"));
    }

    #[test]
    fn queue_over_limit() {
        let q = QueueStat {
            machine: m(),
            queue: "mailbox_delivery".into(),
            length: 5000,
            limit: 1000,
            oldest_age_secs: 3600,
        };
        assert!(q.over_limit());
        let ok = QueueStat { length: 10, ..q };
        assert!(!ok.over_limit());
    }

    #[test]
    fn cert_status_names_are_stable() {
        assert_eq!(CertStatus::Valid.name(), "Valid");
        assert_eq!(CertStatus::Invalid.name(), "Invalid");
        assert_eq!(CertStatus::Expired.name(), "Expired");
        assert_eq!(CertStatus::Revoked.name(), "Revoked");
    }

    #[test]
    fn artifacts_serde_round_trip() {
        let rec = TenantConfigRecord {
            tenant: TenantId(5),
            setting: "JournalingReportNdrTo".into(),
            value: "<invalid>".into(),
            valid: false,
            exception: Some("TenantSettingsNotFoundException".into()),
        };
        let json = serde_json::to_string(&rec).unwrap();
        let back: TenantConfigRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(rec, back);
    }
}
