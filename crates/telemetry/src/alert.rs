//! Alerts raised by monitors — the entry point of every incident.
//!
//! Incidents sharing an [`AlertType`] exhibit similar *symptoms* but may
//! stem from different *root causes* (paper §4.1); the alert type is what
//! routes an incident to its handler.

use crate::ids::{IncidentId, TenantId};
use crate::query::Scope;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Incident severity, 1 (highest) to 4 (lowest), as in the paper's Table 1.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum Severity {
    /// Outage-level impact.
    Sev1,
    /// Major degradation.
    #[default]
    Sev2,
    /// Minor degradation.
    Sev3,
    /// Informational / low impact.
    Sev4,
}

impl Severity {
    /// Numeric severity (1 = highest).
    pub fn level(self) -> u8 {
        match self {
            Severity::Sev1 => 1,
            Severity::Sev2 => 2,
            Severity::Sev3 => 3,
            Severity::Sev4 => 4,
        }
    }

    /// Builds a severity from its numeric level.
    ///
    /// Returns `None` for levels outside `1..=4`.
    pub fn from_level(level: u8) -> Option<Self> {
        match level {
            1 => Some(Severity::Sev1),
            2 => Some(Severity::Sev2),
            3 => Some(Severity::Sev3),
            4 => Some(Severity::Sev4),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sev{}", self.level())
    }
}

/// The kind of anomaly a monitor detected.
///
/// Each alert type has exactly one incident handler. The set below covers
/// the transport-service monitors implied by the paper's Table 1 and
/// Figure 5; several root-cause categories map onto each type.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum AlertType {
    /// Messages stuck in a delivery/submission queue beyond a threshold
    /// (paper Figure 5's "too many messages stuck in the delivery queue").
    #[default]
    DeliveryQueueBacklog,
    /// Outbound proxy / front-door connection failures.
    OutboundConnectionFailure,
    /// Processes crashing above threshold in a scope.
    ProcessCrashSpike,
    /// Authentication or token issuance failures.
    AuthenticationFailure,
    /// Concurrent server connections above limit.
    ConnectionLimitExceeded,
    /// Component availability dropped below SLO.
    AvailabilityDrop,
    /// Poisoned-message detections above threshold.
    PoisonedMessage,
    /// Latency of message delivery above SLO.
    DeliveryLatencyHigh,
    /// Resource (disk/memory/handle) pressure on machines.
    ResourcePressure,
    /// Service-to-service call timeouts (directory, settings, ...).
    DependencyTimeout,
}

impl AlertType {
    /// All alert types, in stable order.
    pub const ALL: [AlertType; 10] = [
        AlertType::DeliveryQueueBacklog,
        AlertType::OutboundConnectionFailure,
        AlertType::ProcessCrashSpike,
        AlertType::AuthenticationFailure,
        AlertType::ConnectionLimitExceeded,
        AlertType::AvailabilityDrop,
        AlertType::PoisonedMessage,
        AlertType::DeliveryLatencyHigh,
        AlertType::ResourcePressure,
        AlertType::DependencyTimeout,
    ];

    /// Stable string name of the alert type.
    pub fn name(self) -> &'static str {
        match self {
            AlertType::DeliveryQueueBacklog => "DeliveryQueueBacklog",
            AlertType::OutboundConnectionFailure => "OutboundConnectionFailure",
            AlertType::ProcessCrashSpike => "ProcessCrashSpike",
            AlertType::AuthenticationFailure => "AuthenticationFailure",
            AlertType::ConnectionLimitExceeded => "ConnectionLimitExceeded",
            AlertType::AvailabilityDrop => "AvailabilityDrop",
            AlertType::PoisonedMessage => "PoisonedMessage",
            AlertType::DeliveryLatencyHigh => "DeliveryLatencyHigh",
            AlertType::ResourcePressure => "ResourcePressure",
            AlertType::DependencyTimeout => "DependencyTimeout",
        }
    }

    /// Parses an alert type from its stable name.
    pub fn parse(name: &str) -> Option<Self> {
        AlertType::ALL.into_iter().find(|t| t.name() == name)
    }
}

impl fmt::Display for AlertType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An alert raised by a monitor: the triggering event of an incident.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// Incident ticket opened for this alert.
    pub incident: IncidentId,
    /// The kind of anomaly detected.
    pub alert_type: AlertType,
    /// Where the anomaly was detected.
    pub scope: Scope,
    /// Assessed severity.
    pub severity: Severity,
    /// Owning tenant (team) of the incident stream. The default tenant
    /// (`TenantId(0)`) is the single-tenant deployment; the serving
    /// plane's multi-tenant bulkheads re-tag alerts per tenant plan.
    /// Deliberately absent from [`Alert::render`]: tenancy routes and
    /// isolates work, it is not diagnostic evidence.
    pub tenant: TenantId,
    /// When the monitor fired.
    pub raised_at: SimTime,
    /// Name of the monitor that fired.
    pub monitor: String,
    /// Monitor-generated message describing the symptom.
    pub message: String,
}

impl Alert {
    /// Renders the alert the way it appears at the head of an incident
    /// ticket ("AlertInfo" context in the paper's Table 3).
    pub fn render(&self) -> String {
        format!(
            "[{}] {} alert ({}) raised by {} at {} on {}\n{}",
            self.incident,
            self.alert_type,
            self.severity,
            self.monitor,
            self.raised_at.format_us(),
            self.scope,
            self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ForestId, TenantId};

    #[test]
    fn severity_levels_round_trip() {
        for lvl in 1..=4 {
            assert_eq!(Severity::from_level(lvl).unwrap().level(), lvl);
        }
        assert_eq!(Severity::from_level(0), None);
        assert_eq!(Severity::from_level(5), None);
        assert_eq!(Severity::Sev1.to_string(), "Sev1");
    }

    #[test]
    fn severity_orders_highest_first() {
        assert!(Severity::Sev1 < Severity::Sev2);
        assert!(Severity::Sev2 < Severity::Sev4);
    }

    #[test]
    fn alert_type_names_round_trip() {
        for t in AlertType::ALL {
            assert_eq!(AlertType::parse(t.name()), Some(t));
        }
        assert_eq!(AlertType::parse("NotAThing"), None);
    }

    #[test]
    fn alert_render_contains_key_fields() {
        let a = Alert {
            incident: IncidentId(7),
            alert_type: AlertType::DeliveryQueueBacklog,
            scope: Scope::Forest(ForestId(1)),
            severity: Severity::Sev2,
            tenant: TenantId(7),
            raised_at: SimTime::from_days(10),
            monitor: "QueueLengthMonitor".into(),
            message: "Normal priority messages queued for a long time.".into(),
        };
        let text = a.render();
        assert!(text.contains("IcM000000007"));
        assert!(text.contains("DeliveryQueueBacklog"));
        assert!(text.contains("Sev2"));
        assert!(text.contains("forest EURPR01"));
        assert!(text.contains("QueueLengthMonitor"));
        // Tenancy is routing metadata, never prompt context.
        assert!(!text.contains("tenant"));
    }
}
