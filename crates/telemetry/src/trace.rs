//! Request traces: spans forming trees across service hops.

use crate::ids::MachineId;
use crate::query::{Scope, TimeWindow};
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Outcome of a span.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum SpanStatus {
    /// Completed successfully.
    #[default]
    Ok,
    /// Failed with an error.
    Error,
    /// Timed out waiting on the callee.
    Timeout,
    /// Cancelled by the caller.
    Cancelled,
}

impl SpanStatus {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            SpanStatus::Ok => "OK",
            SpanStatus::Error => "ERROR",
            SpanStatus::Timeout => "TIMEOUT",
            SpanStatus::Cancelled => "CANCELLED",
        }
    }

    /// True for any non-`Ok` status.
    pub fn is_failure(self) -> bool {
        self != SpanStatus::Ok
    }
}

/// One span of a request trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSpan {
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// Id of this span within the trace.
    pub span_id: u32,
    /// Parent span id; `None` for the root span.
    pub parent: Option<u32>,
    /// Logical service hop, e.g. `SmtpIn`, `Categorizer`, `AuthService`.
    pub service: String,
    /// Operation name, e.g. `ResolveRecipient`.
    pub operation: String,
    /// Machine the span executed on.
    pub machine: MachineId,
    /// Start time.
    pub start: SimTime,
    /// Duration.
    pub duration: SimDuration,
    /// Outcome.
    pub status: SpanStatus,
    /// Short error description when `status` is a failure.
    pub error: Option<String>,
}

/// A full trace: the spans of one request, roots first.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trace {
    /// Trace id shared by all spans.
    pub trace_id: u64,
    /// Spans in insertion order (root first by convention).
    pub spans: Vec<TraceSpan>,
}

impl Trace {
    /// The root span (the one with no parent), if present.
    pub fn root(&self) -> Option<&TraceSpan> {
        self.spans.iter().find(|s| s.parent.is_none())
    }

    /// True if any span failed.
    pub fn has_failure(&self) -> bool {
        self.spans.iter().any(|s| s.status.is_failure())
    }

    /// The deepest failing span (failure origin), preferring the failure
    /// furthest from the root, which is where the fault actually occurred.
    pub fn failure_origin(&self) -> Option<&TraceSpan> {
        self.spans
            .iter()
            .filter(|s| s.status.is_failure())
            .max_by_key(|s| self.depth_of(s.span_id))
    }

    /// Depth of a span (root = 0); unknown ids get depth 0.
    pub fn depth_of(&self, span_id: u32) -> usize {
        let by_id: BTreeMap<u32, &TraceSpan> = self.spans.iter().map(|s| (s.span_id, s)).collect();
        let mut depth = 0;
        let mut cur = by_id.get(&span_id).copied();
        while let Some(span) = cur {
            match span.parent {
                Some(p) => {
                    depth += 1;
                    cur = by_id.get(&p).copied();
                    // Defensive bound against malformed parent cycles.
                    if depth > self.spans.len() {
                        return depth;
                    }
                }
                None => break,
            }
        }
        depth
    }
}

/// Grouped failure summary returned by trace queries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureGroup {
    /// Service hop where failures originate.
    pub service: String,
    /// Operation name.
    pub operation: String,
    /// Status observed.
    pub status: SpanStatus,
    /// Representative error text.
    pub example_error: String,
    /// Number of failing traces in the group.
    pub count: usize,
}

/// In-memory store of traces.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceStore {
    traces: Vec<Trace>,
}

impl TraceStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        TraceStore { traces: Vec::new() }
    }

    /// Adds a trace.
    pub fn push(&mut self, trace: Trace) {
        self.traces.push(trace);
    }

    /// All traces.
    pub fn traces(&self) -> &[Trace] {
        &self.traces
    }

    /// Number of traces.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// True if the store holds no traces.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Groups failing traces by `(origin service, operation, status)` and
    /// returns the `top` largest groups, in `scope` and `window`.
    pub fn failure_groups(
        &self,
        scope: Scope,
        window: TimeWindow,
        top: usize,
    ) -> Vec<FailureGroup> {
        let mut groups: BTreeMap<(String, String, SpanStatus), (usize, String)> = BTreeMap::new();
        for trace in &self.traces {
            let Some(origin) = trace.failure_origin() else {
                continue;
            };
            if !window.contains(origin.start) || !scope.contains_machine(origin.machine) {
                continue;
            }
            let key = (
                origin.service.clone(),
                origin.operation.clone(),
                origin.status,
            );
            let entry = groups.entry(key).or_insert_with(|| {
                (
                    0,
                    origin
                        .error
                        .clone()
                        .unwrap_or_else(|| origin.status.name().to_string()),
                )
            });
            entry.0 += 1;
        }
        let mut out: Vec<FailureGroup> = groups
            .into_iter()
            .map(
                |((service, operation, status), (count, example_error))| FailureGroup {
                    service,
                    operation,
                    status,
                    example_error,
                    count,
                },
            )
            .collect();
        out.sort_by_key(|g| std::cmp::Reverse(g.count));
        out.truncate(top);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ForestId, MachineRole};

    fn m() -> MachineId {
        MachineId::new(ForestId(0), MachineRole::Hub, 1)
    }

    fn span(trace: u64, id: u32, parent: Option<u32>, svc: &str, status: SpanStatus) -> TraceSpan {
        TraceSpan {
            trace_id: trace,
            span_id: id,
            parent,
            service: svc.into(),
            operation: "op".into(),
            machine: m(),
            start: SimTime::from_secs(10),
            duration: SimDuration::from_secs(1),
            status,
            error: status.is_failure().then(|| format!("{svc} failed")),
        }
    }

    #[test]
    fn failure_origin_is_deepest_failure() {
        let trace = Trace {
            trace_id: 1,
            spans: vec![
                span(1, 0, None, "SmtpIn", SpanStatus::Error),
                span(1, 1, Some(0), "Categorizer", SpanStatus::Error),
                span(1, 2, Some(1), "AuthService", SpanStatus::Timeout),
            ],
        };
        assert_eq!(trace.failure_origin().unwrap().service, "AuthService");
        assert!(trace.has_failure());
        assert_eq!(trace.depth_of(2), 2);
        assert_eq!(trace.root().unwrap().span_id, 0);
    }

    #[test]
    fn failure_groups_count_and_rank() {
        let mut store = TraceStore::new();
        for i in 0..5 {
            store.push(Trace {
                trace_id: i,
                spans: vec![
                    span(i, 0, None, "SmtpIn", SpanStatus::Ok),
                    span(i, 1, Some(0), "AuthService", SpanStatus::Timeout),
                ],
            });
        }
        store.push(Trace {
            trace_id: 99,
            spans: vec![span(99, 0, None, "Store", SpanStatus::Error)],
        });
        let w = TimeWindow::new(SimTime::EPOCH, SimTime::from_secs(100));
        let groups = store.failure_groups(Scope::Service, w, 10);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].service, "AuthService");
        assert_eq!(groups[0].count, 5);
        assert_eq!(groups[1].count, 1);

        let top1 = store.failure_groups(Scope::Service, w, 1);
        assert_eq!(top1.len(), 1);
    }

    #[test]
    fn ok_traces_produce_no_groups() {
        let mut store = TraceStore::new();
        store.push(Trace {
            trace_id: 1,
            spans: vec![span(1, 0, None, "SmtpIn", SpanStatus::Ok)],
        });
        let w = TimeWindow::new(SimTime::EPOCH, SimTime::from_secs(100));
        assert!(store.failure_groups(Scope::Service, w, 10).is_empty());
        assert_eq!(store.len(), 1);
        assert!(!store.is_empty());
    }

    #[test]
    fn depth_survives_malformed_parent_cycle() {
        let mut a = span(1, 0, Some(1), "A", SpanStatus::Ok);
        let mut b = span(1, 1, Some(0), "B", SpanStatus::Ok);
        a.span_id = 0;
        b.span_id = 1;
        let trace = Trace {
            trace_id: 1,
            spans: vec![a, b],
        };
        // Must terminate rather than loop forever.
        let _ = trace.depth_of(0);
    }
}
