//! Telemetry data model for the RCACopilot reproduction.
//!
//! This crate defines the vocabulary shared by the simulated cloud service
//! (`rcacopilot-simcloud`), the incident-handler engine
//! (`rcacopilot-handlers`), and the RCA pipeline (`rcacopilot-core`):
//!
//! - [`time`]: a simulated clock ([`time::SimTime`]) with calendar
//!   formatting, so log lines look like the real thing.
//! - [`ids`]: strongly-typed identifiers for machines, forests, tenants,
//!   processes, and incidents.
//! - [`alert`]: alerts raised by monitors, the entry point of every
//!   incident ([`alert::Alert`], [`alert::AlertType`]).
//! - [`log`]: semi-structured log records and an indexed store.
//! - [`metrics`]: time-series metrics with windowed statistics.
//! - [`trace`]: request traces (spans forming trees).
//! - [`artifacts`]: domain-specific diagnostic records (thread-stack
//!   groups, probe results, socket statistics, disk usage, queue
//!   statistics, certificates, tenant configuration, provisioning).
//! - [`snapshot`]: a per-incident [`snapshot::TelemetrySnapshot`] bundling
//!   all of the above, which is what handler actions query.
//! - [`query`]: the serializable [`query::Query`] language handler actions
//!   are written in, plus [`query::QueryResult`] tables.
//! - [`fault`]: deterministic fault injection over query answering —
//!   [`fault::QueryOutcome`], [`fault::FaultCause`], and the
//!   [`fault::FaultInjector`] trait consumed by the resilient executor.
//!
//! The design mirrors the paper's "multi-source diagnostic information"
//! (§4.1.3): the root-cause signal of an incident is deliberately spread
//! across more than one source, so no single query answers "why".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alert;
pub mod artifacts;
pub mod fault;
pub mod ids;
pub mod log;
pub mod metrics;
pub mod query;
pub mod snapshot;
pub mod time;
pub mod trace;

pub use alert::{Alert, AlertType, Severity};
pub use artifacts::{
    CertStatus, CertificateRecord, DiskUsage, ProbeResult, ProcessInfo, ProvisioningRecord,
    QueueStat, SocketStat, StackGroup, TenantConfigRecord,
};
pub use fault::{DataSource, FaultCause, FaultDecision, FaultInjector, NoFaults, QueryOutcome};
pub use ids::{ForestId, IncidentId, MachineId, ProcessId, TenantId};
pub use log::{LogLevel, LogRecord, LogStore};
pub use metrics::{MetricPoint, MetricStore, SeriesStats, TimeSeries};
pub use query::{Query, QueryResult, Scope, TimeWindow};
pub use snapshot::TelemetrySnapshot;
pub use time::{SimDuration, SimTime};
pub use trace::{SpanStatus, Trace, TraceSpan, TraceStore};
