//! Capability profiles of the simulated language model.

use serde::{Deserialize, Serialize};

/// Which model the pipeline is "calling".
///
/// The two built-in profiles mirror the paper's GPT-3.5-turbo and GPT-4
/// rows: the stronger model reads the prompt more faithfully (less scoring
/// noise) and is better calibrated about when an incident is unseen.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ModelProfile {
    /// The weaker chat model (GPT-3.5-turbo stand-in).
    Gpt35,
    /// The stronger model (GPT-4 stand-in); the paper's default.
    Gpt4,
    /// Explicit parameters, for experiments.
    Custom {
        /// Standard deviation of per-option scoring noise.
        noise: f64,
        /// Similarity below which the incident is declared unseen.
        unseen_threshold: f64,
    },
}

impl ModelProfile {
    /// Scoring-noise standard deviation.
    pub fn noise(&self) -> f64 {
        match self {
            ModelProfile::Gpt35 => 0.022,
            ModelProfile::Gpt4 => 0.010,
            ModelProfile::Custom { noise, .. } => *noise,
        }
    }

    /// Context-length sensitivity multiplier: weaker models lose reading
    /// fidelity faster as the prompt grows.
    pub fn length_sensitivity(&self) -> f64 {
        match self {
            ModelProfile::Gpt35 => 2.4,
            ModelProfile::Gpt4 => 1.0,
            ModelProfile::Custom { .. } => 1.0,
        }
    }

    /// Unseen-incident threshold on the best option's similarity.
    pub fn unseen_threshold(&self) -> f64 {
        match self {
            ModelProfile::Gpt35 => 0.24,
            ModelProfile::Gpt4 => 0.20,
            ModelProfile::Custom {
                unseen_threshold, ..
            } => *unseen_threshold,
        }
    }

    /// Display name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            ModelProfile::Gpt35 => "GPT-3.5 (simulated)",
            ModelProfile::Gpt4 => "GPT-4 (simulated)",
            ModelProfile::Custom { .. } => "custom (simulated)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpt4_is_less_noisy_and_better_calibrated() {
        assert!(ModelProfile::Gpt4.noise() < ModelProfile::Gpt35.noise());
        assert!(ModelProfile::Gpt4.unseen_threshold() < ModelProfile::Gpt35.unseen_threshold());
    }

    #[test]
    fn custom_profile_exposes_parameters() {
        let p = ModelProfile::Custom {
            noise: 0.1,
            unseen_threshold: 0.3,
        };
        assert_eq!(p.noise(), 0.1);
        assert_eq!(p.unseen_threshold(), 0.3);
        assert!(p.name().contains("custom"));
    }
}
