//! Salience-driven extractive summarization.
//!
//! The paper asks the LLM to compress diagnostic information to "about 120
//! words, no more than 140 words" (Figure 7), producing summaries like
//! Figure 8. This simulated summarizer is extractive: it scores every line
//! of the diagnostic text for salience (exception names, failure words,
//! counts, limits), keeps the most salient lines in original order within
//! the word budget, and lightly de-formats them into sentences.

use serde::{Deserialize, Serialize};

/// Word budget bounds from the paper's Figure 7 prompt.
pub const MIN_WORDS: usize = 120;
/// Upper bound of the budget ("no more than 140 words").
pub const MAX_WORDS: usize = 140;

/// Patterns whose presence marks a line as diagnostic signal.
const SIGNAL_PATTERNS: &[(&str, f64)] = &[
    ("Exception", 6.0),
    ("Error", 3.0),
    ("error", 2.5),
    ("Failed", 4.0),
    ("failed", 3.0),
    ("failure", 3.0),
    ("exceeded", 4.0),
    ("exhausted", 4.0),
    ("limit", 2.5),
    ("crash", 4.0),
    ("Total", 3.0),
    ("timeout", 3.5),
    ("TIMEOUT", 3.5),
    ("invalid", 3.0),
    ("expired", 3.5),
    ("BLOCKED", 4.0),
    ("OVERRIDES-EXISTING", 5.0),
    ("stuck", 3.0),
    ("detected", 2.0),
    ("over limit", 4.0),
    ("not available", 2.5),
    ("rejected", 2.5),
    ("alarm", 3.5),
    ("breached", 3.5),
    ("saturated", 3.5),
    ("imbalance", 3.5),
    ("storm", 3.0),
    ("backlog", 3.0),
    ("99.", 5.0),
];

/// Patterns that mark routine noise; they push a line's score down.
const NOISE_PATTERNS: &[(&str, f64)] = &[
    ("INFO", -2.5),
    ("DEBUG", -4.0),
    ("completed", -2.0),
    ("ok", -0.5),
    ("heartbeat", -3.0),
    ("No matching log records", -2.0),
    ("No thread stack groups", -2.0),
    ("No failing traces", -2.0),
    ("No process crashes", -2.0),
    ("no backpressure", -3.0),
    // Zero-result rows ("Failed Probes: 0", "Queues over limit: 0") carry
    // no diagnostic value; a careful summary omits them.
    (": 0", -6.0),
    ("length 0 ", -2.0),
    // Self-resolving transient noise: real logs are full of one-off
    // retried errors that a careful summary drops.
    ("transient", -6.0),
    ("retried successfully", -6.0),
    ("briefly", -6.0),
    ("momentarily", -6.0),
    ("fell back", -5.0),
    ("flushed late", -5.0),
    ("cache miss", -5.0),
    ("one synchronous", -5.0),
    ("canary unavailable", -5.0),
    ("single mailbox operation", -5.0),
    ("expires within 30 days", -5.0),
    // Healthy inventory rows: active provisioning and non-full disks.
    ("state=Active", -5.0),
    ("% used", -2.0),
];

/// The extractive summarizer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Summarizer {
    /// Minimum words in the output.
    pub min_words: usize,
    /// Maximum words in the output.
    pub max_words: usize,
}

impl Default for Summarizer {
    fn default() -> Self {
        Summarizer {
            min_words: MIN_WORDS,
            max_words: MAX_WORDS,
        }
    }
}

/// Salience of one line.
fn line_score(line: &str) -> f64 {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return f64::NEG_INFINITY;
    }
    let mut score = 0.0;
    for (pat, w) in SIGNAL_PATTERNS {
        if trimmed.contains(pat) {
            score += w;
        }
    }
    for (pat, w) in NOISE_PATTERNS {
        if trimmed.contains(pat) {
            score += w;
        }
    }
    // CamelCase identifiers (exception/class/service names) are signal.
    let camel = trimmed
        .split(|c: char| !c.is_ascii_alphanumeric())
        .filter(|tok| {
            tok.len() >= 8
                && tok.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                && tok.chars().skip(1).any(|c| c.is_ascii_uppercase())
                && tok.chars().any(|c| c.is_ascii_lowercase())
        })
        .count();
    score += camel as f64 * 1.5;
    // Large counts (socket tables, queue lengths) are signal.
    if trimmed
        .split(|c: char| !c.is_ascii_digit())
        .any(|d| d.len() >= 4)
    {
        score += 1.5;
    }
    // Section titles give structure but little signal by themselves.
    if trimmed.ends_with(':') {
        score -= 0.5;
    }
    // Very long lines are penalized slightly so the budget spreads.
    score - (trimmed.split_whitespace().count() as f64) * 0.04
}

fn word_count(text: &str) -> usize {
    text.split_whitespace().count()
}

impl Summarizer {
    /// Creates a summarizer with explicit budget bounds.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min_words <= max_words`.
    pub fn new(min_words: usize, max_words: usize) -> Self {
        assert!(
            min_words > 0 && min_words <= max_words,
            "invalid word budget"
        );
        Summarizer {
            min_words,
            max_words,
        }
    }

    /// Summarizes diagnostic text to the word budget.
    ///
    /// Greedy selection by salience; chosen lines are emitted in their
    /// original order so the summary reads chronologically, like the
    /// paper's Figure 8 example.
    pub fn summarize(&self, text: &str) -> String {
        let lines: Vec<&str> = text.lines().collect();
        let mut scored: Vec<(usize, f64)> = lines
            .iter()
            .enumerate()
            .map(|(i, l)| (i, line_score(l)))
            .filter(|(_, s)| s.is_finite())
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));

        let mut chosen: Vec<usize> = Vec::new();
        let mut words = 0;
        for (i, score) in scored {
            // The word floor is best-effort: routine lines (score <= 0)
            // never pad the summary, they are exactly what summarization
            // is meant to drop.
            if score <= 0.0 {
                break;
            }
            let w = word_count(lines[i]);
            if w == 0 {
                continue;
            }
            // Once the floor is reached, stop at the first line that would
            // overflow; below the floor, still prefer not to blow the cap
            // unless the line is strongly salient.
            if words + w > self.max_words {
                if words >= self.min_words {
                    break;
                }
                if score < 3.0 {
                    continue;
                }
                // Strong line that overflows: truncate it to fit.
                let remaining = self.max_words.saturating_sub(words);
                if remaining < 4 {
                    break;
                }
                chosen.push(i);
                break;
            }
            chosen.push(i);
            words += w;
            if words >= self.max_words {
                break;
            }
        }
        chosen.sort_unstable();

        let mut out = String::new();
        let mut words_emitted = 0;
        for i in chosen {
            let line = lines[i].trim();
            let budget = self.max_words - words_emitted;
            let toks: Vec<&str> = line.split_whitespace().take(budget).collect();
            if toks.is_empty() {
                continue;
            }
            words_emitted += toks.len();
            out.push_str(&toks.join(" "));
            if !out.ends_with('.') {
                out.push('.');
            }
            out.push(' ');
            if words_emitted >= self.max_words {
                break;
            }
        }
        out.trim_end().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diagnostic_text() -> String {
        let mut t = String::new();
        t.push_str("DatacenterHubOutboundProxyProbe probe log result from machine NAMPR03FD0001\n");
        t.push_str("Total Probes: 2\nFailed Probes: 2\n");
        t.push_str("Failed probe error:\n");
        t.push_str("InformativeSocketException: No such host is known. A WinSock error: 11001 encountered when connecting to host\n");
        for i in 0..40 {
            t.push_str(&format!(
                "2022-11-21T01:{i:02}:00Z INFO [NAMPR03MB0001] Transport.exe/SmtpIn: accepted connection from partner gateway (session {i:08x})\n"
            ));
        }
        t.push_str("Total UDP socket count: 15276\n");
        t.push_str("14923: Transport.exe, 203736\n");
        t.push_str("15: w3wp.exe, 102296\n");
        for i in 0..30 {
            t.push_str(&format!(
                "2022-11-21T02:{i:02}:00Z DEBUG [NAMPR03MB0002] Transport.exe/DnsResolver: resolver cache refreshed (session {i:08x})\n"
            ));
        }
        t
    }

    #[test]
    fn summary_respects_word_budget() {
        let s = Summarizer::default();
        let summary = s.summarize(&diagnostic_text());
        let words = word_count(&summary);
        assert!(words <= MAX_WORDS, "summary has {words} words");
        assert!(words >= 20, "summary too short: {words} words");
    }

    #[test]
    fn summary_keeps_signal_and_drops_noise() {
        let s = Summarizer::default();
        let summary = s.summarize(&diagnostic_text());
        assert!(
            summary.contains("WinSock error: 11001"),
            "summary: {summary}"
        );
        assert!(summary.contains("15276") || summary.contains("14923"));
        assert!(
            !summary.contains("resolver cache refreshed"),
            "noise leaked into summary"
        );
        assert!(!summary.contains("accepted connection from partner"));
    }

    #[test]
    fn summary_preserves_original_order() {
        let s = Summarizer::default();
        let summary = s.summarize(&diagnostic_text());
        let probe_pos = summary.find("Failed Probes").unwrap_or(usize::MAX);
        let socket_pos = summary.find("UDP socket").unwrap_or(0);
        assert!(
            probe_pos < socket_pos,
            "probe section should precede socket table"
        );
    }

    #[test]
    fn empty_input_gives_empty_summary() {
        let s = Summarizer::default();
        assert_eq!(s.summarize(""), "");
        assert_eq!(s.summarize("\n\n\n"), "");
    }

    #[test]
    fn short_input_passes_through() {
        let s = Summarizer::default();
        let text = "CorruptIndexException: mailbox content index failed consistency check";
        let summary = s.summarize(text);
        assert!(summary.contains("CorruptIndexException"));
    }

    #[test]
    fn summarization_is_deterministic() {
        let s = Summarizer::default();
        assert_eq!(
            s.summarize(&diagnostic_text()),
            s.summarize(&diagnostic_text())
        );
    }

    #[test]
    #[should_panic(expected = "invalid word budget")]
    fn bad_budget_panics() {
        let _ = Summarizer::new(100, 50);
    }
}
