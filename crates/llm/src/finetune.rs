//! The "fine-tuned LM" baseline (paper Table 2, `Fine-tune GPT`).
//!
//! The paper fine-tunes GPT-3.5 on raw diagnostic text and lets it emit
//! the category directly, with no prompt design. We model a fine-tune's
//! *head* as multinomial naive Bayes over the LM's BPE token space:
//! it maps raw token statistics to labels, needs per-class data volume to
//! estimate those statistics, and — like a real fine-tune — can only emit
//! labels it saw during training (no unseen-incident branch).

use rcacopilot_textkit::bpe::BpeTokenizer;
use std::collections::BTreeMap;

/// A trained fine-tuned-LM baseline.
#[derive(Debug, Clone)]
pub struct FineTunedLm {
    tokenizer: BpeTokenizer,
    labels: Vec<String>,
    /// Per-class log prior.
    log_prior: Vec<f64>,
    /// Per-class token log likelihoods, Laplace-smoothed.
    log_likelihood: Vec<BTreeMap<u32, f64>>,
    /// Per-class smoothing floor for unseen tokens.
    floor: Vec<f64>,
    /// Per-token log-posterior margin below which generation degrades
    /// into a hallucinated label (see [`FineTunedLm::predict`]).
    hallucination_margin: f64,
}

impl FineTunedLm {
    /// "Fine-tunes" on `(raw diagnostic text, label)` pairs. The tokenizer
    /// is trained on the same corpus, mirroring a domain-adapted LM.
    ///
    /// # Panics
    ///
    /// Panics if `examples` is empty.
    pub fn train(examples: &[(String, String)], vocab_size: usize) -> Self {
        assert!(!examples.is_empty(), "training set must not be empty");
        let corpus: Vec<String> = examples.iter().map(|(t, _)| t.clone()).collect();
        let tokenizer = BpeTokenizer::train(&corpus, vocab_size);

        let mut labels: Vec<String> = Vec::new();
        let mut label_ids: BTreeMap<&str, usize> = BTreeMap::new();
        for (_, l) in examples {
            if !label_ids.contains_key(l.as_str()) {
                label_ids.insert(l, labels.len());
                labels.push(l.clone());
            }
        }
        let k = labels.len();
        let mut class_counts = vec![0usize; k];
        let mut token_counts: Vec<BTreeMap<u32, f64>> = vec![BTreeMap::new(); k];
        let mut token_totals = vec![0.0f64; k];
        for (text, label) in examples {
            let c = label_ids[label.as_str()];
            class_counts[c] += 1;
            for t in tokenizer.encode(text) {
                *token_counts[c].entry(t).or_insert(0.0) += 1.0;
                token_totals[c] += 1.0;
            }
        }

        let n = examples.len() as f64;
        let v = tokenizer.vocab_size() as f64;
        let log_prior: Vec<f64> = class_counts
            .iter()
            .map(|&c| ((c as f64 + 0.5) / (n + 0.5 * k as f64)).ln())
            .collect();
        let mut log_likelihood = Vec::with_capacity(k);
        let mut floor = Vec::with_capacity(k);
        for c in 0..k {
            let denom = token_totals[c] + v;
            let map: BTreeMap<u32, f64> = token_counts[c]
                .iter()
                .map(|(&t, &cnt)| (t, ((cnt + 1.0) / denom).ln()))
                .collect();
            log_likelihood.push(map);
            floor.push((1.0 / denom).ln());
        }

        FineTunedLm {
            tokenizer,
            labels,
            log_prior,
            log_likelihood,
            floor,
            hallucination_margin: 0.35,
        }
    }

    /// The label set.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Sets the hallucination margin (nats); `0.0` disables hallucination.
    pub fn with_hallucination_margin(mut self, margin: f64) -> Self {
        self.hallucination_margin = margin;
        self
    }

    /// Predicts a label for raw diagnostic text, returning the emitted
    /// label string and the log-posterior margin over the runner-up.
    ///
    /// A fine-tuned *generative* model does not argmax over a fixed label
    /// head — it decodes a label string token by token. When the learned
    /// evidence is decisive the decoded string is the training label; when
    /// the posterior is ambiguous, decoding drifts and the model emits a
    /// plausible-looking but wrong label (the hallucination failure the
    /// paper attributes to fine-tuned GPT). We model that by blending the
    /// top-2 label strings whenever the margin is below
    /// `hallucination_margin`.
    pub fn predict(&self, text: &str) -> (String, f64) {
        let (best, second, margin, tokens) = self.posterior_top2(text);
        // The margin grows linearly with document length; decode quality
        // depends on the *per-token* evidence rate.
        let per_token = margin / tokens.max(1) as f64;
        if per_token >= self.hallucination_margin || self.labels.len() == 1 {
            return (self.labels[best].clone(), margin);
        }
        // Hallucinated decode: the head of one label fused with the tail
        // of the rival — a fluent, confident, wrong answer.
        let a = &self.labels[best];
        let b = &self.labels[second];
        let cut_a = a.len().div_ceil(2);
        let cut_b = b.len() / 2;
        let mut fused = String::new();
        fused.push_str(&a[..cut_a.min(a.len())]);
        fused.push_str(&b[cut_b.min(b.len())..]);
        if &fused == a || &fused == b {
            fused.push_str("Issue");
        }
        (fused, margin)
    }

    /// Raw argmax prediction (the label head without generative decoding).
    pub fn predict_argmax(&self, text: &str) -> (&str, f64) {
        let tokens = self.tokenizer.encode(text);
        let mut scores: Vec<f64> = self.log_prior.clone();
        for (c, score) in scores.iter_mut().enumerate() {
            for t in &tokens {
                *score += self.log_likelihood[c]
                    .get(t)
                    .copied()
                    .unwrap_or(self.floor[c]);
            }
        }
        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("finite scores"));
        let best = order[0];
        let margin = if order.len() > 1 {
            scores[best] - scores[order[1]]
        } else {
            f64::INFINITY
        };
        (&self.labels[best], margin)
    }

    /// Top-2 classes, the margin between them, and the token count.
    fn posterior_top2(&self, text: &str) -> (usize, usize, f64, usize) {
        let tokens = self.tokenizer.encode(text);
        let mut scores: Vec<f64> = self.log_prior.clone();
        for (c, score) in scores.iter_mut().enumerate() {
            for t in &tokens {
                *score += self.log_likelihood[c]
                    .get(t)
                    .copied()
                    .unwrap_or(self.floor[c]);
            }
        }
        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("finite scores"));
        let best = order[0];
        let second = order.get(1).copied().unwrap_or(best);
        let margin = if order.len() > 1 {
            scores[best] - scores[second]
        } else {
            f64::INFINITY
        };
        (best, second, margin, tokens.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn examples() -> Vec<(String, String)> {
        let mut out = Vec::new();
        for i in 0..8 {
            out.push((
                format!("socket exhausted winsock error hub ports transport case{i}"),
                "HubPortExhaustion".to_string(),
            ));
            out.push((
                format!("disk full ioexception no space volume crashed case{i}"),
                "FullDisk".to_string(),
            ));
        }
        out
    }

    #[test]
    fn learns_token_class_associations() {
        let model = FineTunedLm::train(&examples(), 400).with_hallucination_margin(0.0);
        assert_eq!(model.labels().len(), 2);
        let (l, margin) = model.predict("winsock socket exhausted on hub");
        assert_eq!(l, "HubPortExhaustion");
        assert!(margin > 0.0);
        let (l, _) = model.predict("ioexception disk volume full");
        assert_eq!(l, "FullDisk");
    }

    #[test]
    fn low_margin_predictions_hallucinate() {
        let model = FineTunedLm::train(&examples(), 400).with_hallucination_margin(1e9);
        // Forced hallucination: the emitted string is not a training label.
        let (l, _) = model.predict("winsock socket exhausted on hub");
        assert!(!model.labels().contains(&l), "emitted {l}");
        // The argmax head underneath is still sound.
        let (raw, _) = model.predict_argmax("winsock socket exhausted on hub");
        assert_eq!(raw, "HubPortExhaustion");
    }

    #[test]
    fn argmax_cannot_emit_unseen_labels() {
        let model = FineTunedLm::train(&examples(), 400);
        // Entirely novel text still maps to a known label under argmax.
        let (l, _) = model.predict_argmax("quantum flux capacitor misaligned");
        assert!(model.labels().iter().any(|x| x == l));
    }

    #[test]
    fn single_class_margin_is_infinite() {
        let data = vec![("alpha beta".to_string(), "Only".to_string())];
        let model = FineTunedLm::train(&data, 100);
        let (l, margin) = model.predict("alpha");
        assert_eq!(l, "Only");
        assert!(margin.is_infinite());
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_training_panics() {
        let _ = FineTunedLm::train(&[], 100);
    }
}
