//! Prompt structures mirroring the paper's Figures 7 and 9.

use rcacopilot_textkit::bpe::BpeTokenizer;
use serde::{Deserialize, Serialize};
use std::borrow::Cow;

/// Token budget of the simulated model's context window (the paper uses
/// GPT-4 with an 8K window).
pub const CONTEXT_TOKENS: usize = 8192;

/// The summarization prompt (paper Figure 7).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SummaryPrompt {
    /// The diagnostic information to summarize.
    pub diagnostic_info: String,
}

impl SummaryPrompt {
    /// Renders the full prompt text.
    pub fn render(&self) -> String {
        format!(
            "{}\n\nPlease summarize the above input. Please note that the above input is \
             incident diagnostic information. The summary results should be about 120 words, \
             no more than 140 words, and should cover important information as much as \
             possible. Just return the summary without any additional output.",
            self.diagnostic_info
        )
    }
}

/// One lettered option of the prediction prompt.
///
/// Fields are `Cow`s so the retrieval → prompt hot path can borrow the
/// historical entries' summaries and categories directly instead of
/// cloning one `String` pair per retrieved neighbor per prediction;
/// owned construction (tests, ad-hoc prompts) still works via `.into()`.
#[derive(Debug, Clone, PartialEq)]
pub struct PromptOption<'a> {
    /// Summarized diagnostic information of the historical incident.
    pub summary: Cow<'a, str>,
    /// Its labeled root cause category.
    pub category: Cow<'a, str>,
}

impl PromptOption<'_> {
    /// Detaches the option from whatever it borrows.
    pub fn into_owned(self) -> PromptOption<'static> {
        PromptOption {
            summary: Cow::Owned(self.summary.into_owned()),
            category: Cow::Owned(self.category.into_owned()),
        }
    }
}

/// The prediction prompt (paper Figure 9): the current incident plus top-K
/// historical demonstrations from distinct categories, with option A fixed
/// as "Unseen incident".
#[derive(Debug, Clone, PartialEq)]
pub struct PredictionPrompt<'a> {
    /// Summarized diagnostic information of the incident being predicted.
    pub input: Cow<'a, str>,
    /// Demonstration options (B, C, ... in render order).
    pub options: Vec<PromptOption<'a>>,
    /// Degradation annotation injected when the collection stage ran
    /// with incomplete diagnostics (fault-injected telemetry). `None` on
    /// the fault-free path, which keeps the rendered prompt byte-for-byte
    /// identical to the historical format.
    pub degradation_note: Option<String>,
}

impl<'a> PredictionPrompt<'a> {
    /// Creates a prompt with no degradation annotation.
    pub fn new(input: impl Into<Cow<'a, str>>, options: Vec<PromptOption<'a>>) -> Self {
        PredictionPrompt {
            input: input.into(),
            options,
            degradation_note: None,
        }
    }

    /// Renders the full prompt text in the Figure 9 format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "Context: The following description shows the error log information of an \
             incident. Please select the incident information that is most likely to have \
             the same root cause and give your explanation (just give one answer). If not, \
             please select the first item \"Unseen incident\".\n\n",
        );
        out.push_str("Input: ");
        out.push_str(&self.input);
        if let Some(note) = &self.degradation_note {
            out.push_str("\n\nData completeness warning: ");
            out.push_str(note);
        }
        out.push_str("\n\nOptions:\nA: Unseen incident.\n");
        for (i, opt) in self.options.iter().enumerate() {
            // Single letters cover the normal K <= 25 case; larger option
            // lists (possible before budget truncation) get numbered
            // labels instead of overflowing the alphabet.
            let label = if i < 25 {
                ((b'B' + i as u8) as char).to_string()
            } else {
                format!("Option{}", i + 1)
            };
            out.push_str(&format!(
                "{label}: {} category: {}.\n",
                opt.summary, opt.category
            ));
        }
        out
    }

    /// Counts prompt tokens with `tokenizer` (the tiktoken substitute).
    pub fn token_count(&self, tokenizer: &BpeTokenizer) -> usize {
        tokenizer.count_tokens(&self.render())
    }

    /// Drops trailing options until the prompt fits `budget` tokens.
    /// Returns the number of options removed.
    pub fn truncate_to_budget(&mut self, tokenizer: &BpeTokenizer, budget: usize) -> usize {
        let mut dropped = 0;
        while self.options.len() > 1 && self.token_count(tokenizer) > budget {
            self.options.pop();
            dropped += 1;
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tokenizer() -> BpeTokenizer {
        BpeTokenizer::train(
            &[
                "incident diagnostic summary category unseen option".to_string(),
                "udp socket exhausted probe failed".to_string(),
            ],
            300,
        )
    }

    fn prompt() -> PredictionPrompt<'static> {
        PredictionPrompt::new(
            "The probe has failed twice with a WinSock 11001 error.",
            vec![
                PromptOption {
                    summary: "The DatacenterHubOutboundProxyProbe has failed twice".into(),
                    category: "HubPortExhaustion".into(),
                },
                PromptOption {
                    summary: "There are 62 managed threads in process TransportDelivery".into(),
                    category: "AuthCertIssue".into(),
                },
            ],
        )
    }

    #[test]
    fn render_matches_figure9_shape() {
        let text = prompt().render();
        assert!(text.starts_with("Context:"));
        assert!(text.contains("give your explanation"));
        assert!(text.contains("A: Unseen incident."));
        assert!(text.contains("B: The DatacenterHubOutboundProxyProbe"));
        assert!(text.contains("category: HubPortExhaustion."));
        assert!(text.contains("C: There are 62 managed threads"));
    }

    #[test]
    fn degradation_note_renders_between_input_and_options() {
        let clean = prompt().render();
        assert!(!clean.contains("Data completeness warning"));
        let mut p = prompt();
        p.degradation_note =
            Some("1 of 3 diagnostic sections unavailable (sources: probes)".into());
        let text = p.render();
        let input = text.find("Input:").unwrap();
        let note = text.find("Data completeness warning: 1 of 3").unwrap();
        let options = text.find("Options:").unwrap();
        assert!(input < note && note < options);
    }

    #[test]
    fn summary_prompt_matches_figure7_wording() {
        let p = SummaryPrompt {
            diagnostic_info: "probe failed".into(),
        };
        let text = p.render();
        assert!(text.contains("about 120 words, no more than 140 words"));
        assert!(text.starts_with("probe failed"));
    }

    #[test]
    fn token_budget_truncation_drops_trailing_options() {
        let tok = tokenizer();
        let mut p = prompt();
        for i in 0..30 {
            p.options.push(PromptOption {
                summary: format!("padding incident summary number {i} with several words").into(),
                category: format!("Cat{i}").into(),
            });
        }
        let full = p.token_count(&tok);
        let dropped = p.truncate_to_budget(&tok, full / 2);
        assert!(dropped > 0);
        assert!(p.token_count(&tok) <= full / 2);
        assert!(!p.options.is_empty());
    }

    #[test]
    fn truncation_never_removes_last_option() {
        let tok = tokenizer();
        let mut p = prompt();
        p.options.truncate(1);
        let dropped = p.truncate_to_budget(&tok, 1);
        assert_eq!(dropped, 0);
        assert_eq!(p.options.len(), 1);
    }
}
