//! The chain-of-thought prediction engine.
//!
//! Given the paper's Figure 9 prompt — the incident's summarized
//! diagnostics plus top-K historical demonstrations — the engine scores
//! every option against the input by textual evidence only:
//!
//! - cosine similarity of character-trigram profiles (robust to phrasing),
//! - Jaccard overlap of *salient entities* (exception names, CamelCase
//!   identifiers, ALL-CAPS markers) — the "reasoning" a capable model
//!   would articulate, and which the explanation text cites.
//!
//! A capability-dependent noise term models the difference between
//! GPT-3.5 and GPT-4; if even the best option scores below the profile's
//! threshold the engine answers "Unseen incident" and synthesizes a new
//! category label (Figure 11).

use crate::labelgen::{camelcase_entities, synthesize_label};
use crate::profile::ModelProfile;
use crate::prompt::PredictionPrompt;
use rcacopilot_textkit::ngram::hash_token;
use rcacopilot_textkit::normalize::{mask_entities, normalize};
use std::collections::{BTreeMap, BTreeSet};

/// The engine's answer to a prediction prompt.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Predicted category label. For unseen incidents this is the
    /// synthesized new-category keyword.
    pub label: String,
    /// Index into the prompt's options, `None` for "Unseen incident".
    pub option_index: Option<usize>,
    /// True when option A (unseen) was chosen.
    pub unseen: bool,
    /// The winning option's (noisy) similarity score.
    pub confidence: f64,
    /// Natural-language explanation of the choice.
    pub explanation: String,
}

/// The simulated chain-of-thought predictor.
#[derive(Debug, Clone, Copy)]
pub struct CotEngine {
    /// Capability profile in use.
    pub profile: ModelProfile,
    /// Seed for the (deterministic) noise stream; vary across rounds to
    /// reproduce the paper's §5.6 stability experiment.
    pub seed: u64,
}

impl CotEngine {
    /// Creates an engine with the given profile and noise seed.
    pub fn new(profile: ModelProfile, seed: u64) -> Self {
        CotEngine { profile, seed }
    }

    /// Per-option score breakdown `(clean, cosine, jaccard, contrastive)`
    /// — the engine's "reasoning trace", exposed for debugging and for
    /// explanation tooling.
    pub fn option_scores(&self, prompt: &PredictionPrompt<'_>) -> Vec<(f64, f64, f64, f64)> {
        score_options(prompt)
    }

    /// Answers a prediction prompt.
    pub fn predict(&self, prompt: &PredictionPrompt<'_>) -> Prediction {
        let query_ents = salient_entities(&prompt.input);

        // Long prompts degrade a real LLM's reading fidelity
        // ("lost in the middle"); scoring noise grows with the amount of
        // context the model must hold. This is what the paper's
        // summarization stage buys back (Table 3: summarized beats raw).
        let prompt_chars: usize = prompt.input.len()
            + prompt
                .options
                .iter()
                .map(|o| o.summary.len())
                .sum::<usize>();
        let approx_tokens = prompt_chars as f64 / 4.0 * self.profile.length_sensitivity();
        // Superlinear in length: a long prompt does not merely dilute
        // attention, it causes outright misreads past a few thousand
        // tokens. Capped so pathological prompts stay bounded.
        let length_factor =
            (1.0 + approx_tokens / 1500.0 + (approx_tokens / 1800.0).powi(2)).min(12.0);

        // Long prompts degrade reading fidelity (see `length_factor`
        // above); contrastive per-option scores come from a shared helper.
        let scores = score_options(prompt);
        let mut best: Option<(usize, f64, f64)> = None; // (idx, noisy, clean)
        for (i, &(clean, _, _, _)) in scores.iter().enumerate() {
            let noisy = clean + self.noise_for(&prompt.input, i) * length_factor;
            if best.is_none_or(|(_, bn, _)| noisy > bn) {
                best = Some((i, noisy, clean));
            }
        }
        // An option wins only on *distinctive* grounds: template-level
        // similarity without any option-specific shared evidence is what a
        // careful reader calls "none of these match".
        let best_is_generic = best.is_some_and(|(idx, _, clean)| {
            let (_, cos, _, contrastive) = scores[idx];
            contrastive < 0.02 && cos < 0.80 && clean < 0.45
        });

        match best {
            Some((idx, noisy, _))
                if noisy >= self.profile.unseen_threshold() && !best_is_generic =>
            {
                let option = &prompt.options[idx];
                let shared: Vec<String> = query_ents
                    .intersection(&salient_entities(&option.summary))
                    .cloned()
                    .collect();
                let explanation = explain_match(&option.category, &shared, &prompt.input);
                Prediction {
                    label: option.category.to_string(),
                    option_index: Some(idx),
                    unseen: false,
                    confidence: noisy,
                    explanation,
                }
            }
            best_or_none => {
                let label = synthesize_label(&prompt.input);
                let confidence = best_or_none.map_or(0.0, |(_, n, _)| n);
                let explanation = explain_unseen(&label, &prompt.input);
                Prediction {
                    label,
                    option_index: None,
                    unseen: true,
                    confidence,
                    explanation,
                }
            }
        }
    }

    /// Deterministic pseudo-Gaussian noise for `(input, option index)`.
    fn noise_for(&self, input: &str, option_index: usize) -> f64 {
        let sigma = self.profile.noise();
        if sigma == 0.0 {
            return 0.0;
        }
        // Sum of three uniforms approximates a Gaussian (Irwin–Hall).
        let mut acc = 0.0;
        for salt in 0..3u64 {
            let h = hash_token(&format!(
                "{}|{}|{}|{}",
                self.seed, option_index, salt, input
            ));
            acc += (h % 1_000_000) as f64 / 1_000_000.0 - 0.5;
        }
        acc * sigma * 2.0
    }
}

/// Scores every option of a prompt: `(clean, cosine, jaccard, contrastive)`.
///
/// The contrastive component models how a capable model reads a
/// multiple-choice prompt: evidence terms that appear in more than one
/// option cannot discriminate, so only each option's *unique* terms count,
/// matched against the query's own non-boilerplate terms.
fn score_options(prompt: &PredictionPrompt<'_>) -> Vec<(f64, f64, f64, f64)> {
    let query_tri = trigram_profile(&prompt.input);
    let query_ents = salient_entities(&prompt.input);
    let query_terms = evidence_terms(&prompt.input);
    let option_terms: Vec<BTreeSet<String>> = prompt
        .options
        .iter()
        .map(|o| evidence_terms(&o.summary))
        .collect();
    let mut term_counts: BTreeMap<&str, usize> = BTreeMap::new();
    for terms in &option_terms {
        for t in terms {
            *term_counts.entry(t.as_str()).or_insert(0) += 1;
        }
    }
    // Terms present in more than one option are non-discriminative.
    let shared: BTreeSet<&str> = term_counts
        .iter()
        .filter(|(_, &c)| c > 1)
        .map(|(&t, _)| t)
        .collect();
    let query_distinct: BTreeSet<&str> = query_terms
        .iter()
        .map(String::as_str)
        .filter(|t| !shared.contains(t))
        .collect();

    prompt
        .options
        .iter()
        .enumerate()
        .map(|(i, opt)| {
            let tri = trigram_profile(&opt.summary);
            let ents = salient_entities(&opt.summary);
            let cos = cosine(&query_tri, &tri);
            let jac = jaccard(&query_ents, &ents);
            let unique: BTreeSet<&str> = option_terms[i]
                .iter()
                .map(String::as_str)
                .filter(|t| !shared.contains(t))
                .collect();
            let inter = unique.intersection(&query_distinct).count();
            // Cosine-style normalization: plain Jaccard punishes options
            // with richer summaries (larger unions), biasing toward terse
            // options regardless of evidence.
            let denom = ((unique.len() * query_distinct.len()) as f64).sqrt();
            let contrastive = if denom == 0.0 {
                0.0
            } else {
                inter as f64 / denom
            };
            (
                0.25 * cos + 0.20 * jac + 0.55 * contrastive,
                cos,
                jac,
                contrastive,
            )
        })
        .collect()
}

/// Character-trigram frequency profile over normalized, masked text.
fn trigram_profile(text: &str) -> BTreeMap<u64, f64> {
    let canon = normalize(&mask_entities(text));
    let chars: Vec<char> = canon.chars().collect();
    let mut map: BTreeMap<u64, f64> = BTreeMap::new();
    if chars.len() < 3 {
        return map;
    }
    for w in chars.windows(3) {
        let g: String = w.iter().collect();
        *map.entry(hash_token(&g)).or_insert(0.0) += 1.0;
    }
    map
}

fn cosine(a: &BTreeMap<u64, f64>, b: &BTreeMap<u64, f64>) -> f64 {
    let dot: f64 = a
        .iter()
        .filter_map(|(k, va)| b.get(k).map(|vb| va * vb))
        .sum();
    let na: f64 = a.values().map(|v| v * v).sum::<f64>().sqrt();
    let nb: f64 = b.values().map(|v| v * v).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Evidence terms for contrastive option reading: salient entities plus
/// lowercase content words of length >= 5 (after masking per-incident
/// identifiers). Lowercase words matter because discriminators are often
/// plain prose — "quarantine queue" vs "replay queue".
pub fn evidence_terms(text: &str) -> BTreeSet<String> {
    let mut set = salient_entities(text);
    let canon = normalize(&mask_entities(text));
    for tok in canon.split(|c: char| !c.is_ascii_alphanumeric()) {
        if tok.len() >= 5 && tok.chars().all(|c| c.is_ascii_lowercase()) {
            set.insert(tok.to_string());
        }
    }
    set
}

/// Salient entities: CamelCase identifiers plus ALL-CAPS markers and
/// snake_case metric names.
pub fn salient_entities(text: &str) -> BTreeSet<String> {
    let mut set: BTreeSet<String> = camelcase_entities(text).into_iter().collect();
    for tok in text.split(|c: char| !(c.is_ascii_alphanumeric() || c == '_')) {
        let len = tok.len();
        if len >= 4 && tok.chars().all(|c| c.is_ascii_uppercase()) {
            set.insert(tok.to_string());
        }
        if len >= 6 && tok.contains('_') && tok.chars().all(|c| c.is_ascii_lowercase() || c == '_')
        {
            set.insert(tok.to_string());
        }
    }
    set
}

fn jaccard(a: &BTreeSet<String>, b: &BTreeSet<String>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count() as f64;
    let union = a.union(b).count() as f64;
    inter / union
}

fn explain_match(category: &str, shared: &[String], input: &str) -> String {
    let evidence = if shared.is_empty() {
        "the closely matching error-log narrative".to_string()
    } else {
        let mut top: Vec<&String> = shared.iter().collect();
        top.truncate(4);
        top.iter()
            .map(|s| s.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    };
    let first_line: String = input.split('.').next().unwrap_or("").trim().to_string();
    format!(
        "The incident was matched to category {category} based on the occurrence of {evidence} \
         in both the current diagnostics and the historical incident. The current incident \
         reports: \"{first_line}\", which mirrors the demonstrated failure pattern."
    )
}

fn explain_unseen(label: &str, input: &str) -> String {
    let ents = camelcase_entities(input);
    let evidence = if ents.is_empty() {
        "the failure narrative".to_string()
    } else {
        ents.iter()
            .take(3)
            .map(String::as_str)
            .collect::<Vec<_>>()
            .join(", ")
    };
    format!(
        "The prediction of \"{label}\" was made based on the occurrence of {evidence} within \
         the diagnostic information, which does not match any provided historical incident. \
         These signals point to a previously unseen failure mode; the new category keyword \
         \"{label}\" is proposed for OCE review."
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompt::PromptOption;

    fn prompt(input: &str, options: &[(&str, &str)]) -> PredictionPrompt<'static> {
        PredictionPrompt::new(
            input.to_string(),
            options
                .iter()
                .map(|(s, c)| PromptOption {
                    summary: s.to_string().into(),
                    category: c.to_string().into(),
                })
                .collect(),
        )
    }

    #[test]
    fn picks_the_matching_demonstration() {
        let p = prompt(
            "The DatacenterHubOutboundProxyProbe failed twice with WinSock error 11001; total \
             UDP socket count is 15276, mostly Transport.exe.",
            &[
                (
                    "The DatacenterHubOutboundProxyProbe has failed twice on the backend \
                     machine with WinSock error 11001; UDP socket count 14923 used by \
                     Transport.exe.",
                    "HubPortExhaustion",
                ),
                (
                    "There are 62 managed threads blocked in process TransportDelivery waiting \
                     on DeliveryQueue.",
                    "DeliveryHang",
                ),
            ],
        );
        let engine = CotEngine::new(ModelProfile::Gpt4, 1);
        let pred = engine.predict(&p);
        assert_eq!(pred.label, "HubPortExhaustion");
        assert_eq!(pred.option_index, Some(0));
        assert!(!pred.unseen);
        assert!(pred.explanation.contains("HubPortExhaustion"));
        assert!(
            pred.explanation.contains("DatacenterHubOutboundProxyProbe")
                || pred.explanation.contains("WinSock")
        );
    }

    #[test]
    fn declares_unseen_when_nothing_matches() {
        let p = prompt(
            "System.IO.IOException: there is not enough space on the disk; multiple processes \
             crashed with IO exceptions in DiagnosticsLog.",
            &[
                (
                    "TLS handshake failed due to cipher suite mismatch after baseline change.",
                    "TlsHandshakeFailureCipherSuite",
                ),
                (
                    "LDAP referral chase storm across domain controllers.",
                    "LdapReferralStorm",
                ),
            ],
        );
        let engine = CotEngine::new(ModelProfile::Gpt4, 1);
        let pred = engine.predict(&p);
        assert!(pred.unseen, "confidence {}", pred.confidence);
        assert_eq!(pred.label, "I/O Bottleneck");
        assert!(pred.explanation.contains("I/O Bottleneck"));
        assert!(pred.explanation.contains("unseen"));
    }

    #[test]
    fn empty_options_always_unseen() {
        let p = prompt("anything at all", &[]);
        let engine = CotEngine::new(ModelProfile::Gpt4, 1);
        let pred = engine.predict(&p);
        assert!(pred.unseen);
        assert_eq!(pred.option_index, None);
    }

    #[test]
    fn gpt35_is_noisier_than_gpt4_but_deterministic_per_seed() {
        let p = prompt(
            "TenantSettingsNotFoundException: journaling config invalid for tenant.",
            &[
                (
                    "TenantSettingsNotFoundException raised for JournalingReportNdrTo.",
                    "InvalidJournaling",
                ),
                (
                    "InvalidConfigurationException: DlpPolicy value rejected.",
                    "ConfigInvalidDlpPolicy",
                ),
            ],
        );
        let e1 = CotEngine::new(ModelProfile::Gpt35, 5);
        let e2 = CotEngine::new(ModelProfile::Gpt35, 5);
        assert_eq!(e1.predict(&p), e2.predict(&p));
        // Noise magnitude differs across profiles.
        let n35 = CotEngine::new(ModelProfile::Gpt35, 5)
            .noise_for("x", 0)
            .abs();
        let n4 = CotEngine::new(ModelProfile::Gpt4, 5)
            .noise_for("x", 0)
            .abs();
        // Same hash stream scaled by sigma: 3.33x ratio exactly.
        assert!(n35 > n4);
    }

    #[test]
    fn salient_entities_capture_the_right_tokens() {
        let ents = salient_entities(
            "TaskCanceledException at AuthClient.GetTokenAsync; metric dependency_latency_ms \
             TIMEOUT observed",
        );
        assert!(ents.contains("TaskCanceledException"));
        assert!(ents.contains("GetTokenAsync"));
        assert!(ents.contains("dependency_latency_ms"));
        assert!(ents.contains("TIMEOUT"));
        assert!(!ents.contains("at"));
    }

    #[test]
    fn trigram_cosine_orders_similarity_sensibly() {
        let a = trigram_profile("udp socket count exhausted winsock error");
        let b = trigram_profile("winsock error udp socket exhausted on hub");
        let c = trigram_profile("certificate expired for federation endpoint");
        assert!(cosine(&a, &b) > cosine(&a, &c));
        assert!(cosine(&a, &a) > 0.999);
    }
}
