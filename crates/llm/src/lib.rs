//! A deterministic simulated language model for incident RCA.
//!
//! The paper drives RCACopilot with GPT-3.5/GPT-4, which are unavailable
//! here. This crate substitutes a *simulated* LM that exercises the same
//! pipeline contracts — and nothing more. It is deliberately **not an
//! oracle**: every component sees only the text the pipeline puts in its
//! prompt, so pipeline ablations (what context is included, whether it is
//! summarized, which demonstrations are retrieved) move accuracy exactly
//! the way they do in the paper.
//!
//! - [`profile`]: capability profiles (`Gpt35`, `Gpt4`) differing in
//!   scoring fidelity and calibration.
//! - [`summarize`]: salience-driven extractive summarization honoring the
//!   paper's 120–140-word budget (Figures 7–8).
//! - [`prompt`]: the summarization and prediction prompt structures
//!   (Figures 7 and 9) with BPE token accounting.
//! - [`cot`]: the chain-of-thought prediction engine — scores each
//!   demonstration option against the incident, picks the most likely
//!   same-root-cause option or declares an unseen incident, and emits an
//!   explanation (Figure 11).
//! - [`labelgen`]: new-category label synthesis for unseen incidents.
//! - [`finetune`]: the "fine-tuned LM" baseline — a multinomial
//!   naive-Bayes head over BPE tokens trained on raw diagnostic text.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cot;
pub mod finetune;
pub mod labelgen;
pub mod profile;
pub mod prompt;
pub mod summarize;

pub use cot::{CotEngine, Prediction};
pub use finetune::FineTunedLm;
pub use labelgen::synthesize_label;
pub use profile::ModelProfile;
pub use prompt::{PredictionPrompt, PromptOption, SummaryPrompt};
pub use summarize::Summarizer;
