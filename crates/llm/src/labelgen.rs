//! New-category label synthesis for unseen incidents.
//!
//! When the model picks option A ("Unseen incident"), the paper has it
//! "generate a new category keyword to depict the new incident case" —
//! e.g. a never-seen full-disk incident became "I/O Bottleneck"
//! (Figure 11), close to but not identical with the OCE's later "FullDisk"
//! label. This module reproduces that behaviour: a keyword-driven naming
//! heuristic over the incident summary.

use std::collections::BTreeSet;

/// Keyword → label rules, checked in order.
const RULES: &[(&[&str], &str)] = &[
    (
        &["IOException", "not enough space", "disk"],
        "I/O Bottleneck",
    ),
    (
        &["OutOfMemory", "memory pressure", "private bytes"],
        "Memory Exhaustion",
    ),
    (&["WinSock", "socket count", "ports"], "Socket Exhaustion"),
    (&["NXDOMAIN", "DnsRecord", "DNS"], "DNS Resolution Failure"),
    (&["certificate", "Certificate"], "Certificate Issue"),
    (&["TLS", "handshake"], "TLS Negotiation Failure"),
    (
        &["TaskCanceled", "Timeout", "deadline"],
        "Dependency Timeout",
    ),
    (&["queue", "queued"], "Queue Backlog"),
    (&["Poison", "poisoned"], "Poison Message"),
    (&["throttl", "Throttling"], "Throttling Anomaly"),
    (&["crash", "AccessViolation"], "Process Crash"),
    (
        &["Serialization", "exploit", "malicious"],
        "Security Exploit",
    ),
    (&["thread", "BLOCKED"], "Thread Starvation"),
    (&["latency"], "Latency Degradation"),
    (&["connection"], "Connection Anomaly"),
];

/// Extracts CamelCase identifiers (exception/class/service names) from
/// text, longest first.
pub fn camelcase_entities(text: &str) -> Vec<String> {
    let mut set: BTreeSet<String> = BTreeSet::new();
    for tok in text.split(|c: char| !c.is_ascii_alphanumeric()) {
        if tok.len() >= 8
            && tok.chars().next().is_some_and(|c| c.is_ascii_uppercase())
            && tok.chars().skip(1).any(|c| c.is_ascii_uppercase())
            && tok.chars().any(|c| c.is_ascii_lowercase())
            && !tok.chars().any(|c| c.is_ascii_digit())
        {
            set.insert(tok.to_string());
        }
    }
    let mut out: Vec<String> = set.into_iter().collect();
    out.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
    out
}

/// Synthesizes a human-readable category label for an unseen incident.
pub fn synthesize_label(summary: &str) -> String {
    for (keywords, label) in RULES {
        if keywords.iter().any(|k| summary.contains(k)) {
            return (*label).to_string();
        }
    }
    // Fallback: derive from the most prominent CamelCase entity.
    if let Some(entity) = camelcase_entities(summary).into_iter().next() {
        let stem = entity
            .trim_end_matches("Exception")
            .trim_end_matches("Error");
        return format!("{stem} Issue");
    }
    "Unclassified Incident".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure11_style_io_bottleneck() {
        let summary = "System.IO.IOException within crucial functions handling input/output \
                       operations; crashes on different backend machines";
        assert_eq!(synthesize_label(summary), "I/O Bottleneck");
    }

    #[test]
    fn socket_and_dns_rules_fire() {
        assert_eq!(
            synthesize_label("WinSock error 11001 total UDP socket count 15276"),
            "Socket Exhaustion"
        );
        assert_eq!(
            synthesize_label("DnsRecordMissingException lookup returned NXDOMAIN"),
            "DNS Resolution Failure"
        );
    }

    #[test]
    fn fallback_uses_camelcase_entity() {
        let label = synthesize_label("ZorbFluxCapacitorException observed repeatedly");
        assert_eq!(label, "ZorbFluxCapacitor Issue");
    }

    #[test]
    fn no_signal_gives_unclassified() {
        assert_eq!(synthesize_label("all good here"), "Unclassified Incident");
        assert_eq!(synthesize_label(""), "Unclassified Incident");
    }

    #[test]
    fn camelcase_extraction_filters_noise() {
        let ents = camelcase_entities(
            "TenantSettingsNotFoundException at AuthClient.GetTokenAsync in NAMPR03MB0001",
        );
        assert!(ents.contains(&"TenantSettingsNotFoundException".to_string()));
        assert!(ents.contains(&"GetTokenAsync".to_string()));
        // Machine names contain digits and are excluded.
        assert!(!ents.iter().any(|e| e.contains("NAMPR")));
        // Longest first.
        assert_eq!(ents[0], "TenantSettingsNotFoundException");
    }
}
